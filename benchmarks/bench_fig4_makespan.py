"""Fig. 4 — Expected makespan vs MTBF (Daly model + discrete-event sim).

Reproduced claim: without checkpointing the makespan explodes once MTBF
drops near the job length; Young–Daly intervals dominate (or tie) every
fixed interval; analytic and simulated values agree.
Kernel timed: one 400-sample Monte-Carlo estimate.
"""

import numpy as np

from repro.bench.experiments import fig4_makespan
from repro.bench.reporting import format_table
from repro.faults.daly import mean_simulated_makespan


def test_fig4_makespan(benchmark, report):
    rows = fig4_makespan(
        mtbf_hours=(0.5, 1.0, 2.0, 4.0, 8.0),
        work_hours=4.0,
        checkpoint_cost_s=30.0,
        restart_cost_s=120.0,
        mc_samples=400,
    )
    report("Fig. 4 — expected makespan vs MTBF (4 h job)", format_table(rows))

    by_key = {(r["mtbf_h"], r["strategy"]): r for r in rows}
    # No checkpointing explodes at MTBF = job/8.
    assert by_key[(0.5, "none")]["analytic_h"] > 100 * 4.0
    # Young-Daly <= each fixed interval (within analytic model, small slack).
    for mtbf in (0.5, 1.0, 2.0, 4.0, 8.0):
        yd = by_key[(mtbf, "young-daly")]["analytic_h"]
        assert yd <= by_key[(mtbf, "fixed-10min")]["analytic_h"] * 1.001
        assert yd <= by_key[(mtbf, "fixed-60min")]["analytic_h"] * 1.001
    # Analytic and Monte-Carlo agree for the checkpointed strategies.
    for (mtbf, strategy), row in by_key.items():
        if strategy != "none":
            assert abs(row["simulated_h"] - row["analytic_h"]) < 0.25 * row["analytic_h"]

    rng = np.random.default_rng(0)
    benchmark(
        mean_simulated_makespan, 4 * 3600, 600, 30, 120, 7200, rng, 400
    )
