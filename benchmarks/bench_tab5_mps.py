"""Tab. 5 — MPS vs dense quantization (structure-aware compression ablation).

Reproduced claim: a bond-capped MPS transform stores low-entanglement
(shallow-circuit) statevectors in a fraction of the best dense quantizer's
bytes at near-zero infidelity, but is strictly worse than dense quantization
on volume-law (deep/Haar) states — the checkpoint layer must therefore pick
the transform per workload (``required_bond_dimension`` is the predictor).
Kernel timed: TT-SVD of a 12-qubit shallow-circuit state at bond cap 8.
"""

import numpy as np

from repro.bench.experiments import _tab5_state, tab5_mps
from repro.bench.reporting import format_table
from repro.mps import MatrixProductState


def test_tab5_mps(benchmark, report):
    rows = tab5_mps(n_qubits=12)
    report("Tab. 5 — MPS vs dense lossy transforms (12 qubits)", format_table(rows))

    by_key = {(r["family"], r["transform"]): r for r in rows}

    # Low-entanglement: MPS beats the best dense quantizer on size while
    # staying near-exact.
    shallow_mps = by_key[("shallow", "mps-8")]
    shallow_f16 = by_key[("shallow", "f16-pair")]
    assert shallow_mps["stored_bytes"] < shallow_f16["stored_bytes"]
    assert shallow_mps["infidelity"] < 1e-9
    assert shallow_mps["ratio"] > 8.0

    # Product states compress to O(n) with every transform; MPS is exact.
    assert by_key[("product", "mps-8")]["infidelity"] < 1e-12
    assert by_key[("product", "mps-8")]["ratio"] > 50.0

    # Volume-law states: a tight bond cap destroys fidelity ...
    assert by_key[("haar", "mps-8")]["fidelity"] < 0.5
    # ... and an honest cap inflates the checkpoint beyond the dense vector.
    assert by_key[("haar", "mps-32")]["ratio"] < 1.0
    # Dense quantization is insensitive to entanglement.
    assert by_key[("haar", "f16-pair")]["infidelity"] < 1e-6

    # Entropy column orders the families as the narrative expects.
    assert (
        by_key[("product", "identity")]["mean_entropy_bits"]
        < by_key[("shallow", "identity")]["mean_entropy_bits"]
        < by_key[("haar", "identity")]["mean_entropy_bits"]
    )

    state = _tab5_state("shallow", 12, np.random.default_rng(17))
    benchmark(MatrixProductState.from_statevector, state, 8)
