"""Tab. 1 — Serialization format comparison.

Reproduced claim: the QCKPT container matches npz-class size/speed while
adding per-chunk CRCs, a whole-file SHA, and code-free loading; JSON text is
an order of magnitude larger and lossy for float64.
Kernel timed: QCKPT zlib-6 read (unpack + verify) at 14 qubits.
"""

from repro.bench.experiments import tab1_formats
from repro.bench.reporting import format_table
from repro.bench.workloads import synthetic_snapshot
from repro.core.serialize import pack_snapshot, unpack_snapshot


def test_tab1_formats(benchmark, report):
    rows = tab1_formats(n_qubits=14)
    report("Tab. 1 — serialization format comparison (14-qubit snapshot)", format_table(rows))

    by_format = {r["format"]: r for r in rows}
    assert by_format["qckpt/zlib-6"]["checksums"]
    assert not by_format["npz"]["checksums"]
    assert by_format["json-text"]["bytes"] > by_format["qckpt/zlib-6"]["bytes"]
    assert not by_format["json-text"]["lossless"]

    data = pack_snapshot(synthetic_snapshot(14), codec="zlib-6")
    benchmark(unpack_snapshot, data)
