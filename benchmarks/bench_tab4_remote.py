"""Tab. 4 — Remote-storage ablation: tiers shift the Young–Daly interval.

Reproduced claim: slower tiers raise the per-checkpoint cost, which raises
the optimal interval as sqrt(cost) — WAN object storage checkpoints ~6x less
often than local SSD for the same snapshot and MTBF.
Kernel timed: a full save through the simulated datacenter-tier backend.
"""

from repro.bench.experiments import tab4_remote
from repro.bench.reporting import format_table
from repro.bench.workloads import synthetic_snapshot
from repro.core.store import CheckpointStore
from repro.storage.simulated import SimulatedRemoteBackend, TransferCostModel


def test_tab4_remote(benchmark, report):
    rows = tab4_remote(n_qubits=16, mtbf_hours=2.0)
    report("Tab. 4 — storage tiers and Young–Daly intervals", format_table(rows))

    by_tier = {r["tier"]: r for r in rows}
    assert (
        by_tier["local-ssd"]["ckpt_cost_s"]
        < by_tier["datacenter"]["ckpt_cost_s"]
        < by_tier["wan"]["ckpt_cost_s"]
    )
    assert (
        by_tier["local-ssd"]["young_daly_interval_s"]
        < by_tier["datacenter"]["young_daly_interval_s"]
        < by_tier["wan"]["young_daly_interval_s"]
    )
    assert by_tier["local-ssd"]["ckpts_per_hour"] > by_tier["wan"]["ckpts_per_hour"]

    backend = SimulatedRemoteBackend(TransferCostModel.datacenter_object_store())
    store = CheckpointStore(backend)
    snapshot = synthetic_snapshot(14)
    benchmark(store.save_full, snapshot, "zlib-1")
