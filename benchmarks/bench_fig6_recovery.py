"""Fig. 6 — Recovery latency vs checkpoint size and delta-chain length.

Reproduced claim: restore time scales with statevector bytes and linearly
with chain length (each link is one object read + XOR apply), motivating the
bounded ``full_every`` cadence.  Partial (params-only) restore sidesteps the
statevector entirely: ranged reads against the tensor directory transfer a
near-constant few KB regardless of qubit count.
Kernel timed: restoring a chain-of-4 at 12 qubits.
"""

from repro.bench.experiments import fig6_recovery
from repro.bench.reporting import format_table
from repro.bench.workloads import synthetic_snapshot
from repro.core.store import CheckpointStore
from repro.storage.memory import InMemoryBackend


def test_fig6_recovery(benchmark, report):
    rows = fig6_recovery(qubit_counts=(8, 12, 14), chain_lengths=(1, 4, 8))
    report("Fig. 6 — restore latency vs size and chain length", format_table(rows))

    by_key = {(r["n_qubits"], r["chain_len"]): r for r in rows}
    # longer chains never restore faster (same size class)
    assert by_key[(14, 8)]["restore_s"] >= by_key[(14, 1)]["restore_s"] * 0.8
    # bigger states never restore faster (same chain class)
    assert by_key[(14, 1)]["restore_s"] >= by_key[(8, 1)]["restore_s"] * 0.8
    # params-only restore transfers a tiny, statevector-independent volume
    assert by_key[(14, 1)]["params_only_bytes"] < (
        by_key[(14, 1)]["stored_bytes"] / 20
    )
    assert by_key[(14, 1)]["params_only_bytes"] < (
        by_key[(8, 1)]["params_only_bytes"] * 3
    )

    store = CheckpointStore(InMemoryBackend())
    snapshot = synthetic_snapshot(12)
    record = store.save_full(snapshot, codec="zlib-1")
    for i in range(3):
        nxt = snapshot.copy()
        nxt.step += i + 1
        nxt.params = nxt.params + 1e-3
        record = store.save_delta(nxt, record.id, codec="zlib-1")
        snapshot = nxt
    target = store.latest().id
    benchmark(store.load, target)
