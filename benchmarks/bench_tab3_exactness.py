"""Tab. 3 — Exact-resume validation (the core guarantee).

Reproduced claim: crash/resume training is *bitwise identical* to an
uninterrupted run — max parameter delta exactly 0.0 and identical loss
histories — across exact-gradient, shot-based, and VQE workloads.
Kernel timed: loading the final checkpoint of the classifier case.
"""

from repro.bench.experiments import tab3_exactness
from repro.bench.reporting import format_table
from repro.bench.workloads import classifier_trainer
from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps
from repro.core.store import CheckpointStore
from repro.storage.memory import InMemoryBackend


def test_tab3_exactness(benchmark, report):
    rows = tab3_exactness()
    report("Tab. 3 — exact-resume validation", format_table(rows))

    for row in rows:
        assert row["bitwise_exact"], row
        assert row["max_param_delta"] == 0.0, row

    store = CheckpointStore(InMemoryBackend())
    trainer = classifier_trainer(n_qubits=4, n_samples=32, batch_size=4)
    manager = CheckpointManager(store, EveryKSteps(5))
    trainer.run(5, hooks=[manager])
    target = store.latest().id
    benchmark(store.load, target)
