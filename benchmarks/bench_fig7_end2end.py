"""Fig. 7 — End-to-end training under Poisson failures.

Reproduced claim: as failures densify (MTBF shrinks), the no-checkpoint
baseline's wasted work explodes (it must re-run from step 0) while the
checkpointed run wastes at most one interval per failure.
Kernel timed: a resume (recover latest + trainer restore).
"""

from repro.bench.experiments import fig7_end_to_end
from repro.bench.reporting import format_table
from repro.bench.workloads import classifier_trainer
from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps
from repro.core.recovery import resume_trainer
from repro.core.store import CheckpointStore
from repro.storage.memory import InMemoryBackend


def test_fig7_end_to_end(benchmark, report):
    rows = fig7_end_to_end(
        mtbf_steps=(15, 30, 60, 120), target_steps=40, checkpoint_every=5
    )
    report("Fig. 7 — wasted work under Poisson failures", format_table(rows))

    by_key = {(r["mtbf_steps"], r["strategy"]): r for r in rows}
    for mtbf in (15, 30):
        with_ckpt = by_key[(mtbf, "checkpoint")]
        without = by_key[(mtbf, "none")]
        if without["failures"] > with_ckpt["failures"] > 0:
            assert with_ckpt["waste_fraction"] < without["waste_fraction"]
    # At the harshest MTBF the gap must be decisive.
    assert (
        by_key[(15, "checkpoint")]["waste_fraction"]
        < by_key[(15, "none")]["waste_fraction"]
    )

    store = CheckpointStore(InMemoryBackend())
    trainer = classifier_trainer(n_qubits=4, n_samples=32, batch_size=4)
    manager = CheckpointManager(store, EveryKSteps(5))
    trainer.run(5, hooks=[manager])

    def resume():
        fresh = classifier_trainer(n_qubits=4, n_samples=32, batch_size=4)
        return resume_trainer(fresh, store)

    benchmark(resume)
