"""Tab. 6 — redundancy ablation: replication and tiering vs checkpoint cost.

Reproduced claim: parallel 3-way replication costs no more wall time than a
single remote write (slowest-replica bound); write-through tiering keeps the
slow tier's write cost but restores at local speed; write-back tiering
checkpoints at local speed — shifting the Young–Daly interval ~4-5x shorter —
at the price of a durability window until flush.  Kernel timed: a quorum
write through a 3-way ReplicatedBackend.
"""

import math

from repro.bench.experiments import tab6_redundancy
from repro.bench.reporting import format_table
from repro.storage.memory import InMemoryBackend
from repro.storage.replicated import ReplicatedBackend


def test_tab6_redundancy(benchmark, report):
    rows = tab6_redundancy()
    report("Tab. 6 — redundancy configurations (14-qubit snapshot)", format_table(rows))

    by_config = {r["config"]: r for r in rows}

    # Parallel replication is bounded by the slowest replica, so 3x costs
    # the same wall time as one datacenter write.
    assert by_config["replicated-3x"]["write_s"] == (
        by_config["datacenter"]["write_s"]
    )

    # Write-through tiering pays the slow tier on write but restores fast.
    wt = by_config["tiered/write-through"]
    assert wt["write_s"] == by_config["datacenter"]["write_s"]
    assert wt["restore_s"] == by_config["local-ssd"]["restore_s"]

    # Write-back checkpoints at fast-tier speed, shortening the Young-Daly
    # interval accordingly (cheaper checkpoints -> checkpoint more often).
    wb = by_config["tiered/write-back"]
    assert wb["write_s"] < wt["write_s"] / 5
    assert wb["young_daly_interval_s"] < wt["young_daly_interval_s"]

    # Cold restore (fast tier lost) pays the slow tier plus promotion.
    miss = by_config["tiered/cold-miss"]
    assert miss["restore_s"] > wt["restore_s"]
    assert math.isnan(miss["write_s"])

    backend = ReplicatedBackend([InMemoryBackend() for _ in range(3)])
    payload = b"x" * 262144
    benchmark(backend.write, "ckpt", payload)
