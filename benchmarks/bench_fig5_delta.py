"""Fig. 5 — Delta vs full checkpoint bytes over a training run.

Reproduced claim: delta checkpointing is a *classical-state* optimization.
On the classifier workload (no quantum cache) the snapshot is dominated by a
step-invariant sampler permutation (XOR → zero runs) and an append-only loss
history (suffix-only storage), so delta mode cuts cumulative bytes well
below full-every-step.  Capturing the 2^n statevector flips the result: the
cache changes entirely every step, its XOR delta is full-entropy, and delta
mode buys nothing — the crossover that tells operators when to enable
deltas.  Kernel timed: one delta encode between consecutive-step snapshots.
"""

from repro.bench.experiments import delta_sparsity_probe, fig5_delta
from repro.bench.reporting import format_table
from repro.bench.workloads import classifier_trainer
from repro.core.delta import encode_delta


def test_fig5_delta(benchmark, report):
    rows = fig5_delta(n_steps=20, full_every=10, n_qubits=8)
    sparsity = delta_sparsity_probe(n_qubits=8)
    report(
        "Fig. 5 — cumulative checkpoint bytes: delta mode vs full-every-step",
        format_table(rows)
        + "\n\nvqe+sv consecutive-snapshot byte-identity (sparsity): "
        + f"{sparsity:.3f}",
    )

    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], []).append(row)

    for series in by_workload.values():
        kinds = [r["kind"] for r in series]
        assert kinds[0] == "full" and kinds[1] == "delta"
        assert kinds.count("full") == 2  # steps 1 and 11

    # Classical-state workload: deltas cut cumulative bytes by >2x.
    classical = by_workload["classifier"][-1]
    assert classical["cum_delta_mode"] < classical["cum_full_mode"] / 2

    # Statevector capture defeats deltas (full-entropy XOR + chain overhead).
    quantum = by_workload["vqe+sv"][-1]
    assert quantum["cum_delta_mode"] > quantum["cum_full_mode"] * 0.9

    trainer = classifier_trainer(n_qubits=8, n_samples=256, seed=7)
    trainer.run(5)
    _, base = trainer.capture().to_payload()
    trainer.run(1)
    _, current = trainer.capture().to_payload()
    benchmark(encode_delta, base, current)
