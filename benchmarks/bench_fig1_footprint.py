"""Fig. 1 — Hybrid training-state footprint vs qubit count.

Reproduced claim: the parameter + optimizer state stays O(kB) while the
cached statevector grows 2^n and dominates the checkpoint beyond ~12 qubits.
Kernel timed: snapshot payload construction at 16 qubits.
"""

from repro.bench.experiments import fig1_footprint
from repro.bench.reporting import format_table
from repro.bench.workloads import synthetic_snapshot


def test_fig1_footprint(benchmark, report):
    rows = fig1_footprint(qubit_counts=(4, 8, 12, 16, 20))
    report(
        "Fig. 1 — training-state footprint vs qubit count (HEA, 4 layers)",
        format_table(rows),
    )
    assert rows[-1]["statevector_share"] > 0.99
    assert rows[0]["statevector_share"] < 0.5

    snapshot = synthetic_snapshot(16)
    benchmark(snapshot.to_payload)
