"""Fig. 2 — Checkpoint bytes and pack/unpack latency per codec.

Reproduced claim: compression is a CPU-for-bytes trade with a sharp
structure dependence — byte codecs are near-useless (~1x) on dense amplitude
data (Haar *and* generic shallow-ansatz states: even tiny amplitudes carry
full-entropy mantissas) but collapse the exact-zero runs of sparse
(low-excitation) states by orders of magnitude; lzma is smallest and
slowest.  Kernel timed: zlib-6 pack at 16 qubits.
"""

from repro.bench.experiments import fig2_codecs
from repro.bench.reporting import format_table
from repro.bench.workloads import synthetic_snapshot
from repro.core.serialize import pack_snapshot


def test_fig2_codecs(benchmark, report):
    rows = fig2_codecs(
        qubit_counts=(12, 16),
        codecs=("none", "zlib-1", "zlib-6", "lzma", "bz2"),
        kinds=("haar", "ansatz", "sparse"),
    )
    report("Fig. 2 — codec comparison", format_table(rows))

    by_key = {(r["n_qubits"], r["state"], r["codec"]): r for r in rows}

    # Dense amplitude data barely compresses, whatever its physical origin.
    for kind in ("haar", "ansatz"):
        assert by_key[(16, kind, "zlib-6")]["ratio"] < 1.5

    # Exact-zero structure is where lossless codecs pay: ≥50x at 16 qubits.
    assert by_key[(16, "sparse", "zlib-6")]["ratio"] > 50.0
    assert (
        by_key[(16, "sparse", "zlib-6")]["ratio"]
        > by_key[(16, "haar", "zlib-6")]["ratio"] * 20
    )

    # lzma trades encode CPU for the smallest output on compressible data.
    assert (
        by_key[(16, "sparse", "lzma")]["stored_bytes"]
        <= by_key[(16, "sparse", "zlib-1")]["stored_bytes"]
    )

    # "none" is within rounding of ratio 1.
    assert 0.9 < by_key[(16, "haar", "none")]["ratio"] < 1.1

    snapshot = synthetic_snapshot(16)
    benchmark(pack_snapshot, snapshot, "zlib-6")
