"""Fleet-scale checkpoint service benchmark (the service-layer acceptance run).

Three experiments, all written to ``BENCH_fleet.json`` at the repo root:

1. **8-job sweep + preemption storm** — a learning-rate sweep of identical
   architecture/seed classifier trainings checkpoints every step through the
   shared chunk store while a storm at mid-run kills every job; measures the
   cross-job dedup ratio (sweep jobs share their initial checkpoint, sampler
   permutations, and resume saves), recovered-work ratio, shard balance, and
   verifies every job restores *bitwise-identically* from the store.

2. **Writer-pool throughput scaling** — pushes identical volumes of unique
   snapshots from 8 jobs through pools of 1/2/4 workers against a
   store with remote-object-store write latency (the paper's deployment
   target).  Checkpoint writes are latency-dominated, so pool workers
   overlap them regardless of core count; pack CPU (sha256 + zlib, both
   GIL-releasing) additionally overlaps where cores allow.

3. **Restore-latency sweep** — the read-path acceptance run for the unified
   restore pipeline: full cold restore vs parameters-only warm start vs
   tier-warm full restore out of a tiered store whose slow tier carries a
   modelled object-store cost (RTT + bandwidth).  Parameters-only must
   fetch a small fraction of the bytes; the tier-warm restore must beat the
   cold one because the first restore promoted what it touched.

4. **Chain-restore read-ahead sweep** — cold restore of a long delta chain
   with and without executor read-ahead, against a store with real
   (slept) object-store fetch latency.  Records measured wall seconds and
   modelled pipeline latency; read-ahead must reduce both.

5. **Daemon churn** — the long-running daemon absorbing two waves of job
   submissions (each wave led by a priority-3 job whose weighted share
   must measurably skew tick allocation), a mid-run preemption of the
   whole fleet, reincarnation with staged (prefetched) restores, and a
   clean drain.

6. **Control plane** — file vs socket transport: request round-trip
   latency (ping) and submit throughput while poller threads hammer
   ``status`` (the monitoring-storm regime a sweep dashboard creates).

7. **Fault storm** — a repeating transient-fault window over the store's
   write and read paths (``FlakyBackend.arm_schedule``).  Unretried, the
   storm fails a measurable fraction of checkpoint saves; behind
   ``ReliableBackend`` + ``RetryPolicy`` every op completes, and the added
   latency is exactly the policy's deterministic backoff (recorded, not
   slept) — recovered-op rate and added p50/p90/max latency per save.

8. **Observability overhead** — the identical CPU-bound save workload
   (pool + chunk store, zlib pack, no artificial latency) run fully
   instrumented (live ``MetricsRegistry`` + an installed trace sink
   recording every span) vs fully disabled (``enabled=False`` registry,
   no sink).  Best-of-N wall time per leg; the instrumented/disabled
   ratio must stay ≤ 1.05 — telemetry may not tax the hot path.

9. **Metadata index** — discovery-path latency on synthetic on-disk
   stores of 1k and 10k manifest objects: per-job
   ``latest``/``has_checkpoints`` and fleet ``jobs()`` scanned (no
   index, every probe lists the store) vs indexed (one SQLite point
   query), plus the one-time index build cost and the placement-journal
   open with a 1k-record fold scanned vs suffix-caught-up.  The indexed
   discovery queries on the 10k store must be ≥10x faster than scanning.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.snapshot import TrainingSnapshot
from repro.errors import TransientStorageError
from repro.faults.injector import PreemptionStorm
from repro.ml.dataset import make_moons
from repro.ml.models import VariationalClassifier, VQEModel
from repro.ml.optimizers import Adam
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.engines import sharding
from repro.quantum.observables import Hamiltonian
from repro.quantum.templates import hardware_efficient
from repro.reliability import RetryPolicy
from repro.service import (
    ChunkStore,
    FleetHarness,
    FleetJobSpec,
    ThrottledBackend,
    WriterPool,
)
from repro.storage.flaky import FlakyBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.reliable import ReliableBackend
from repro.storage.sharded import ShardedBackend

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

# Acceptance targets for the service layer.
DEDUP_TARGET = 1.5
SCALING_TARGET = 1.5  # 4 workers vs 1 against a latency-bound store

N_JOBS = 8
TARGET_STEPS = 4
STORM_TICK = 2


def _sweep_factory(lr: float, seed: int = 11):
    def make() -> Trainer:
        model = VariationalClassifier(hardware_efficient(4, 2))
        dataset = make_moons(256, np.random.default_rng(7))
        return Trainer(
            model,
            Adam(lr=lr),
            dataset=dataset,
            config=TrainerConfig(batch_size=8, seed=seed),
        )

    return make


def _write_json(section: str, payload: dict) -> None:
    rows = {}
    if _JSON_PATH.exists():
        try:
            rows = json.loads(_JSON_PATH.read_text())
        except json.JSONDecodeError:
            rows = {}
    rows[section] = payload
    _JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")


def test_fleet_sweep_storm_dedup_and_bitwise_recovery(report):
    """8-job lr sweep, storm at mid-run: dedup > 1.5x, bitwise restores."""
    factories = {
        f"sweep{i:02d}": _sweep_factory(0.01 * (1 + i)) for i in range(N_JOBS)
    }
    specs = [
        FleetJobSpec(
            job_id=job_id,
            trainer_factory=factory,
            target_steps=TARGET_STEPS,
            checkpoint_every=1,
            max_pending=4,
        )
        for job_id, factory in factories.items()
    ]
    backend = ShardedBackend([InMemoryBackend() for _ in range(4)])
    store = ChunkStore(backend, block_bytes=4096)
    pool = WriterPool(workers=4)
    harness = FleetHarness(
        store,
        pool,
        specs,
        events=[PreemptionStorm(at_tick=STORM_TICK)],
    )
    started = time.perf_counter()
    result = harness.run()
    pool.close()
    wall = time.perf_counter() - started

    # Every job finished, was preempted once, and recovered.
    assert all(j.final_step == TARGET_STEPS for j in result.jobs.values())
    assert all(j.preemptions == 1 for j in result.jobs.values())
    assert all(j.restores == 1 for j in result.jobs.values())

    # Bitwise recovery: the stored snapshot round-trips through a fresh
    # trainer exactly (params, optimizer moments, RNG, sampler, history).
    for job_id, factory in factories.items():
        snapshot = store.load_snapshot(job_id)
        fresh = factory()
        fresh.restore(snapshot)
        assert fresh.capture() == snapshot, f"{job_id} restore not bitwise"

    dedup = result.dedup_ratio
    per_shard = backend.objects_per_shard("ch-")
    payload = {
        "jobs": N_JOBS,
        "target_steps": TARGET_STEPS,
        "storm_tick": STORM_TICK,
        "wall_seconds": wall,
        "makespan_ticks": result.makespan_ticks,
        "dedup_ratio": dedup,
        "logical_bytes": result.logical_bytes,
        "physical_bytes": result.physical_bytes,
        "manifest_bytes": result.manifest_bytes,
        "recovered_work_ratio": result.recovered_work_ratio,
        "total_lost_steps": result.total_lost_steps,
        "abandoned_saves": sum(
            j.abandoned_saves for j in result.jobs.values()
        ),
        "restore_bitwise": True,
        "chunk_objects_per_shard": {str(k): v for k, v in per_shard.items()},
    }
    _write_json("sweep_storm", payload)

    table = "\n".join(
        [
            f"{'jobs':<26} {N_JOBS}",
            f"{'makespan (ticks)':<26} {result.makespan_ticks}",
            f"{'wall (s)':<26} {wall:.2f}",
            f"{'logical bytes':<26} {result.logical_bytes}",
            f"{'physical bytes':<26} {result.physical_bytes}",
            f"{'cross-job dedup':<26} {dedup:.2f}x",
            f"{'recovered-work ratio':<26} {result.recovered_work_ratio:.3f}",
            f"{'chunks per shard':<26} {sorted(per_shard.values())}",
            f"{'bitwise restores':<26} {N_JOBS}/{N_JOBS}",
        ]
    )
    report("Fleet service: 8-job sweep + preemption storm", table)

    assert dedup > DEDUP_TARGET, (
        f"cross-job dedup {dedup:.2f}x below the {DEDUP_TARGET}x target"
    )
    # Hash routing keeps shards balanced with zero placement state.
    assert min(per_shard.values()) > 0


def _synthetic_snapshots(n_jobs: int, saves_per_job: int, tensor_elems: int):
    """Unique (no-dedup) snapshots: all pool time is pack+write work."""
    rng = np.random.default_rng(0)
    jobs = {}
    for j in range(n_jobs):
        snapshots = []
        for s in range(saves_per_job):
            # Rounded normals: compressible enough that zlib does real work.
            payload = np.round(rng.normal(size=tensor_elems), 2)
            snapshots.append(
                TrainingSnapshot(
                    step=s + 1,
                    params=rng.normal(size=64),
                    optimizer_state={"name": "adam", "t": s},
                    rng_state={"bit_generator": "PCG64", "state": {"s": s}},
                    model_fingerprint=f"scaling-{j}",
                    statevector=None,
                    extra={"payload": payload},
                )
            )
        jobs[f"scale{j:02d}"] = snapshots
    return jobs


def test_writer_pool_throughput_scaling(report):
    """Fleet checkpoint throughput must scale with writer-pool size.

    The store carries a 20 ms per-write latency (a datacenter object store's
    round trip): checkpoint commits are latency-dominated, exactly the
    regime the shared pool exists for.  One worker serializes every round
    trip; four workers keep four in flight.
    """
    write_delay = 0.02
    jobs = _synthetic_snapshots(n_jobs=8, saves_per_job=2, tensor_elems=1 << 14)
    worker_counts = (1, 2, 4)
    rows = {}
    for workers in worker_counts:
        remote = ThrottledBackend(InMemoryBackend())
        remote.write_delay_seconds = write_delay
        store = ChunkStore(remote, codec="zlib-1", block_bytes=1 << 16)
        pool = WriterPool(workers=workers)
        channels = {
            job_id: pool.channel(job_id, max_pending=8) for job_id in jobs
        }
        started = time.perf_counter()
        for job_id, snapshots in jobs.items():
            for snapshot in snapshots:
                channels[job_id].submit(
                    lambda j=job_id, s=snapshot: store.save_snapshot(j, s)
                )
        pool.drain()
        elapsed = time.perf_counter() - started
        pool.close()
        mb = store.stats.logical_bytes / 1e6
        rows[workers] = {
            "seconds": elapsed,
            "mb_per_second": mb / elapsed,
            "checkpoints": store.stats.checkpoints,
            "store_writes": remote.delayed_writes,
        }
    speedup = rows[worker_counts[-1]]["mb_per_second"] / rows[1]["mb_per_second"]

    # Same pool, real gradient work: a parameter-shift VQE trainer whose
    # shifted-batch fan-out rides the shard executor while the writer pool
    # commits its checkpoints.  The in-process and sharded runs must land on
    # bitwise-identical parameters — fan-out is a pure throughput knob.
    def shift_trainer(shard_workers: int) -> Trainer:
        model = VQEModel(
            hardware_efficient(6, 2),
            Hamiltonian.transverse_field_ising(6, 1.0, 0.7),
            gradient_method="parameter-shift",
        )
        return Trainer(
            model,
            Adam(lr=0.05),
            config=TrainerConfig(seed=7, shard_workers=shard_workers),
        )

    grad_steps = 3
    grad_rows = {}
    grad_params = {}
    for shard_workers in (0, 2):
        remote = ThrottledBackend(InMemoryBackend())
        remote.write_delay_seconds = write_delay
        store = ChunkStore(remote, codec="zlib-1", block_bytes=1 << 16)
        pool = WriterPool(workers=2)
        channel = pool.channel("grad-job", max_pending=4)
        trainer = shift_trainer(shard_workers)
        started = time.perf_counter()
        for _ in range(grad_steps):
            trainer.train_step()
            snapshot = trainer.capture()
            channel.submit(lambda s=snapshot: store.save_snapshot("grad-job", s))
        pool.drain()
        elapsed = time.perf_counter() - started
        pool.close()
        grad_rows[str(shard_workers)] = {
            "seconds": elapsed,
            "steps_per_second": grad_steps / elapsed,
            "checkpoints": store.stats.checkpoints,
        }
        grad_params[shard_workers] = trainer.params.copy()
    sharding.shutdown_default()
    assert np.array_equal(grad_params[0], grad_params[2]), (
        "sharded training diverged from in-process training"
    )

    payload = {
        "jobs": 8,
        "saves_per_job": 2,
        "write_delay_seconds": write_delay,
        "cpu_count": os.cpu_count(),
        "workers": {str(k): v for k, v in rows.items()},
        f"speedup_{worker_counts[-1]}v1": speedup,
        "sharded_gradients": {
            "workload": "6-qubit 2-layer HEA VQE, parameter-shift",
            "steps": grad_steps,
            "shard_workers": grad_rows,
            "bitwise_identical": True,
        },
    }
    _write_json("pool_scaling", payload)

    table = "\n".join(
        [f"{'workers':<10} {'seconds':>10} {'MB/s':>10}"]
        + [
            f"{workers:<10} {row['seconds']:>10.3f} {row['mb_per_second']:>10.1f}"
            for workers, row in rows.items()
        ]
        + [f"{'speedup':<10} {speedup:>21.2f}x ({worker_counts[-1]} vs 1 worker)"]
    )
    report("Fleet service: writer-pool throughput scaling", table)

    assert speedup > SCALING_TARGET, (
        f"pool scaling {speedup:.2f}x below the {SCALING_TARGET}x target"
    )


# ---------------------------------------------------------------------------
# Restore-latency sweep: full vs parameters-only vs tier-warm
# ---------------------------------------------------------------------------

# Parameters-only warm start must fetch at most this fraction of full bytes.
PARAMS_FETCH_FRACTION = 0.2
# The tier-warm restore must cost at most this fraction of the cold one in
# modelled transfer seconds (it should be near zero: everything is resident).
TIER_WARM_FRACTION = 0.5


def _restore_workload_snapshot(step: int) -> TrainingSnapshot:
    """One checkpoint with a fat statevector cache and small parameters."""
    rng = np.random.default_rng(100 + step)
    elems = 1 << 15  # 512 KiB of complex128 warm-start cache
    return TrainingSnapshot(
        step=step,
        params=rng.standard_normal(96),
        optimizer_state={"name": "adam", "t": step, "m": rng.standard_normal(96)},
        rng_state={"bit_generator": "PCG64", "state": {"state": step}},
        model_fingerprint="restore-sweep",
        loss_history=rng.standard_normal(step),
        statevector=rng.standard_normal(elems) + 1j * rng.standard_normal(elems),
    )


def test_restore_latency_sweep(report):
    """Full vs parameters-only vs tier-warm restore through the pipeline."""
    from repro.storage.simulated import SimulatedRemoteBackend, TransferCostModel
    from repro.storage.tiered import TieredBackend

    # Slow tier: datacenter object store (10 ms RTT, 200 MB/s); fast tier:
    # local memory.  Restore cost is the *modelled* transfer time, so the
    # sweep is deterministic across machines.
    def remote():
        return SimulatedRemoteBackend(
            TransferCostModel(bandwidth_bytes_per_s=200e6, rtt_seconds=0.01)
        )

    slow = remote()
    write_tier = TieredBackend(
        InMemoryBackend(), slow, fast_capacity_bytes=1 << 24
    )
    store = ChunkStore(write_tier, block_bytes=1 << 16)
    for step in (1, 2, 3):
        store.save_snapshot("sweep", _restore_workload_snapshot(step))
    reference = _restore_workload_snapshot(3)

    def cold_store():
        """Fresh tier over the same slow store; returns the modelled cost
        of the open-time manifest/adoption scan alongside the store."""
        tier = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=1 << 24
        )
        slow.reset_accounting()
        fresh = ChunkStore(tier, block_bytes=1 << 16)
        adopt = slow.simulated_seconds
        slow.reset_accounting()
        return tier, fresh, adopt

    rows = {}

    # 1. cold full restore: every chunk comes over the modelled wire.
    tier, fresh, adopt_seconds = cold_store()
    started = time.perf_counter()
    snapshot = fresh.load_snapshot("sweep")
    assert snapshot == reference, "cold restore not bitwise"
    cold_plan = fresh.plan_restore("sweep")
    rows["cold_full"] = {
        "modelled_seconds": slow.simulated_seconds,
        "wall_seconds": time.perf_counter() - started,
        "fetch_bytes": cold_plan.fetch_bytes,
        "blocks": cold_plan.n_blocks,
    }

    # 2. tier-warm full restore: the cold restore promoted what it touched.
    slow.reset_accounting()
    started = time.perf_counter()
    snapshot = fresh.load_snapshot("sweep")
    assert snapshot == reference, "tier-warm restore not bitwise"
    rows["tier_warm_full"] = {
        "modelled_seconds": slow.simulated_seconds,
        "wall_seconds": time.perf_counter() - started,
        "fetch_bytes": cold_plan.fetch_bytes,
        "fast_hits": tier.stats.fast_hits,
        "promotions": tier.stats.promotions,
    }

    # 3. parameters-only warm start from a cold tier.
    _, fresh, _ = cold_store()
    slow.reset_accounting()
    started = time.perf_counter()
    _, tensors = fresh.load_partial("sweep", ["params"])
    np.testing.assert_array_equal(tensors["params"], reference.params)
    params_plan = fresh.plan_restore("sweep", names=["params"])
    rows["params_only"] = {
        "modelled_seconds": slow.simulated_seconds,
        "wall_seconds": time.perf_counter() - started,
        "fetch_bytes": params_plan.fetch_bytes,
        "blocks": params_plan.n_blocks,
    }

    fraction = rows["params_only"]["fetch_bytes"] / rows["cold_full"]["fetch_bytes"]
    warm_ratio = (
        rows["tier_warm_full"]["modelled_seconds"]
        / rows["cold_full"]["modelled_seconds"]
    )
    payload = {
        "checkpoints": 3,
        "total_stored_bytes": cold_plan.total_stored_bytes,
        "adopt_modelled_seconds": adopt_seconds,
        "params_fetch_fraction": fraction,
        "tier_warm_vs_cold_modelled": warm_ratio,
        **rows,
    }
    _write_json("restore_latency", payload)

    table = "\n".join(
        [f"{'restore':<18} {'modelled (s)':>14} {'bytes':>12} "]
        + [
            f"{name:<18} {row['modelled_seconds']:>14.4f} "
            f"{row['fetch_bytes']:>12}"
            for name, row in rows.items()
        ]
        + [
            f"{'params fraction':<18} {fraction:>14.3f}",
            f"{'warm/cold':<18} {warm_ratio:>14.3f}",
        ]
    )
    report("Fleet service: restore-latency sweep", table)

    assert fraction < PARAMS_FETCH_FRACTION, (
        f"parameters-only restore fetched {fraction:.1%} of the full bytes "
        f"(target < {PARAMS_FETCH_FRACTION:.0%})"
    )
    assert warm_ratio < TIER_WARM_FRACTION, (
        f"tier-warm restore cost {warm_ratio:.1%} of cold "
        f"(target < {TIER_WARM_FRACTION:.0%})"
    )


# ---------------------------------------------------------------------------
# Chain-restore read-ahead: cold delta-chain latency with/without prefetch
# ---------------------------------------------------------------------------

CHAIN_LINKS = 8
READAHEAD_LINKS = 3
# Object-store-like fetch cost, really slept by the throttled backend.
READ_RTT_SECONDS = 0.002
READ_BANDWIDTH = 5e6  # 5 MB/s: a cold WAN object store
DECODE_BANDWIDTH = 200e6  # modelled zlib decode throughput
# The measured wall-clock speedup read-ahead must deliver on the cold chain.
PREFETCH_WALL_SPEEDUP_TARGET = 1.2


def _chain_snapshot(step: int) -> TrainingSnapshot:
    """Chain links with real per-step statevector churn (nothing dedups)."""
    rng = np.random.default_rng(4000 + step)
    elems = 1 << 14  # 256 KiB of complex128 per link
    return TrainingSnapshot(
        step=step,
        params=rng.standard_normal(96),
        optimizer_state={"name": "adam", "t": step},
        rng_state={"bit_generator": "PCG64", "state": {"state": step}},
        model_fingerprint="chain-sweep",
        loss_history=rng.standard_normal(step),
        statevector=rng.standard_normal(elems) + 1j * rng.standard_normal(elems),
    )


def test_chain_restore_readahead_sweep(report):
    """Delta-chain restore: read-ahead must beat the sequential walk.

    A full checkpoint plus 7 XOR deltas live behind a store whose reads
    cost RTT + bytes/bandwidth in *real slept time*.  The sequential
    restore (readahead_links=0) fetches link i+1 only after decoding link
    i; the read-ahead restore keeps up to 3 links of transfer in flight
    behind the decode cursor.  Both must produce bitwise-identical
    tensors; the pipelined walk must be measurably faster, and the
    modelled pipeline latency (same cost model the restore-latency sweep
    uses) must agree on the direction.
    """
    from repro.core.store import CheckpointStore

    inner = InMemoryBackend()
    build_store = CheckpointStore(inner)
    snapshots = [_chain_snapshot(step) for step in range(1, CHAIN_LINKS + 1)]
    record = build_store.save_full(snapshots[0])
    for snapshot in snapshots[1:]:
        record = build_store.save_delta(snapshot, base_id=record.id)
    tip = record.id
    reference = snapshots[-1]

    throttled = ThrottledBackend(inner)
    throttled.read_rtt_seconds = READ_RTT_SECONDS
    throttled.read_bandwidth_bytes_per_s = READ_BANDWIDTH

    def timed_restore(readahead: int):
        store = CheckpointStore(throttled, readahead_links=readahead)
        started = time.perf_counter()
        restored = store.load(tip)
        wall = time.perf_counter() - started
        assert restored == reference, "chain restore not bitwise"
        return wall, store

    wall_sequential, store = timed_restore(0)
    wall_readahead, _ = timed_restore(READAHEAD_LINKS)
    speedup = wall_sequential / wall_readahead

    # Modelled pipeline latency from the actual plans (fetch = RTT +
    # bytes/bw per link; decode = raw bytes / decode bandwidth).  The
    # pipelined model overlaps fetch i with decode i-1, with up to
    # READAHEAD_LINKS transfers sharing the wire.
    plans = store.restore_plan(tip)
    fetch = [
        READ_RTT_SECONDS + plan.fetch_bytes / READ_BANDWIDTH for plan in plans
    ]
    decode = [
        sum(t.blocks[0].raw_nbytes for t in plan.tensors.values())
        / DECODE_BANDWIDTH
        for plan in plans
    ]
    modelled_sequential = sum(fetch) + sum(decode)
    width = max(1, READAHEAD_LINKS)
    modelled_readahead = (
        fetch[0]
        + sum(
            max(decode[i - 1], fetch[i] / width)
            for i in range(1, len(plans))
        )
        + decode[-1]
    )

    payload = {
        "links": CHAIN_LINKS,
        "readahead_links": READAHEAD_LINKS,
        "read_rtt_seconds": READ_RTT_SECONDS,
        "read_bandwidth_bytes_per_s": READ_BANDWIDTH,
        "chain_fetch_bytes": sum(plan.fetch_bytes for plan in plans),
        "wall_sequential_seconds": wall_sequential,
        "wall_readahead_seconds": wall_readahead,
        "wall_speedup": speedup,
        "modelled_sequential_seconds": modelled_sequential,
        "modelled_readahead_seconds": modelled_readahead,
        "modelled_speedup": modelled_sequential / modelled_readahead,
        "restore_bitwise": True,
    }
    _write_json("chain_readahead", payload)

    table = "\n".join(
        [
            f"{'chain links':<26} {CHAIN_LINKS}",
            f"{'fetch bytes':<26} {payload['chain_fetch_bytes']}",
            f"{'sequential wall (s)':<26} {wall_sequential:.3f}",
            f"{'read-ahead wall (s)':<26} {wall_readahead:.3f}",
            f"{'measured speedup':<26} {speedup:.2f}x",
            f"{'modelled sequential (s)':<26} {modelled_sequential:.3f}",
            f"{'modelled read-ahead (s)':<26} {modelled_readahead:.3f}",
            f"{'modelled speedup':<26} "
            f"{modelled_sequential / modelled_readahead:.2f}x",
        ]
    )
    report("Fleet service: delta-chain read-ahead", table)

    assert modelled_readahead < modelled_sequential, (
        "read-ahead must reduce modelled cold-chain restore latency"
    )
    assert speedup > PREFETCH_WALL_SPEEDUP_TARGET, (
        f"chain read-ahead speedup {speedup:.2f}x below the "
        f"{PREFETCH_WALL_SPEEDUP_TARGET}x target"
    )


# ---------------------------------------------------------------------------
# Daemon churn: submissions arriving over time, a storm, a clean drain
# ---------------------------------------------------------------------------

DAEMON_JOBS_PER_WAVE = 3
DAEMON_TARGET_STEPS = 20


DAEMON_LEAD_PRIORITY = 3


def test_daemon_churn_storm_drain(report):
    """The long-running daemon absorbs churn, a storm, and a drain.

    Two waves of submissions (the second arriving while the first runs),
    a fleet-wide preemption with staged restores during the restart delay,
    then a drain that finishes every job.  Every job must complete at its
    target step with its history restorable bitwise from the shared store.

    Each wave's first job carries ``priority=3``: under the weighted
    scheduler it must receive a measurably larger share of training ticks
    and therefore finish ahead of its priority-1 wave-mates.
    """
    import threading

    from repro.service import DaemonClient, DaemonConfig, FleetDaemon

    store = ChunkStore(InMemoryBackend(), block_bytes=4096)
    pool = WriterPool(workers=2)
    import tempfile

    control = tempfile.mkdtemp(prefix="qckpt-daemon-bench-")
    daemon = FleetDaemon(
        store, pool, control, config=DaemonConfig(tick_seconds=0.002)
    )
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    client = DaemonClient(control, timeout=60.0)
    started = time.perf_counter()
    try:
        client.ping()

        def spec(i: int) -> dict:
            # The first job of each wave is the high-priority lead.
            lead = i % DAEMON_JOBS_PER_WAVE == 0
            return {
                "job_id": f"churn{i:02d}",
                "workload": "classifier",
                "target_steps": DAEMON_TARGET_STEPS,
                "priority": DAEMON_LEAD_PRIORITY if lead else 1,
                "params": {
                    "qubits": 3,
                    "layers": 1,
                    "lr": 0.01 * (1 + i),
                    "samples": 32,
                },
            }

        for i in range(DAEMON_JOBS_PER_WAVE):
            assert client.submit(spec(i))["ok"]
        # Let wave 1 make (checkpointed) progress, then preempt every
        # running job — mid-flight, well before their targets.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            jobs = client.status()["jobs"]
            if all((job["step"] or 0) >= 2 for job in jobs.values()):
                break
            time.sleep(0.01)
        storm = client.preempt(None, restart_delay_ticks=5)
        # Wave 2 arrives while wave 1 is down/reincarnating: churn.
        for i in range(DAEMON_JOBS_PER_WAVE, 2 * DAEMON_JOBS_PER_WAVE):
            assert client.submit(spec(i))["ok"]
        status = client.status()
        client.drain(wait=True, timeout=120.0)
    finally:
        thread.join(timeout=30.0)
        pool.close()
    wall = time.perf_counter() - started
    assert not thread.is_alive()

    final = {
        job_id: job
        for job_id, job in daemon._op_status(None)["jobs"].items()
    }
    assert len(final) == 2 * DAEMON_JOBS_PER_WAVE
    assert all(job["state"] == "finished" for job in final.values()), final
    assert all(
        job["final_step"] == DAEMON_TARGET_STEPS for job in final.values()
    )
    storm_jobs = [job for job in final.values() if job["preemptions"]]
    assert storm_jobs, "the storm must have preempted wave 1"
    assert all(job["restores"] == 1 for job in storm_jobs)

    # Bitwise: the store's newest checkpoint per job round-trips.
    for job_id in final:
        assert store.load_snapshot(job_id).step == DAEMON_TARGET_STEPS

    # Priority skew: every job ran the same 20 steps, so a larger tick
    # share means finishing *earlier*.  Each wave's priority-3 lead must
    # beat every priority-1 job of its own wave to the finish line, and
    # the leads' mean scheduling rate (steps per tick of presence) must
    # visibly exceed the rank and file's.
    sched = {
        job_id: {
            "priority": job["priority"],
            "ticks_scheduled": job["ticks_scheduled"],
            "finish_tick": job["finish_tick"],
        }
        for job_id, job in final.items()
    }
    for wave in range(2):
        ids = [
            f"churn{i:02d}"
            for i in range(
                wave * DAEMON_JOBS_PER_WAVE, (wave + 1) * DAEMON_JOBS_PER_WAVE
            )
        ]
        lead, others = ids[0], ids[1:]
        for other in others:
            assert final[lead]["finish_tick"] < final[other]["finish_tick"], (
                f"priority-{DAEMON_LEAD_PRIORITY} {lead} "
                f"(tick {final[lead]['finish_tick']}) did not beat "
                f"priority-1 {other} (tick {final[other]['finish_tick']})"
            )

    payload = {
        "sched": sched,
        "lead_priority": DAEMON_LEAD_PRIORITY,
        "jobs": len(final),
        "waves": 2,
        "target_steps": DAEMON_TARGET_STEPS,
        "storm_preempted": sorted(storm.get("preempted", [])),
        "wall_seconds": wall,
        "scheduler_ticks": daemon.tick,
        "requests_served": daemon.requests_served,
        "checkpoints": store.stats.checkpoints,
        "dedup_ratio": store.stats.dedup_ratio,
        "recovered_steps": sum(
            sum(job["resumed_from_steps"]) for job in final.values()
        ),
        "lost_steps": sum(job["lost_steps"] for job in final.values()),
        "all_finished": True,
    }
    _write_json("daemon_churn", payload)

    lead_finish = [
        s["finish_tick"] for s in sched.values() if s["priority"] > 1
    ]
    other_finish = [
        s["finish_tick"] for s in sched.values() if s["priority"] == 1
    ]
    table = "\n".join(
        [
            f"{'jobs (2 waves)':<26} {payload['jobs']}",
            f"{'storm preempted':<26} {len(payload['storm_preempted'])}",
            f"{'wall (s)':<26} {wall:.2f}",
            f"{'scheduler ticks':<26} {daemon.tick}",
            f"{'requests served':<26} {daemon.requests_served}",
            f"{'checkpoints':<26} {payload['checkpoints']}",
            f"{'dedup':<26} {payload['dedup_ratio']:.2f}x",
            f"{'lost steps':<26} {payload['lost_steps']}",
            f"{'pri-3 finish ticks':<26} {sorted(lead_finish)}",
            f"{'pri-1 finish ticks':<26} {sorted(other_finish)}",
        ]
    )
    report("Fleet service: daemon churn + storm + drain", table)


# ---------------------------------------------------------------------------
# Control plane: file vs socket transport under a status-polling storm
# ---------------------------------------------------------------------------

CONTROL_PINGS = 50
CONTROL_SUBMIT_JOBS = 6
CONTROL_POLLERS = 3


def test_control_plane_transport_latency(report):
    """File vs socket control transports against one live daemon.

    The same daemon serves both planes, so the comparison isolates the
    transport: (1) round-trip latency of ``ping`` measured per transport,
    (2) submit-to-finished throughput of a wave of 1-step jobs while
    poller threads hammer ``status`` through the same transport — the
    monitoring-storm regime a sweep dashboard creates.  Both transports
    must complete every operation; the numbers land in
    ``BENCH_fleet.json`` under ``control_plane``.
    """
    import tempfile
    import threading

    from repro.service import DaemonClient, DaemonConfig, FleetDaemon

    store = ChunkStore(InMemoryBackend(), block_bytes=4096)
    pool = WriterPool(workers=2)
    control = tempfile.mkdtemp(prefix="qckpt-ctl-bench-")
    daemon = FleetDaemon(
        store,
        pool,
        control,
        config=DaemonConfig(tick_seconds=0.001),
        listen="127.0.0.1:0",
    )
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while daemon.socket_transport.port == 0:
        assert time.monotonic() < deadline, "socket transport never bound"
        time.sleep(0.002)
    clients = {
        "file": DaemonClient(control, timeout=60.0),
        "socket": DaemonClient(connect=daemon.listen_address, timeout=60.0),
    }
    rows = {}
    try:
        for name, client in clients.items():
            client.ping()  # warm the path (socket: connect + handshake)

            # 1. round-trip latency
            samples = []
            for _ in range(CONTROL_PINGS):
                started = time.perf_counter()
                assert client.ping()["ok"]
                samples.append(time.perf_counter() - started)
            samples.sort()
            p50 = samples[len(samples) // 2]
            p90 = samples[(len(samples) * 9) // 10]

            # 2. submit throughput under a status-polling storm
            stop = threading.Event()
            polls = [0] * CONTROL_POLLERS

            def poll_loop(slot, poll_client):
                while not stop.is_set():
                    poll_client.status()
                    polls[slot] += 1

            pollers = [
                threading.Thread(
                    target=poll_loop, args=(slot, client), daemon=True
                )
                for slot in range(CONTROL_POLLERS)
            ]
            for poller in pollers:
                poller.start()
            job_ids = [
                f"{name}{i:02d}" for i in range(CONTROL_SUBMIT_JOBS)
            ]
            started = time.perf_counter()
            try:
                for job_id in job_ids:
                    response = client.submit(
                        {
                            "job_id": job_id,
                            "workload": "classifier",
                            "target_steps": 1,
                            "params": {
                                "qubits": 2,
                                "layers": 1,
                                "samples": 16,
                                "batch_size": 4,
                            },
                        }
                    )
                    assert response["ok"], response
                wait_deadline = time.monotonic() + 60.0
                while time.monotonic() < wait_deadline:
                    jobs = client.status()["jobs"]
                    if all(
                        jobs[job_id]["state"] == "finished"
                        for job_id in job_ids
                    ):
                        break
                    time.sleep(0.005)
                else:
                    raise AssertionError(f"{name} submit wave never finished")
            finally:
                stop.set()
                for poller in pollers:
                    poller.join(timeout=10.0)
            elapsed = time.perf_counter() - started
            rows[name] = {
                "ping_p50_ms": p50 * 1e3,
                "ping_p90_ms": p90 * 1e3,
                "submit_wave_seconds": elapsed,
                "submits_per_second": CONTROL_SUBMIT_JOBS / elapsed,
                "status_polls_during_wave": sum(polls),
            }
    finally:
        try:
            clients["file"].stop(timeout=10.0)
        except Exception:  # noqa: BLE001 - daemon may already be gone
            pass
        clients["socket"].close()
        thread.join(timeout=30.0)
        pool.close()

    payload = {
        "pings": CONTROL_PINGS,
        "submit_jobs": CONTROL_SUBMIT_JOBS,
        "pollers": CONTROL_POLLERS,
        "requests_served": daemon.requests_served,
        **rows,
    }
    _write_json("control_plane", payload)

    table = "\n".join(
        [
            f"{'transport':<10} {'p50 (ms)':>10} {'p90 (ms)':>10} "
            f"{'submits/s':>10} {'polls':>7}"
        ]
        + [
            f"{name:<10} {row['ping_p50_ms']:>10.2f} "
            f"{row['ping_p90_ms']:>10.2f} "
            f"{row['submits_per_second']:>10.1f} "
            f"{row['status_polls_during_wave']:>7}"
            for name, row in rows.items()
        ]
    )
    report("Fleet service: control-plane transports (file vs socket)", table)

    # Both transports finished the identical op sequence; the storm was real.
    for name, row in rows.items():
        assert row["status_polls_during_wave"] > 0, f"{name} storm idle"


# ---------------------------------------------------------------------------
# Observability overhead: instrumented vs disabled on the hot save path
# ---------------------------------------------------------------------------

OBS_OVERHEAD_TARGET = 1.05  # instrumented may cost at most 5% wall time
OBS_REPEATS = 5  # best-of-N per leg; min absorbs scheduler noise
OBS_JOBS = 4
OBS_SAVES_PER_JOB = 24  # leg long enough that a scheduler hiccup is < 5%
OBS_SAMPLE_SECONDS = 0.1  # 5-50x the production heartbeat cadence


def _obs_leg(jobs, *, instrumented: bool):
    """One timed run of the save workload, telemetry on or off.

    The instrumented leg is the worst case the telemetry layer presents in
    production: a live registry fed by the pool, channel, and chunk-store
    stats on every save, a trace sink recording a span per submitted
    task (``channel.submit`` captures the ambient context, so each pool
    task emits a ``pool.task``/``store.save`` span pair — each save span
    carrying per-stage profiling attrs), and a background
    :class:`TimeSeriesSampler` writing the registry into a SQLite history
    at ``OBS_SAMPLE_SECONDS`` cadence (well above the production
    heartbeat rate) while the saves run.  The disabled leg routes every
    instrument to the null fast path and installs no sink, so
    ``span_scope`` yields without allocating.
    """
    import tempfile
    from pathlib import Path

    from repro.obs import trace as obs_trace
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeseries import TimeSeriesDB, TimeSeriesSampler
    from repro.obs.trace import MemoryTraceSink

    registry = MetricsRegistry(enabled=instrumented)
    sink = MemoryTraceSink(capacity=100_000) if instrumented else None
    previous = obs_trace.set_trace_sink(sink)
    tsdir = tsdb = pump = None
    stop = threading.Event()
    if instrumented:
        tsdir = tempfile.TemporaryDirectory(prefix="qckpt-obs-bench-")
        tsdb = TimeSeriesDB(Path(tsdir.name) / "timeseries.db")
        sampler = TimeSeriesSampler(
            tsdb, registry, interval_seconds=OBS_SAMPLE_SECONDS
        )

        def _pump():
            while not stop.wait(OBS_SAMPLE_SECONDS):
                sampler.sample()

        pump = threading.Thread(target=_pump, daemon=True)
    try:
        store = ChunkStore(
            InMemoryBackend(),
            codec="zlib-1",
            block_bytes=1 << 16,
            metrics=registry,
        )
        pool = WriterPool(workers=2, metrics=registry)
        channels = {
            job_id: pool.channel(job_id, max_pending=8) for job_id in jobs
        }
        if pump is not None:
            pump.start()
        started = time.perf_counter()
        for job_id, snapshots in jobs.items():
            for snapshot in snapshots:
                with obs_trace.span_scope("bench.save", job=job_id):
                    channels[job_id].submit(
                        lambda j=job_id, s=snapshot: store.save_snapshot(j, s)
                    )
        pool.drain()
        elapsed = time.perf_counter() - started
        pool.close()
    finally:
        stop.set()
        if pump is not None:
            pump.join(timeout=10.0)
        obs_trace.set_trace_sink(previous)
    spans = len(sink.records()) if sink is not None else 0
    series = len(registry.snapshot()["series"])
    samples = profiled = 0
    if instrumented:
        sampler.sample()  # terminal sample: short legs still record >= 1
        samples = sampler.samples_taken
        tsdb.close()
        tsdir.cleanup()
        profiled = sum(
            1
            for record in sink.records()
            if record.get("name") == "store.save"
            and record.get("attrs", {}).get("stages")
        )
    return elapsed, spans, series, samples, profiled


def test_obs_overhead(report):
    """Full telemetry must cost ≤5% wall time on the hot save path.

    "Full" includes the observatory: the instrumented leg samples the
    registry into a SQLite time-series history at 50 ms cadence while
    the saves run, and every save span carries per-stage profiling
    attrs.  Identical CPU-bound workload (no artificial store latency —
    latency would hide any overhead), legs interleaved
    instrumented/disabled to share thermal and cache conditions,
    best-of-N minima compared.
    """
    jobs = _synthetic_snapshots(
        n_jobs=OBS_JOBS,
        saves_per_job=OBS_SAVES_PER_JOB,
        tensor_elems=1 << 15,  # 256 KiB payloads: representative checkpoints
    )
    on_times, off_times = [], []
    on_spans = on_series = on_samples = on_profiled = 0
    off_spans = off_series = off_samples = 0
    _obs_leg(jobs, instrumented=True)  # warm-up: imports, allocator, zlib
    for _ in range(OBS_REPEATS):
        elapsed, on_spans, on_series, on_samples, on_profiled = _obs_leg(
            jobs, instrumented=True
        )
        on_times.append(elapsed)
        elapsed, off_spans, off_series, off_samples, _ = _obs_leg(
            jobs, instrumented=False
        )
        off_times.append(elapsed)

    # The instrumented leg really recorded; the disabled leg really didn't.
    total_saves = OBS_JOBS * OBS_SAVES_PER_JOB
    assert on_spans >= total_saves, f"only {on_spans} spans recorded"
    assert on_series > 0, "instrumented registry stayed empty"
    assert on_samples > 0, "timeseries sampler recorded nothing"
    assert on_profiled >= total_saves, (
        f"only {on_profiled} save spans carried stage profiling attrs"
    )
    assert off_spans == 0 and off_series == 0 and off_samples == 0, (
        "disabled leg leaked telemetry"
    )

    # Gate on the best *paired* ratio: leg i instrumented vs leg i
    # disabled ran back to back under the same machine conditions, so a
    # load spike inflates both and divides out; genuine telemetry
    # overhead is present in every instrumented run and survives the
    # min.  (Comparing global minima instead lets one background hiccup
    # during the instrumented half fail a 1-CPU runner spuriously.)
    ratio = min(on / off for on, off in zip(on_times, off_times))
    payload = {
        "jobs": OBS_JOBS,
        "saves_per_job": OBS_SAVES_PER_JOB,
        "repeats": OBS_REPEATS,
        "instrumented_best_seconds": min(on_times),
        "disabled_best_seconds": min(off_times),
        "overhead_ratio": ratio,
        "overhead_target": OBS_OVERHEAD_TARGET,
        "spans_per_instrumented_run": on_spans,
        "series_per_instrumented_run": on_series,
        "timeseries_samples_per_run": on_samples,
        "profiled_save_spans_per_run": on_profiled,
    }
    _write_json("obs_overhead", payload)

    table = "\n".join(
        [
            f"{'saves per leg':<26} {total_saves}",
            f"{'instrumented best (s)':<26} {min(on_times):.4f}",
            f"{'disabled best (s)':<26} {min(off_times):.4f}",
            f"{'overhead ratio':<26} {ratio:.3f} "
            f"(target <= {OBS_OVERHEAD_TARGET})",
            f"{'spans recorded':<26} {on_spans}",
            f"{'series recorded':<26} {on_series}",
            f"{'timeseries samples':<26} {on_samples}",
            f"{'profiled save spans':<26} {on_profiled}",
        ]
    )
    report("Fleet service: observability overhead (on vs off)", table)

    assert ratio <= OBS_OVERHEAD_TARGET, (
        f"telemetry overhead {ratio:.3f}x exceeds the "
        f"{OBS_OVERHEAD_TARGET}x budget"
    )


# ---------------------------------------------------------------------------
# Fault storm: transient-error windows vs the reliability layer
# ---------------------------------------------------------------------------

STORM_JOBS = 4
STORM_SAVES_PER_JOB = 10
STORM_ELEMS = 384  # 3 KiB of params -> a couple of chunks per save

# Repeating transient window: write ordinals 4-5 fail, healing by ordinal 6,
# recurring every 9 ops.  count < max_attempts-1, so the policy always
# out-lasts a window and no op can exhaust.
WRITE_STORM = {"first": 4, "count": 2, "period": 9}
READ_STORM = {"first": 2, "count": 1, "period": 5}


def _storm_snapshots():
    """Unique snapshots per (job, step): every save writes fresh chunks."""
    rng = np.random.default_rng(23)
    jobs = {}
    for j in range(STORM_JOBS):
        jobs[f"storm{j:02d}"] = [
            TrainingSnapshot(
                step=s + 1,
                params=rng.normal(size=STORM_ELEMS),
                optimizer_state={"name": "adam", "t": s},
                rng_state={"seed": 23 + j},
                model_fingerprint=f"storm-{j}",
            )
            for s in range(STORM_SAVES_PER_JOB)
        ]
    return jobs


def _storm_store(retry=None):
    mem = InMemoryBackend()
    flaky = FlakyBackend(mem)
    backend = flaky if retry is None else ReliableBackend(flaky, retry=retry)
    store = ChunkStore(backend, block_bytes=2048, tier_placement=False)
    return mem, flaky, backend, store


def test_fault_storm_retry_recovery(report):
    """Every checkpoint op must complete through a repeating fault storm.

    The same deterministic storm is driven twice: raw (saves fail — proving
    the storm bites) and behind ``ReliableBackend``.  The retried run must
    complete every save and restore bitwise under a read storm, with the
    added latency exactly the policy's jitter-free backoff schedule —
    recorded via the policy's injected sleep, so the bench itself is fast
    and the bound is verified deterministically, not statistically.
    """
    jobs = _storm_snapshots()
    total_saves = STORM_JOBS * STORM_SAVES_PER_JOB

    # Leg 1: no retry layer.  The storm must fail real saves.
    _, flaky, _, store = _storm_store()
    flaky.arm_schedule("write", "error", **WRITE_STORM)
    unretried_failed = 0
    for job_id, snaps in jobs.items():
        for snap in snaps:
            try:
                store.save_snapshot(job_id, snap)
            except TransientStorageError:
                unretried_failed += 1
    assert unretried_failed > 0, "storm never bit the unretried store"

    # Leg 2: identical storm behind the reliability layer.
    sleeps = []
    policy = RetryPolicy(
        max_attempts=4,
        base_delay=0.05,
        multiplier=2.0,
        jitter="none",
        sleep=sleeps.append,
    )
    mem, flaky, backend, store = _storm_store(retry=policy)
    flaky.arm_schedule("write", "error", **WRITE_STORM)
    per_save_added = []
    for job_id, snaps in jobs.items():
        for snap in snaps:
            before = len(sleeps)
            store.save_snapshot(job_id, snap)  # must not raise
            per_save_added.append(sum(sleeps[before:]))
    write_stats = (
        backend.stats.retries,
        backend.stats.recovered_ops,
        backend.stats.exhausted_ops,
    )
    write_ops = len(mem.list(""))  # each op succeeds exactly once

    # Read storm over the restore path: every job must come back bitwise.
    flaky.arm_schedule("read", "error", **READ_STORM)
    for job_id, snaps in jobs.items():
        _, restored, skipped = store.latest_valid(job_id)
        assert skipped == [], f"{job_id} skipped checkpoints: {skipped}"
        assert restored is not None
        assert restored.step == snaps[-1].step
        assert restored.params.tobytes() == snaps[-1].params.tobytes()
    read_retries = backend.stats.retries - write_stats[0]
    read_recovered = backend.stats.recovered_ops - write_stats[1]

    # The storm was absorbed: nothing exhausted, nothing rejected, and the
    # added latency is policy-derived — every recorded pause is one of the
    # policy's jitter-free delays, and no save exceeds the worst case for a
    # single op (a window never spans two ops' full attempt budgets).
    assert backend.stats.exhausted_ops == 0
    assert backend.stats.rejected_ops == 0
    assert write_stats[1] > 0, "write storm never hit the retried run"
    assert read_recovered > 0, "read storm never hit the restores"
    allowed = {policy.delay_for(i) for i in range(policy.max_attempts - 1)}
    assert set(sleeps) <= allowed, f"non-policy pause in {sorted(set(sleeps))}"
    assert max(per_save_added) <= policy.worst_case_delay()

    payload = {
        "jobs": STORM_JOBS,
        "saves": total_saves,
        "write_ops": write_ops,
        "write_storm": WRITE_STORM,
        "read_storm": READ_STORM,
        "unretried_failed_saves": unretried_failed,
        "unretried_save_failure_rate": unretried_failed / total_saves,
        "retried_completed_saves": total_saves,
        "write_retries": write_stats[0],
        "recovered_write_ops": write_stats[1],
        "recovered_write_op_rate": write_stats[1] / write_ops,
        "read_retries": read_retries,
        "recovered_read_ops": read_recovered,
        "exhausted_ops": backend.stats.exhausted_ops,
        "added_latency_total_s": sum(sleeps),
        "added_latency_p50_ms": float(np.percentile(per_save_added, 50)) * 1e3,
        "added_latency_p90_ms": float(np.percentile(per_save_added, 90)) * 1e3,
        "added_latency_max_ms": max(per_save_added) * 1e3,
        "policy": {
            "max_attempts": policy.max_attempts,
            "base_delay": policy.base_delay,
            "multiplier": policy.multiplier,
            "jitter": "none",
            "worst_case_delay_s": policy.worst_case_delay(),
        },
    }
    _write_json("fault_storm", payload)

    table = "\n".join(
        [
            f"{'saves (4 jobs)':<26} {total_saves}",
            f"{'unretried failed saves':<26} {unretried_failed} "
            f"({payload['unretried_save_failure_rate']:.0%})",
            f"{'retried completed':<26} {total_saves} (100%)",
            f"{'recovered write ops':<26} {write_stats[1]}/{write_ops} "
            f"({payload['recovered_write_op_rate']:.0%})",
            f"{'recovered read ops':<26} {read_recovered}",
            f"{'added latency p50 (ms)':<26} "
            f"{payload['added_latency_p50_ms']:.0f}",
            f"{'added latency p90 (ms)':<26} "
            f"{payload['added_latency_p90_ms']:.0f}",
            f"{'added latency max (ms)':<26} "
            f"{payload['added_latency_max_ms']:.0f}",
            f"{'policy worst case (ms)':<26} "
            f"{policy.worst_case_delay() * 1e3:.0f}",
        ]
    )
    report("Fleet service: fault storm through the reliability layer", table)


# ---------------------------------------------------------------------------
# Metadata index: discovery latency, scanned vs indexed
# ---------------------------------------------------------------------------

# (jobs, checkpoints per job): 1k- and 10k-manifest-object stores.
INDEX_STORE_SHAPES = ((100, 10), (200, 50))
INDEX_PROBE_JOBS = 50  # per-job latest/has_checkpoints probes per leg
INDEX_JOURNAL_RECORDS = 1_000
# Indexed discovery on the 10k store must beat scanning by this much.
INDEX_SPEEDUP_TARGET = 10.0


def _write_synthetic_store(
    root: Path, n_jobs: int, ckpts_per_job: int, codec: str
) -> None:
    """``n_jobs * ckpts_per_job`` manifests, written straight to disk.

    The manifests are real (version, codec, tensors/blocks) so both the
    scanning and the reconciling open parse them; the chunks they cite are
    never written because the discovery path under test never reads data.
    """
    from repro.service.chunkstore import MANIFEST_VERSION
    from repro.storage.local import LocalDirectoryBackend

    backend = LocalDirectoryBackend(root, fsync=False)
    for j in range(n_jobs):
        job_id = f"job{j:05d}"
        for seq in range(1, ckpts_per_job + 1):
            manifest = {
                "version": MANIFEST_VERSION,
                "job": job_id,
                "ckpt_id": f"ckpt-{seq:06d}",
                "step": seq,
                "created": 1.0 + j + seq,
                "codec": codec,
                "meta": {},
                "tensors": [
                    {
                        "name": "params",
                        "dtype": "<f8",
                        "shape": [8],
                        "blocks": [
                            {
                                "chunk": f"ch-{j * 1000 + seq:032x}",
                                "raw_nbytes": 64,
                                "stored_nbytes": 64,
                            }
                        ],
                    }
                ],
                "extra": {},
            }
            backend.write(
                f"job-{job_id}-ckpt-{seq:06d}.json",
                json.dumps(manifest, sort_keys=True).encode("utf-8"),
            )


def _probe_discovery(store, job_ids, newest: str) -> float:
    """Wall seconds for the daemon-shaped discovery loop: per-job
    resumability probe + newest checkpoint, then the fleet job list."""
    started = time.perf_counter()
    for job_id in job_ids:
        assert store.has_checkpoints(job_id)
        assert store.latest(job_id) == newest
    assert len(store.jobs()) > 0
    return time.perf_counter() - started


def test_metadata_index_discovery_latency(report, tmp_path):
    """Indexed discovery must beat store scans ≥10x at 10k jobs.

    Without the index every ``latest``/``has_checkpoints`` probe lists the
    store (O(objects) per probe); with it each probe is one SQLite point
    query against the ``.qckpt-meta.db`` sidecar.  Also measured: the
    one-time index build (first indexed open reconciles every manifest),
    the warm reopen (names-only diff), and the placement-journal open with
    a 1k-record history — full file fold vs suffix catch-up from the
    stored high-water mark.
    """
    from repro.storage.local import LocalDirectoryBackend
    from repro.storage.metadb import DB_FILENAME, MetaDB
    from repro.storage.placement import PlacementJournal

    codec = ChunkStore(InMemoryBackend()).codec.name
    rows = {}
    for n_jobs, ckpts_per_job in INDEX_STORE_SHAPES:
        n_objects = n_jobs * ckpts_per_job
        root = tmp_path / f"store-{n_objects}"
        _write_synthetic_store(root, n_jobs, ckpts_per_job, codec)
        newest = f"ckpt-{ckpts_per_job:06d}"
        stride = max(1, n_jobs // INDEX_PROBE_JOBS)
        probes = [f"job{j:05d}" for j in range(0, n_jobs, stride)]
        probes = probes[:INDEX_PROBE_JOBS]

        backend = LocalDirectoryBackend(root, fsync=False)
        started = time.perf_counter()
        scanned = ChunkStore(backend)
        scan_open = time.perf_counter() - started
        scan_probe = _probe_discovery(scanned, probes, newest)

        db_path = root / DB_FILENAME
        started = time.perf_counter()
        db = MetaDB(db_path)
        indexed = ChunkStore(LocalDirectoryBackend(root, fsync=False),
                             metadb=db)
        index_build = time.perf_counter() - started
        indexed_probe = _probe_discovery(indexed, probes, newest)
        db.close()

        started = time.perf_counter()
        reopened = ChunkStore(
            LocalDirectoryBackend(root, fsync=False), metadb=MetaDB(db_path)
        )
        warm_open = time.perf_counter() - started
        assert reopened.jobs() == scanned.jobs()

        rows[str(n_objects)] = {
            "jobs": n_jobs,
            "checkpoints_per_job": ckpts_per_job,
            "probes": len(probes),
            "scan_open_seconds": scan_open,
            "scan_probe_seconds": scan_probe,
            "index_build_seconds": index_build,
            "indexed_probe_seconds": indexed_probe,
            "warm_reopen_seconds": warm_open,
            "probe_speedup": scan_probe / indexed_probe,
        }

    # Placement journal: 1k-record fold, scanned vs suffix catch-up.
    jroot = tmp_path / "journal"
    jbackend = LocalDirectoryBackend(jroot, fsync=False)
    for seq in range(1, INDEX_JOURNAL_RECORDS + 1):
        record = {
            "version": 1,
            "seq": seq,
            "owner": "bench",
            "ts": float(seq),
            "op": "pin",
            "name": f"job-pinned-ckpt-{seq % 40:06d}.json",
        }
        jbackend.write(
            f"plj-{seq:08d}-bench.json",
            json.dumps(record, sort_keys=True).encode("utf-8"),
        )
    started = time.perf_counter()
    PlacementJournal(jbackend, owner="scan", refresh_seconds=0.0)
    journal_scan_open = time.perf_counter() - started
    jdb_path = jroot / DB_FILENAME
    started = time.perf_counter()
    first = PlacementJournal(
        jbackend, owner="build", refresh_seconds=0.0, metadb=MetaDB(jdb_path)
    )
    journal_build_open = time.perf_counter() - started
    first._db.close()
    started = time.perf_counter()
    PlacementJournal(
        jbackend, owner="warm", refresh_seconds=0.0, metadb=MetaDB(jdb_path)
    )
    journal_warm_open = time.perf_counter() - started

    largest = INDEX_STORE_SHAPES[-1][0] * INDEX_STORE_SHAPES[-1][1]
    speedup_10k = rows[str(largest)]["probe_speedup"]
    payload = {
        "probe_jobs": INDEX_PROBE_JOBS,
        "stores": rows,
        "journal_records": INDEX_JOURNAL_RECORDS,
        "journal_scan_open_seconds": journal_scan_open,
        "journal_index_build_open_seconds": journal_build_open,
        "journal_warm_open_seconds": journal_warm_open,
        "speedup_target": INDEX_SPEEDUP_TARGET,
        "probe_speedup_10k": speedup_10k,
    }
    _write_json("metadata_index", payload)

    table = "\n".join(
        [
            f"{'objects':<10} {'scan probe (s)':>15} {'indexed (s)':>12} "
            f"{'speedup':>9} {'build (s)':>10} {'warm (s)':>9}"
        ]
        + [
            f"{n:<10} {row['scan_probe_seconds']:>15.4f} "
            f"{row['indexed_probe_seconds']:>12.4f} "
            f"{row['probe_speedup']:>8.1f}x "
            f"{row['index_build_seconds']:>10.3f} "
            f"{row['warm_reopen_seconds']:>9.3f}"
            for n, row in rows.items()
        ]
        + [
            f"{'journal open (1k records)':<26} "
            f"scan {journal_scan_open:.3f}s   build {journal_build_open:.3f}s"
            f"   warm {journal_warm_open:.3f}s",
        ]
    )
    report("Fleet service: metadata-index discovery latency", table)

    assert speedup_10k >= INDEX_SPEEDUP_TARGET, (
        f"indexed discovery {speedup_10k:.1f}x below the "
        f"{INDEX_SPEEDUP_TARGET}x target on the 10k-job store"
    )
