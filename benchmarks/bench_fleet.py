"""Fleet-scale checkpoint service benchmark (the service-layer acceptance run).

Three experiments, all written to ``BENCH_fleet.json`` at the repo root:

1. **8-job sweep + preemption storm** — a learning-rate sweep of identical
   architecture/seed classifier trainings checkpoints every step through the
   shared chunk store while a storm at mid-run kills every job; measures the
   cross-job dedup ratio (sweep jobs share their initial checkpoint, sampler
   permutations, and resume saves), recovered-work ratio, shard balance, and
   verifies every job restores *bitwise-identically* from the store.

2. **Writer-pool throughput scaling** — pushes identical volumes of unique
   snapshots from 8 jobs through pools of 1/2/4 workers against a
   store with remote-object-store write latency (the paper's deployment
   target).  Checkpoint writes are latency-dominated, so pool workers
   overlap them regardless of core count; pack CPU (sha256 + zlib, both
   GIL-releasing) additionally overlaps where cores allow.

3. **Restore-latency sweep** — the read-path acceptance run for the unified
   restore pipeline: full cold restore vs parameters-only warm start vs
   tier-warm full restore out of a tiered store whose slow tier carries a
   modelled object-store cost (RTT + bandwidth).  Parameters-only must
   fetch a small fraction of the bytes; the tier-warm restore must beat the
   cold one because the first restore promoted what it touched.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.snapshot import TrainingSnapshot
from repro.faults.injector import PreemptionStorm
from repro.ml.dataset import make_moons
from repro.ml.models import VariationalClassifier
from repro.ml.optimizers import Adam
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.templates import hardware_efficient
from repro.service import (
    ChunkStore,
    FleetHarness,
    FleetJobSpec,
    ThrottledBackend,
    WriterPool,
)
from repro.storage.memory import InMemoryBackend
from repro.storage.sharded import ShardedBackend

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

# Acceptance targets for the service layer.
DEDUP_TARGET = 1.5
SCALING_TARGET = 1.5  # 4 workers vs 1 against a latency-bound store

N_JOBS = 8
TARGET_STEPS = 4
STORM_TICK = 2


def _sweep_factory(lr: float, seed: int = 11):
    def make() -> Trainer:
        model = VariationalClassifier(hardware_efficient(4, 2))
        dataset = make_moons(256, np.random.default_rng(7))
        return Trainer(
            model,
            Adam(lr=lr),
            dataset=dataset,
            config=TrainerConfig(batch_size=8, seed=seed),
        )

    return make


def _write_json(section: str, payload: dict) -> None:
    rows = {}
    if _JSON_PATH.exists():
        try:
            rows = json.loads(_JSON_PATH.read_text())
        except json.JSONDecodeError:
            rows = {}
    rows[section] = payload
    _JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")


def test_fleet_sweep_storm_dedup_and_bitwise_recovery(report):
    """8-job lr sweep, storm at mid-run: dedup > 1.5x, bitwise restores."""
    factories = {
        f"sweep{i:02d}": _sweep_factory(0.01 * (1 + i)) for i in range(N_JOBS)
    }
    specs = [
        FleetJobSpec(
            job_id=job_id,
            trainer_factory=factory,
            target_steps=TARGET_STEPS,
            checkpoint_every=1,
            max_pending=4,
        )
        for job_id, factory in factories.items()
    ]
    backend = ShardedBackend([InMemoryBackend() for _ in range(4)])
    store = ChunkStore(backend, block_bytes=4096)
    pool = WriterPool(workers=4)
    harness = FleetHarness(
        store,
        pool,
        specs,
        events=[PreemptionStorm(at_tick=STORM_TICK)],
    )
    started = time.perf_counter()
    result = harness.run()
    pool.close()
    wall = time.perf_counter() - started

    # Every job finished, was preempted once, and recovered.
    assert all(j.final_step == TARGET_STEPS for j in result.jobs.values())
    assert all(j.preemptions == 1 for j in result.jobs.values())
    assert all(j.restores == 1 for j in result.jobs.values())

    # Bitwise recovery: the stored snapshot round-trips through a fresh
    # trainer exactly (params, optimizer moments, RNG, sampler, history).
    for job_id, factory in factories.items():
        snapshot = store.load_snapshot(job_id)
        fresh = factory()
        fresh.restore(snapshot)
        assert fresh.capture() == snapshot, f"{job_id} restore not bitwise"

    dedup = result.dedup_ratio
    per_shard = backend.objects_per_shard("ch-")
    payload = {
        "jobs": N_JOBS,
        "target_steps": TARGET_STEPS,
        "storm_tick": STORM_TICK,
        "wall_seconds": wall,
        "makespan_ticks": result.makespan_ticks,
        "dedup_ratio": dedup,
        "logical_bytes": result.logical_bytes,
        "physical_bytes": result.physical_bytes,
        "manifest_bytes": result.manifest_bytes,
        "recovered_work_ratio": result.recovered_work_ratio,
        "total_lost_steps": result.total_lost_steps,
        "abandoned_saves": sum(
            j.abandoned_saves for j in result.jobs.values()
        ),
        "restore_bitwise": True,
        "chunk_objects_per_shard": {str(k): v for k, v in per_shard.items()},
    }
    _write_json("sweep_storm", payload)

    table = "\n".join(
        [
            f"{'jobs':<26} {N_JOBS}",
            f"{'makespan (ticks)':<26} {result.makespan_ticks}",
            f"{'wall (s)':<26} {wall:.2f}",
            f"{'logical bytes':<26} {result.logical_bytes}",
            f"{'physical bytes':<26} {result.physical_bytes}",
            f"{'cross-job dedup':<26} {dedup:.2f}x",
            f"{'recovered-work ratio':<26} {result.recovered_work_ratio:.3f}",
            f"{'chunks per shard':<26} {sorted(per_shard.values())}",
            f"{'bitwise restores':<26} {N_JOBS}/{N_JOBS}",
        ]
    )
    report("Fleet service: 8-job sweep + preemption storm", table)

    assert dedup > DEDUP_TARGET, (
        f"cross-job dedup {dedup:.2f}x below the {DEDUP_TARGET}x target"
    )
    # Hash routing keeps shards balanced with zero placement state.
    assert min(per_shard.values()) > 0


def _synthetic_snapshots(n_jobs: int, saves_per_job: int, tensor_elems: int):
    """Unique (no-dedup) snapshots: all pool time is pack+write work."""
    rng = np.random.default_rng(0)
    jobs = {}
    for j in range(n_jobs):
        snapshots = []
        for s in range(saves_per_job):
            # Rounded normals: compressible enough that zlib does real work.
            payload = np.round(rng.normal(size=tensor_elems), 2)
            snapshots.append(
                TrainingSnapshot(
                    step=s + 1,
                    params=rng.normal(size=64),
                    optimizer_state={"name": "adam", "t": s},
                    rng_state={"bit_generator": "PCG64", "state": {"s": s}},
                    model_fingerprint=f"scaling-{j}",
                    statevector=None,
                    extra={"payload": payload},
                )
            )
        jobs[f"scale{j:02d}"] = snapshots
    return jobs


def test_writer_pool_throughput_scaling(report):
    """Fleet checkpoint throughput must scale with writer-pool size.

    The store carries a 20 ms per-write latency (a datacenter object store's
    round trip): checkpoint commits are latency-dominated, exactly the
    regime the shared pool exists for.  One worker serializes every round
    trip; four workers keep four in flight.
    """
    write_delay = 0.02
    jobs = _synthetic_snapshots(n_jobs=8, saves_per_job=2, tensor_elems=1 << 14)
    worker_counts = (1, 2, 4)
    rows = {}
    for workers in worker_counts:
        remote = ThrottledBackend(InMemoryBackend())
        remote.write_delay_seconds = write_delay
        store = ChunkStore(remote, codec="zlib-1", block_bytes=1 << 16)
        pool = WriterPool(workers=workers)
        channels = {
            job_id: pool.channel(job_id, max_pending=8) for job_id in jobs
        }
        started = time.perf_counter()
        for job_id, snapshots in jobs.items():
            for snapshot in snapshots:
                channels[job_id].submit(
                    lambda j=job_id, s=snapshot: store.save_snapshot(j, s)
                )
        pool.drain()
        elapsed = time.perf_counter() - started
        pool.close()
        mb = store.stats.logical_bytes / 1e6
        rows[workers] = {
            "seconds": elapsed,
            "mb_per_second": mb / elapsed,
            "checkpoints": store.stats.checkpoints,
            "store_writes": remote.delayed_writes,
        }
    speedup = rows[worker_counts[-1]]["mb_per_second"] / rows[1]["mb_per_second"]
    payload = {
        "jobs": 8,
        "saves_per_job": 2,
        "write_delay_seconds": write_delay,
        "cpu_count": os.cpu_count(),
        "workers": {str(k): v for k, v in rows.items()},
        f"speedup_{worker_counts[-1]}v1": speedup,
    }
    _write_json("pool_scaling", payload)

    table = "\n".join(
        [f"{'workers':<10} {'seconds':>10} {'MB/s':>10}"]
        + [
            f"{workers:<10} {row['seconds']:>10.3f} {row['mb_per_second']:>10.1f}"
            for workers, row in rows.items()
        ]
        + [f"{'speedup':<10} {speedup:>21.2f}x ({worker_counts[-1]} vs 1 worker)"]
    )
    report("Fleet service: writer-pool throughput scaling", table)

    assert speedup > SCALING_TARGET, (
        f"pool scaling {speedup:.2f}x below the {SCALING_TARGET}x target"
    )


# ---------------------------------------------------------------------------
# Restore-latency sweep: full vs parameters-only vs tier-warm
# ---------------------------------------------------------------------------

# Parameters-only warm start must fetch at most this fraction of full bytes.
PARAMS_FETCH_FRACTION = 0.2
# The tier-warm restore must cost at most this fraction of the cold one in
# modelled transfer seconds (it should be near zero: everything is resident).
TIER_WARM_FRACTION = 0.5


def _restore_workload_snapshot(step: int) -> TrainingSnapshot:
    """One checkpoint with a fat statevector cache and small parameters."""
    rng = np.random.default_rng(100 + step)
    elems = 1 << 15  # 512 KiB of complex128 warm-start cache
    return TrainingSnapshot(
        step=step,
        params=rng.standard_normal(96),
        optimizer_state={"name": "adam", "t": step, "m": rng.standard_normal(96)},
        rng_state={"bit_generator": "PCG64", "state": {"state": step}},
        model_fingerprint="restore-sweep",
        loss_history=rng.standard_normal(step),
        statevector=rng.standard_normal(elems) + 1j * rng.standard_normal(elems),
    )


def test_restore_latency_sweep(report):
    """Full vs parameters-only vs tier-warm restore through the pipeline."""
    from repro.storage.simulated import SimulatedRemoteBackend, TransferCostModel
    from repro.storage.tiered import TieredBackend

    # Slow tier: datacenter object store (10 ms RTT, 200 MB/s); fast tier:
    # local memory.  Restore cost is the *modelled* transfer time, so the
    # sweep is deterministic across machines.
    def remote():
        return SimulatedRemoteBackend(
            TransferCostModel(bandwidth_bytes_per_s=200e6, rtt_seconds=0.01)
        )

    slow = remote()
    write_tier = TieredBackend(
        InMemoryBackend(), slow, fast_capacity_bytes=1 << 24
    )
    store = ChunkStore(write_tier, block_bytes=1 << 16)
    for step in (1, 2, 3):
        store.save_snapshot("sweep", _restore_workload_snapshot(step))
    reference = _restore_workload_snapshot(3)

    def cold_store():
        """Fresh tier over the same slow store; returns the modelled cost
        of the open-time manifest/adoption scan alongside the store."""
        tier = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=1 << 24
        )
        slow.reset_accounting()
        fresh = ChunkStore(tier, block_bytes=1 << 16)
        adopt = slow.simulated_seconds
        slow.reset_accounting()
        return tier, fresh, adopt

    rows = {}

    # 1. cold full restore: every chunk comes over the modelled wire.
    tier, fresh, adopt_seconds = cold_store()
    started = time.perf_counter()
    snapshot = fresh.load_snapshot("sweep")
    assert snapshot == reference, "cold restore not bitwise"
    cold_plan = fresh.plan_restore("sweep")
    rows["cold_full"] = {
        "modelled_seconds": slow.simulated_seconds,
        "wall_seconds": time.perf_counter() - started,
        "fetch_bytes": cold_plan.fetch_bytes,
        "blocks": cold_plan.n_blocks,
    }

    # 2. tier-warm full restore: the cold restore promoted what it touched.
    slow.reset_accounting()
    started = time.perf_counter()
    snapshot = fresh.load_snapshot("sweep")
    assert snapshot == reference, "tier-warm restore not bitwise"
    rows["tier_warm_full"] = {
        "modelled_seconds": slow.simulated_seconds,
        "wall_seconds": time.perf_counter() - started,
        "fetch_bytes": cold_plan.fetch_bytes,
        "fast_hits": tier.stats.fast_hits,
        "promotions": tier.stats.promotions,
    }

    # 3. parameters-only warm start from a cold tier.
    _, fresh, _ = cold_store()
    slow.reset_accounting()
    started = time.perf_counter()
    _, tensors = fresh.load_partial("sweep", ["params"])
    np.testing.assert_array_equal(tensors["params"], reference.params)
    params_plan = fresh.plan_restore("sweep", names=["params"])
    rows["params_only"] = {
        "modelled_seconds": slow.simulated_seconds,
        "wall_seconds": time.perf_counter() - started,
        "fetch_bytes": params_plan.fetch_bytes,
        "blocks": params_plan.n_blocks,
    }

    fraction = rows["params_only"]["fetch_bytes"] / rows["cold_full"]["fetch_bytes"]
    warm_ratio = (
        rows["tier_warm_full"]["modelled_seconds"]
        / rows["cold_full"]["modelled_seconds"]
    )
    payload = {
        "checkpoints": 3,
        "total_stored_bytes": cold_plan.total_stored_bytes,
        "adopt_modelled_seconds": adopt_seconds,
        "params_fetch_fraction": fraction,
        "tier_warm_vs_cold_modelled": warm_ratio,
        **rows,
    }
    _write_json("restore_latency", payload)

    table = "\n".join(
        [f"{'restore':<18} {'modelled (s)':>14} {'bytes':>12} "]
        + [
            f"{name:<18} {row['modelled_seconds']:>14.4f} "
            f"{row['fetch_bytes']:>12}"
            for name, row in rows.items()
        ]
        + [
            f"{'params fraction':<18} {fraction:>14.3f}",
            f"{'warm/cold':<18} {warm_ratio:>14.3f}",
        ]
    )
    report("Fleet service: restore-latency sweep", table)

    assert fraction < PARAMS_FETCH_FRACTION, (
        f"parameters-only restore fetched {fraction:.1%} of the full bytes "
        f"(target < {PARAMS_FETCH_FRACTION:.0%})"
    )
    assert warm_ratio < TIER_WARM_FRACTION, (
        f"tier-warm restore cost {warm_ratio:.1%} of cold "
        f"(target < {TIER_WARM_FRACTION:.0%})"
    )
