"""Shared helpers for the benchmark suite.

Every bench module prints its paper-style table through :func:`report` (which
bypasses pytest's capture so the rows land in ``bench_output.txt``) and times
one representative kernel with pytest-benchmark.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print rows through disabled capture so they appear in bench output."""

    def _report(title: str, table: str) -> None:
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{table}\n")

    return _report
