"""Fig. 3 — Training overhead vs checkpoint interval (sync vs async).

Reproduced claim: blocked time falls roughly as 1/interval for synchronous
writes, and the asynchronous writer flattens the curve (the training thread
only pays for the snapshot deep copy).
Kernel timed: one synchronous full save of an 8-qubit VQE snapshot.
"""

from repro.bench.experiments import fig3_overhead
from repro.bench.reporting import format_table
from repro.bench.workloads import vqe_trainer
from repro.core.manager import CheckpointManager
from repro.core.store import CheckpointStore
from repro.storage.memory import InMemoryBackend


def test_fig3_overhead(benchmark, report):
    rows = fig3_overhead(intervals=(1, 2, 5, 10), n_steps=20, n_qubits=8)
    report("Fig. 3 — checkpoint overhead vs interval", format_table(rows))

    sync = {r["interval"]: r for r in rows if r["mode"] == "sync"}
    # Fewer checkpoints => less blocked time (monotone in interval).
    assert sync[10]["blocked_s"] <= sync[1]["blocked_s"]
    # Checkpoint counts follow the interval.
    assert sync[1]["checkpoints"] == 20 and sync[10]["checkpoints"] == 2

    trainer = vqe_trainer(n_qubits=8, seed=3)
    trainer.run(1)
    snapshot = trainer.capture()
    store = CheckpointStore(InMemoryBackend())
    manager = CheckpointManager(store, codec="zlib-1")
    benchmark(manager.save, snapshot)
