"""Substrate microbenchmarks (not a paper figure).

Times the simulation and gradient kernels the experiments above sit on, so
regressions in the quantum substrate are visible next to the storage
numbers: statevector execution, adjoint gradient, shot sampling.
"""

import numpy as np

from repro.autodiff import adjoint_gradient
from repro.quantum.haar import haar_state
from repro.quantum.observables import Hamiltonian
from repro.quantum.sampling import estimate_expectation
from repro.quantum.statevector import apply_circuit
from repro.quantum.templates import hardware_efficient, initial_parameters


def test_statevector_execution_12q(benchmark):
    circuit = hardware_efficient(12, 4)
    params = initial_parameters(circuit, np.random.default_rng(0))
    state = benchmark(apply_circuit, circuit, params)
    assert np.isclose(np.linalg.norm(state), 1.0)


def test_adjoint_gradient_10q(benchmark):
    circuit = hardware_efficient(10, 4)
    params = initial_parameters(circuit, np.random.default_rng(0))
    hamiltonian = Hamiltonian.transverse_field_ising(10, 1.0, 0.8)
    grads = benchmark(adjoint_gradient, circuit, params, hamiltonian)
    assert grads.shape == params.shape


def test_shot_sampling_12q(benchmark):
    state = haar_state(12, np.random.default_rng(1))
    hamiltonian = Hamiltonian.transverse_field_ising(12, 1.0, 0.8)
    rng = np.random.default_rng(2)
    value = benchmark(estimate_expectation, state, hamiltonian, 1024, rng)
    assert np.isfinite(value)
