"""Substrate microbenchmarks (not a paper figure).

Times the simulation and gradient kernels the experiments above sit on, so
regressions in the quantum substrate are visible next to the storage numbers:
statevector execution, adjoint gradient, shot sampling, and — since the fast
execution engine landed — old-path-vs-engine comparisons for gate application
and parameter-shift gradient throughput.  The comparison rows are also written
to ``BENCH_substrate.json`` at the repo root so the perf trajectory is
tracked across PRs.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.autodiff import adjoint_gradient
from repro.autodiff.parameter_shift import (
    parameter_shift_gradient,
    shift_rule_evaluations,
)
from repro.bench.workloads import gradient_workload
from repro.quantum.haar import haar_state
from repro.quantum.observables import Hamiltonian
from repro.quantum.sampling import estimate_expectation
from repro.quantum import engines
from repro.quantum.engines import compiled, sharding
from repro.quantum.statevector import apply_circuit, apply_gate, zero_state
from repro.quantum.templates import hardware_efficient, initial_parameters

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

# The acceptance target for the engine: >= 3x on a 12-qubit, 4-layer HEA
# parameter-shift gradient versus the seed execution path.
GRAD_SPEEDUP_TARGET = 3.0

# The acceptance target for the compiled kernel tier: >= 2x on the same
# gradient versus the numpy engine path.  Only asserted where a C compiler
# produced a library that passed its bitwise self-test.
TIER_SPEEDUP_TARGET = 2.0


def _merge_json(update: dict) -> None:
    rows = {}
    if _JSON_PATH.exists():
        try:
            rows = json.loads(_JSON_PATH.read_text())
        except json.JSONDecodeError:
            rows = {}
    rows.update(update)
    _JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _reference_apply_circuit(circuit, params):
    """The seed execution path: per-gate tensordot with rebuilt matrices."""
    state = zero_state(circuit.n_qubits)
    for op in circuit.ops:
        state = apply_gate(state, op.matrix(params), op.wires, circuit.n_qubits)
    return state


def test_statevector_execution_12q(benchmark):
    circuit = hardware_efficient(12, 4)
    params = initial_parameters(circuit, np.random.default_rng(0))
    state = benchmark(apply_circuit, circuit, params)
    assert np.isclose(np.linalg.norm(state), 1.0)


def test_adjoint_gradient_10q(benchmark):
    circuit = hardware_efficient(10, 4)
    params = initial_parameters(circuit, np.random.default_rng(0))
    hamiltonian = Hamiltonian.transverse_field_ising(10, 1.0, 0.8)
    grads = benchmark(adjoint_gradient, circuit, params, hamiltonian)
    assert grads.shape == params.shape


def test_shot_sampling_12q(benchmark):
    state = haar_state(12, np.random.default_rng(1))
    hamiltonian = Hamiltonian.transverse_field_ising(12, 1.0, 0.8)
    rng = np.random.default_rng(2)
    value = benchmark(estimate_expectation, state, hamiltonian, 1024, rng)
    assert np.isfinite(value)


def test_batched_shift_gradient_12q(benchmark):
    """Throughput of the batched engine gradient itself."""
    circuit, params, hamiltonian = gradient_workload(12, 4)
    grads = benchmark(parameter_shift_gradient, circuit, params, hamiltonian)
    assert grads.shape == params.shape


def test_engine_speedups(report):
    """Old path vs fast engine: gate kernels and gradient throughput.

    Asserts the acceptance target (>= 3x on the 12-qubit, 4-layer HEA
    parameter-shift gradient) and writes every row to BENCH_substrate.json.
    """
    circuit, params, hamiltonian = gradient_workload(12, 4)

    exec_ref, state_ref = _best_of(lambda: _reference_apply_circuit(circuit, params), 3)
    exec_fast, state_fast = _best_of(lambda: apply_circuit(circuit, params), 5)
    assert np.allclose(state_ref, state_fast, atol=1e-12)

    grad_ref, g_ref = _best_of(
        lambda: parameter_shift_gradient(
            circuit, params, hamiltonian, engine="reference"
        ),
        2,
    )
    grad_fast, g_fast = _best_of(
        lambda: parameter_shift_gradient(circuit, params, hamiltonian), 5
    )
    assert np.allclose(g_ref, g_fast, atol=1e-10)

    evaluations = shift_rule_evaluations(circuit)
    rows = {
        "workload": {
            "n_qubits": 12,
            "n_layers": 4,
            "n_params": int(circuit.n_params),
            "n_ops": len(circuit.ops),
            "shift_evaluations": evaluations,
        },
        "execution_seconds": {"reference": exec_ref, "engine": exec_fast},
        "gradient_seconds": {"reference": grad_ref, "engine": grad_fast},
        "speedups": {
            "execution": exec_ref / exec_fast,
            "gradient": grad_ref / grad_fast,
        },
        "gradient_evals_per_second": {
            "reference": evaluations / grad_ref,
            "engine": evaluations / grad_fast,
        },
    }
    _merge_json(rows)

    table = "\n".join(
        [
            f"{'path':<12} {'execute (ms)':>14} {'gradient (ms)':>14} {'evals/s':>10}",
            f"{'reference':<12} {exec_ref * 1e3:>14.2f} {grad_ref * 1e3:>14.1f} "
            f"{evaluations / grad_ref:>10.0f}",
            f"{'engine':<12} {exec_fast * 1e3:>14.2f} {grad_fast * 1e3:>14.1f} "
            f"{evaluations / grad_fast:>10.0f}",
            f"{'speedup':<12} {exec_ref / exec_fast:>13.1f}x "
            f"{grad_ref / grad_fast:>13.1f}x",
        ]
    )
    report("Substrate engine: 12-qubit 4-layer HEA (old path vs fast engine)", table)

    assert grad_ref / grad_fast >= GRAD_SPEEDUP_TARGET, (
        f"gradient speedup {grad_ref / grad_fast:.2f}x below the "
        f"{GRAD_SPEEDUP_TARGET}x acceptance target"
    )


def test_gradient_sharding_sweep(report):
    """Engine tier x shard-worker sweep on the 12-qubit 4-layer gradient.

    Two axes, written to ``BENCH_substrate.json`` under ``gradient_sharding``:

    - tier: the numpy engine vs the compiled kernel tier (skipped rows when
      no compiler is available) — asserts the >= 2x tier acceptance target
      and bitwise-checks every sharded gradient against the single-process
      numpy result of its own tier;
    - workers: 1 (in-process) vs 2 and 4 worker processes, reported as
      evals/s and parallel efficiency.  On a single-core host the fan-out
      rows document the dispatch overhead rather than a speedup, so the
      host's cpu_count rides along in the payload.
    """
    circuit, params, hamiltonian = gradient_workload(12, 4)
    evaluations = shift_rule_evaluations(circuit)
    tiers = ["numpy"] + (["compiled"] if compiled.available() else [])
    worker_counts = (1, 2, 4)

    saved_env = os.environ.get(engines.ENGINE_ENV)
    rows = {}
    try:
        for tier in tiers:
            os.environ[engines.ENGINE_ENV] = tier
            engines.reset_engine()
            sharding.shutdown_default()
            single = parameter_shift_gradient(circuit, params, hamiltonian)
            per_tier = {}
            for workers in worker_counts:
                repeats = 3 if workers == 1 else 2
                seconds, grads = _best_of(
                    lambda w=workers: parameter_shift_gradient(
                        circuit, params, hamiltonian, shard_workers=w
                    ),
                    repeats,
                )
                assert np.array_equal(grads, single), (
                    f"sharded gradient diverged from single-process "
                    f"({tier}, workers={workers})"
                )
                per_tier[str(workers)] = {
                    "seconds": seconds,
                    "evals_per_second": evaluations / seconds,
                }
            base = per_tier["1"]["evals_per_second"]
            for workers in worker_counts[1:]:
                row = per_tier[str(workers)]
                row["parallel_efficiency"] = row["evals_per_second"] / (
                    workers * base
                )
            rows[tier] = per_tier
    finally:
        if saved_env is None:
            os.environ.pop(engines.ENGINE_ENV, None)
        else:
            os.environ[engines.ENGINE_ENV] = saved_env
        engines.reset_engine()
        sharding.shutdown_default()

    payload = {
        "workload": {"n_qubits": 12, "n_layers": 4, "shift_evaluations": evaluations},
        "cpu_count": os.cpu_count(),
        "compiled_available": compiled.available(),
        "compiled_reason": engines.engine_info()["compiled_reason"],
        "tiers": rows,
    }
    if "compiled" in rows:
        payload["tier_speedup"] = (
            rows["compiled"]["1"]["evals_per_second"]
            / rows["numpy"]["1"]["evals_per_second"]
        )
    _merge_json({"gradient_sharding": payload})

    lines = [f"{'tier':<10} {'workers':>8} {'evals/s':>10} {'efficiency':>11}"]
    for tier, per_tier in rows.items():
        for workers in worker_counts:
            row = per_tier[str(workers)]
            eff = row.get("parallel_efficiency")
            lines.append(
                f"{tier:<10} {workers:>8} {row['evals_per_second']:>10.0f} "
                f"{eff:>10.0%}" if eff is not None else
                f"{tier:<10} {workers:>8} {row['evals_per_second']:>10.0f} "
                f"{'—':>11}"
            )
    if "tier_speedup" in payload:
        lines.append(f"compiled-vs-numpy tier speedup: {payload['tier_speedup']:.2f}x")
    report(
        "Gradient sharding: tier x worker sweep (12-qubit 4-layer HEA)",
        "\n".join(lines),
    )

    if "compiled" in rows:
        assert payload["tier_speedup"] >= TIER_SPEEDUP_TARGET, (
            f"compiled tier speedup {payload['tier_speedup']:.2f}x below the "
            f"{TIER_SPEEDUP_TARGET}x acceptance target"
        )
