"""Substrate microbenchmarks (not a paper figure).

Times the simulation and gradient kernels the experiments above sit on, so
regressions in the quantum substrate are visible next to the storage numbers:
statevector execution, adjoint gradient, shot sampling, and — since the fast
execution engine landed — old-path-vs-engine comparisons for gate application
and parameter-shift gradient throughput.  The comparison rows are also written
to ``BENCH_substrate.json`` at the repo root so the perf trajectory is
tracked across PRs.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.autodiff import adjoint_gradient
from repro.autodiff.parameter_shift import (
    parameter_shift_gradient,
    shift_rule_evaluations,
)
from repro.bench.workloads import gradient_workload
from repro.quantum.haar import haar_state
from repro.quantum.observables import Hamiltonian
from repro.quantum.sampling import estimate_expectation
from repro.quantum.statevector import apply_circuit, apply_gate, zero_state
from repro.quantum.templates import hardware_efficient, initial_parameters

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

# The acceptance target for the engine: >= 3x on a 12-qubit, 4-layer HEA
# parameter-shift gradient versus the seed execution path.
GRAD_SPEEDUP_TARGET = 3.0


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _reference_apply_circuit(circuit, params):
    """The seed execution path: per-gate tensordot with rebuilt matrices."""
    state = zero_state(circuit.n_qubits)
    for op in circuit.ops:
        state = apply_gate(state, op.matrix(params), op.wires, circuit.n_qubits)
    return state


def test_statevector_execution_12q(benchmark):
    circuit = hardware_efficient(12, 4)
    params = initial_parameters(circuit, np.random.default_rng(0))
    state = benchmark(apply_circuit, circuit, params)
    assert np.isclose(np.linalg.norm(state), 1.0)


def test_adjoint_gradient_10q(benchmark):
    circuit = hardware_efficient(10, 4)
    params = initial_parameters(circuit, np.random.default_rng(0))
    hamiltonian = Hamiltonian.transverse_field_ising(10, 1.0, 0.8)
    grads = benchmark(adjoint_gradient, circuit, params, hamiltonian)
    assert grads.shape == params.shape


def test_shot_sampling_12q(benchmark):
    state = haar_state(12, np.random.default_rng(1))
    hamiltonian = Hamiltonian.transverse_field_ising(12, 1.0, 0.8)
    rng = np.random.default_rng(2)
    value = benchmark(estimate_expectation, state, hamiltonian, 1024, rng)
    assert np.isfinite(value)


def test_batched_shift_gradient_12q(benchmark):
    """Throughput of the batched engine gradient itself."""
    circuit, params, hamiltonian = gradient_workload(12, 4)
    grads = benchmark(parameter_shift_gradient, circuit, params, hamiltonian)
    assert grads.shape == params.shape


def test_engine_speedups(report):
    """Old path vs fast engine: gate kernels and gradient throughput.

    Asserts the acceptance target (>= 3x on the 12-qubit, 4-layer HEA
    parameter-shift gradient) and writes every row to BENCH_substrate.json.
    """
    circuit, params, hamiltonian = gradient_workload(12, 4)

    exec_ref, state_ref = _best_of(lambda: _reference_apply_circuit(circuit, params), 3)
    exec_fast, state_fast = _best_of(lambda: apply_circuit(circuit, params), 5)
    assert np.allclose(state_ref, state_fast, atol=1e-12)

    grad_ref, g_ref = _best_of(
        lambda: parameter_shift_gradient(
            circuit, params, hamiltonian, engine="reference"
        ),
        2,
    )
    grad_fast, g_fast = _best_of(
        lambda: parameter_shift_gradient(circuit, params, hamiltonian), 5
    )
    assert np.allclose(g_ref, g_fast, atol=1e-10)

    evaluations = shift_rule_evaluations(circuit)
    rows = {
        "workload": {
            "n_qubits": 12,
            "n_layers": 4,
            "n_params": int(circuit.n_params),
            "n_ops": len(circuit.ops),
            "shift_evaluations": evaluations,
        },
        "execution_seconds": {"reference": exec_ref, "engine": exec_fast},
        "gradient_seconds": {"reference": grad_ref, "engine": grad_fast},
        "speedups": {
            "execution": exec_ref / exec_fast,
            "gradient": grad_ref / grad_fast,
        },
        "gradient_evals_per_second": {
            "reference": evaluations / grad_ref,
            "engine": evaluations / grad_fast,
        },
    }
    _JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    table = "\n".join(
        [
            f"{'path':<12} {'execute (ms)':>14} {'gradient (ms)':>14} {'evals/s':>10}",
            f"{'reference':<12} {exec_ref * 1e3:>14.2f} {grad_ref * 1e3:>14.1f} "
            f"{evaluations / grad_ref:>10.0f}",
            f"{'engine':<12} {exec_fast * 1e3:>14.2f} {grad_fast * 1e3:>14.1f} "
            f"{evaluations / grad_fast:>10.0f}",
            f"{'speedup':<12} {exec_ref / exec_fast:>13.1f}x "
            f"{grad_ref / grad_fast:>13.1f}x",
        ]
    )
    report("Substrate engine: 12-qubit 4-layer HEA (old path vs fast engine)", table)

    assert grad_ref / grad_fast >= GRAD_SPEEDUP_TARGET, (
        f"gradient speedup {grad_ref / grad_fast:.2f}x below the "
        f"{GRAD_SPEEDUP_TARGET}x acceptance target"
    )
