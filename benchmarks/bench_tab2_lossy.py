"""Tab. 2 — Lossy statevector compression: bytes vs fidelity.

Reproduced claim: c64 ≈ 2x at ~1e-15 infidelity, f16-pair ≈ 4x at ~1e-8,
int8-block ≈ 8x at ~1e-4; parameters are never lossy so resume exactness is
unaffected.  Kernel timed: the int8-block encode of a 14-qubit Haar state.
"""

import numpy as np

from repro.bench.experiments import tab2_lossy
from repro.bench.reporting import format_table
from repro.core.codecs import get_transform
from repro.quantum.haar import haar_state


def test_tab2_lossy(benchmark, report):
    rows = tab2_lossy(qubit_counts=(10, 14))
    report("Tab. 2 — lossy statevector transforms", format_table(rows))

    by_key = {(r["n_qubits"], r["transform"]): r for r in rows}
    for n in (10, 14):
        # size ordering: identity > c64 > f16 > int8
        assert (
            by_key[(n, "identity")]["stored_bytes"]
            > by_key[(n, "c64")]["stored_bytes"]
            > by_key[(n, "f16-pair")]["stored_bytes"]
            > by_key[(n, "int8-block")]["stored_bytes"]
        )
        # fidelity ordering mirrors precision
        assert (
            by_key[(n, "c64")]["infidelity"]
            <= by_key[(n, "f16-pair")]["infidelity"]
            <= by_key[(n, "int8-block")]["infidelity"]
        )
        assert by_key[(n, "int8-block")]["fidelity"] > 0.999

    state = haar_state(14, np.random.default_rng(1))
    transform = get_transform("int8-block")
    benchmark(transform.encode, state)
