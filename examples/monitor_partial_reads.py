#!/usr/bin/env python3
"""Monitoring a training run through partial checkpoint reads.

Operations use case for tensor-selective restore: a dashboard (or an
operator with ``qckpt peek``) wants the live loss curve and parameter norm
of a run whose checkpoints are dominated by the 2^n statevector cache.
Partial reads fetch the O(kB) classical tensors through ranged I/O and never
transfer the cache — here a ~40x traffic reduction at just 12 qubits, and
the gap doubles with every added qubit.
"""

import numpy as np

from repro import (
    Adam,
    CheckpointManager,
    CheckpointStore,
    EveryKSteps,
    Hamiltonian,
    InMemoryBackend,
    Trainer,
    TrainerConfig,
    VQEModel,
    hardware_efficient,
)

N_QUBITS = 12
STEPS = 20


def monitor(store: CheckpointStore, backend: InMemoryBackend) -> None:
    """What a dashboard poll does: latest loss curve + parameter norm."""
    latest = store.latest()
    backend.reset_counters()
    meta, tensors = store.load_partial(latest.id, ["loss_history", "params"])
    history = tensors["loss_history"]
    norm = float(np.linalg.norm(tensors["params"]))
    print(
        f"  poll @ step {meta['step']}: loss {history[-1]:+.5f} "
        f"(best {history.min():+.5f}), |params| {norm:.3f} — "
        f"transferred {backend.bytes_read} B of {latest.nbytes} B stored"
    )


def main() -> None:
    model = VQEModel(
        hardware_efficient(N_QUBITS, 3),
        Hamiltonian.transverse_field_ising(N_QUBITS, 1.0, 0.8),
    )
    backend = InMemoryBackend()
    store = CheckpointStore(backend)
    trainer = Trainer(
        model,
        Adam(lr=0.1),
        config=TrainerConfig(seed=5, capture_statevector=True),
    )
    manager = CheckpointManager(store, EveryKSteps(5))

    print(f"{N_QUBITS}-qubit VQE; checkpoints carry the full statevector cache")
    for _ in range(STEPS // 5):
        trainer.run(5, hooks=[manager])
        monitor(store, backend)
    manager.close()

    # Compare against what a naive monitor pays (full restore per poll).
    backend.reset_counters()
    store.load(store.latest().id)
    print(f"naive full-restore poll: {backend.bytes_read} B transferred")


if __name__ == "__main__":
    main()
