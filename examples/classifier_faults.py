#!/usr/bin/env python3
"""Variational classifier training under injected failures.

The scenario HotStorage cares about: a hybrid training job on preemptible
infrastructure.  We train a two-moons classifier while a Poisson failure
process kills the "process" repeatedly, and compare the wasted work with and
without checkpointing.  Everything runs in-memory; the failure schedule is
deterministic for a given seed.
"""

import numpy as np

from repro import (
    Adam,
    CheckpointManager,
    CheckpointStore,
    EveryKSteps,
    InMemoryBackend,
    PoissonStepFailures,
    Trainer,
    TrainerConfig,
    VariationalClassifier,
    hardware_efficient,
    run_with_failures,
)
from repro.ml.dataset import make_moons

TARGET_STEPS = 40
MTBF_STEPS = 12.0  # aggressively unreliable: one failure per ~12 steps


def make_trainer() -> Trainer:
    rng = np.random.default_rng(1)
    dataset = make_moons(48, rng, noise=0.15)
    model = VariationalClassifier(hardware_efficient(4, 2))
    return Trainer(
        model, Adam(lr=0.08), dataset, TrainerConfig(batch_size=8, seed=7)
    )


def run(strategy_name: str, with_checkpoints: bool):
    store = CheckpointStore(InMemoryBackend())
    failure_hook = PoissonStepFailures(
        MTBF_STEPS, seed=99, fixed_step_seconds=1.0
    )
    manager_factory = (
        (lambda s: CheckpointManager(s, EveryKSteps(5)))
        if with_checkpoints
        else None
    )
    result = run_with_failures(
        make_trainer,
        store,
        manager_factory,
        TARGET_STEPS,
        failure_hooks=[failure_hook],
        max_failures=2000,
    )
    print(
        f"{strategy_name:<16} failures={result.failures:<3} "
        f"steps_executed={result.steps_executed:<5} "
        f"wasted={result.wasted_steps:<5} "
        f"waste_fraction={result.wasted_steps / result.steps_executed:.1%}"
    )
    return store, result


def main() -> None:
    print(f"target: {TARGET_STEPS} steps, MTBF: {MTBF_STEPS} steps\n")
    store, _ = run("checkpoint/5", with_checkpoints=True)
    run("no-checkpoint", with_checkpoints=False)

    # The checkpointed run's final state is bitwise identical to a run that
    # never failed at all — the library's core guarantee.
    reference = make_trainer()
    reference.run(TARGET_STEPS)
    final = store.load(store.latest().id)
    identical = np.array_equal(final.params, reference.params)
    print(f"\nbitwise identical to failure-free run: {identical}")

    accuracy = reference.model.accuracy(
        final.params, reference.dataset.features, reference.dataset.labels
    )
    print(f"final training accuracy: {accuracy:.1%}")


if __name__ == "__main__":
    main()
