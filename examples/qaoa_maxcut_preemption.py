#!/usr/bin/env python3
"""QAOA MaxCut surviving repeated queue preemptions.

The cloud-QPU scenario from the paper's motivation: a QAOA job on a
3-regular graph keeps getting evicted before it finishes (three preemptions),
and only checkpointing lets the optimization accumulate progress across
evictions.  Each "session" is a fresh Trainer — as a new cloud job would be —
that resumes from the store, runs until the next preemption, and dies.

At the end we compare the approximation ratio reached across the preempted
sessions against an uninterrupted reference run: they match exactly, because
resume is bitwise.
"""

import numpy as np
import networkx as nx

from repro import (
    Adam,
    CheckpointManager,
    CheckpointStore,
    EveryKSteps,
    InMemoryBackend,
    QAOAMaxCutModel,
    SimulatedFailure,
    Trainer,
    TrainerConfig,
    resume_trainer,
)
from repro.faults import CrashAtStep

TOTAL_STEPS = 60
PREEMPT_AT = (18, 35, 47)  # steps at which the "queue" kills the job
SEED = 2026


def build_model() -> QAOAMaxCutModel:
    graph = nx.random_regular_graph(3, 8, seed=7)
    return QAOAMaxCutModel.from_networkx(graph, n_layers=3)


def make_trainer(model: QAOAMaxCutModel) -> Trainer:
    return Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=SEED))


def main() -> None:
    model = build_model()
    optimum = model.max_cut_brute_force()
    print(f"graph: 8 nodes, 3-regular; exact MaxCut = {optimum:.0f}")

    # Reference: one uninterrupted run.
    reference = make_trainer(model)
    reference.run(TOTAL_STEPS)
    reference_cut = model.expected_cut(reference.params)
    print(
        f"uninterrupted: expected cut {reference_cut:.4f} "
        f"(ratio {reference_cut / optimum:.3f})"
    )

    # Preempted runs: each session is a fresh process image.
    store = CheckpointStore(InMemoryBackend())
    sessions = 0
    for preempt_step in PREEMPT_AT:
        sessions += 1
        trainer = make_trainer(model)
        record = resume_trainer(trainer, store)
        resumed_at = record.step if record else 0
        manager = CheckpointManager(store, EveryKSteps(5))
        try:
            trainer.run(
                TOTAL_STEPS - trainer.step_count,
                hooks=[manager, CrashAtStep(preempt_step)],
            )
        except SimulatedFailure:
            print(
                f"session {sessions}: resumed at step {resumed_at}, "
                f"preempted at step {trainer.step_count}"
            )
        finally:
            manager.close()

    # Final session runs to completion.
    sessions += 1
    trainer = make_trainer(model)
    record = resume_trainer(trainer, store)
    manager = CheckpointManager(store, EveryKSteps(5))
    trainer.run(TOTAL_STEPS - trainer.step_count, hooks=[manager])
    manager.close()
    print(f"session {sessions}: resumed at step {record.step}, finished")

    final_cut = model.expected_cut(trainer.params)
    print(
        f"after {sessions} sessions: expected cut {final_cut:.4f} "
        f"(ratio {final_cut / optimum:.3f})"
    )

    # The checkpointed trajectory is *bitwise* the uninterrupted one.
    assert np.array_equal(trainer.params, reference.params)
    print("preempted parameters are bitwise identical to the reference run")

    rng = np.random.default_rng(99)
    bits, sampled = model.sample_cut(trainer.params, shots=512, rng=rng)
    print(f"best of 512 samples: cut {sampled:.0f} with partition {bits}")


if __name__ == "__main__":
    main()
