#!/usr/bin/env python3
"""Noisy VQE on the exact density-matrix simulator, checkpointed and resumed.

NISQ-realistic workload: minimize the transverse-field Ising energy through a
depolarizing + amplitude-damping channel.  The density matrix is the O(4^n)
worst case for checkpoint footprint — this example checkpoints it as the
warm-start cache and shows the footprint blow-up next to the pure-state
equivalent, then crashes the run and resumes it bit-exactly.
"""

import numpy as np

from repro import (
    Adam,
    CheckpointManager,
    CheckpointStore,
    EveryKSteps,
    Hamiltonian,
    InMemoryBackend,
    NoisyVQEModel,
    SimulatedFailure,
    Trainer,
    TrainerConfig,
    VQEModel,
    hardware_efficient,
    resume_trainer,
)
from repro.faults import CrashAtStep
from repro.quantum.density import density_nbytes, purity
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import statevector_nbytes

N_QUBITS = 4
TOTAL_STEPS = 30
SEED = 7


def main() -> None:
    hamiltonian = Hamiltonian.transverse_field_ising(N_QUBITS, 1.0, 0.8)
    ansatz = hardware_efficient(N_QUBITS, 2)
    noise = NoiseModel(depolarizing=0.02, amplitude_damping=0.01)
    model = NoisyVQEModel(ansatz, hamiltonian, noise)
    clean = VQEModel(ansatz, hamiltonian)

    ground = hamiltonian.ground_energy(N_QUBITS)
    print(f"TFIM ground energy ({N_QUBITS} qubits): {ground:.6f}")
    print(
        f"state cache: pure {statevector_nbytes(N_QUBITS)} B vs "
        f"density {density_nbytes(N_QUBITS)} B "
        f"({density_nbytes(N_QUBITS) // statevector_nbytes(N_QUBITS)}x)"
    )

    config = TrainerConfig(seed=SEED, capture_statevector=True)

    def make_trainer() -> Trainer:
        return Trainer(model, Adam(lr=0.1), config=config)

    # Crash mid-run; every snapshot carries the density matrix.
    store = CheckpointStore(InMemoryBackend())
    trainer = make_trainer()
    manager = CheckpointManager(store, EveryKSteps(5))
    try:
        trainer.run(TOTAL_STEPS, hooks=[manager, CrashAtStep(17)])
    except SimulatedFailure:
        print(f"crashed at step {trainer.step_count}")
    finally:
        manager.close()

    snapshot = store.load(store.latest().id)
    rho = snapshot.extra["density_matrix"]
    print(
        f"latest checkpoint: step {snapshot.step}, density cache "
        f"{rho.nbytes} B, purity {purity(rho):.4f} (noise has mixed the state)"
    )

    # Fresh process: resume and finish.
    resumed = make_trainer()
    record = resume_trainer(resumed, store)
    print(f"resumed from checkpoint {record.id} at step {record.step}")
    resumed.run(TOTAL_STEPS - resumed.step_count, hooks=[manager])

    noisy_energy = model.energy(resumed.params)
    clean_energy = clean.energy(resumed.params)
    print(
        f"after {TOTAL_STEPS} steps: noisy energy {noisy_energy:.6f}, "
        f"same parameters noiselessly {clean_energy:.6f}"
    )
    print(
        f"noise floor above ground state: {noisy_energy - ground:.6f} "
        "(the gap exact noisy simulation quantifies)"
    )

    # Exactness check against an uninterrupted run.
    reference = make_trainer()
    reference.run(TOTAL_STEPS)
    assert np.array_equal(reference.params, resumed.params)
    print("resumed trajectory is bitwise identical to the uninterrupted run")


if __name__ == "__main__":
    main()
