#!/usr/bin/env python3
"""Quickstart: checkpointed VQE on the minimal H2 Hamiltonian.

Run it twice to see resume in action::

    python examples/quickstart.py          # trains, checkpoints every 10 steps
    python examples/quickstart.py          # resumes from the latest checkpoint

The second invocation picks up exactly where the first stopped — parameters,
Adam moments, RNG position, loss history — because the checkpoint captures
the *complete* hybrid training state.
"""

from pathlib import Path

from repro import (
    Adam,
    CheckpointManager,
    CheckpointStore,
    EveryKSteps,
    Hamiltonian,
    LocalDirectoryBackend,
    Trainer,
    TrainerConfig,
    VQEModel,
    hardware_efficient,
    resume_trainer,
)

CKPT_DIR = Path(__file__).with_name("quickstart_ckpts")
TOTAL_STEPS = 120


def main() -> None:
    hamiltonian = Hamiltonian.h2_minimal()
    exact = hamiltonian.ground_energy(2)
    model = VQEModel(hardware_efficient(2, 2), hamiltonian)
    trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=42))

    store = CheckpointStore(LocalDirectoryBackend(CKPT_DIR))
    record = resume_trainer(trainer, store)
    if record is None:
        print("no checkpoint found — starting fresh")
    else:
        print(f"resumed from {record.id} at step {record.step}")

    remaining = TOTAL_STEPS - trainer.step_count
    if remaining <= 0:
        print(f"training already complete at step {trainer.step_count}")
    else:
        manager = CheckpointManager(store, EveryKSteps(10))
        print(f"running {remaining} steps...")
        trainer.run(remaining, hooks=[manager])
        print(
            f"checkpoints written: {manager.stats.saves} "
            f"({manager.stats.bytes_written} bytes)"
        )

    energy = trainer.last_loss
    print(f"final energy  : {energy:.6f} Ha")
    print(f"exact ground  : {exact:.6f} Ha")
    print(f"error         : {abs(energy - exact):.2e} Ha")
    print(f"checkpoints in {CKPT_DIR}: try `qckpt ls {CKPT_DIR}`")


if __name__ == "__main__":
    main()
