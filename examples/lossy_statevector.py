#!/usr/bin/env python3
"""Lossy statevector checkpoints: trading fidelity for bytes.

Beyond ~12 qubits the cached statevector dominates hybrid checkpoint size
(2^n complex128 amplitudes).  This example checkpoints a 14-qubit VQE state
under every registered transform and reports size, fidelity, and the error
induced on the energy readout — the Tab. 2 experiment at example scale.
"""

import numpy as np

from repro import Adam, Trainer, TrainerConfig, VQEModel, hardware_efficient
from repro.core.serialize import pack_payload, unpack_payload
from repro.quantum.observables import Hamiltonian

N_QUBITS = 14


def main() -> None:
    hamiltonian = Hamiltonian.transverse_field_ising(N_QUBITS, 1.0, 0.9)
    model = VQEModel(hardware_efficient(N_QUBITS, 2), hamiltonian)
    trainer = Trainer(
        model,
        Adam(lr=0.05),
        config=TrainerConfig(seed=3, capture_statevector=True),
    )
    print(f"training a {N_QUBITS}-qubit VQE for 10 steps...")
    trainer.run(10)
    state = trainer.capture().statevector
    exact_energy = hamiltonian.expectation(state)
    raw_bytes = state.nbytes
    print(f"statevector: {raw_bytes} bytes raw, energy {exact_energy:.6f}\n")

    header = (
        f"{'transform':<12} {'stored':>10} {'ratio':>7} "
        f"{'infidelity':>12} {'energy error':>13}"
    )
    print(header)
    print("-" * len(header))
    for name in ("identity", "c64", "f16-pair", "int8-block"):
        data = pack_payload(
            {"example": "lossy"},
            {"statevector": state},
            codec="zlib-1",
            transforms={"statevector": name},
        )
        _, tensors = unpack_payload(data)
        restored = tensors["statevector"]
        infidelity = 1.0 - abs(np.vdot(state, restored)) ** 2
        drift = abs(hamiltonian.expectation(restored) - exact_energy)
        print(
            f"{name:<12} {len(data):>10} {raw_bytes / len(data):>7.2f} "
            f"{max(infidelity, 0.0):>12.3e} {drift:>13.3e}"
        )

    print(
        "\nTakeaway: int8-block stores the state in ~1/8 the bytes at "
        "~1e-4 infidelity — fine for a warm-start cache, never used for "
        "parameters (those always store losslessly)."
    )


if __name__ == "__main__":
    main()
