#!/usr/bin/env python3
"""Checkpoints surviving storage failures: replication, rot, and tiering.

Storage-layer walk-through of the deployment section:

1. a VQE run checkpoints into a 3-way :class:`ReplicatedBackend`;
2. one replica dies entirely and another suffers silent bit rot — a quorum
   read with read-repair restores the damaged copy and the run resumes;
3. the same run is repeated against a :class:`TieredBackend` (small fast
   tier over a slow tier) and the fast tier is wiped — restores fall back
   to the slow tier transparently.
"""

import numpy as np

from repro import (
    Adam,
    CheckpointManager,
    CheckpointStore,
    EveryKSteps,
    Hamiltonian,
    InMemoryBackend,
    ReplicatedBackend,
    TieredBackend,
    Trainer,
    TrainerConfig,
    VQEModel,
    hardware_efficient,
    resume_trainer,
)

TOTAL_STEPS = 20
SEED = 31


def build_model() -> VQEModel:
    return VQEModel(
        hardware_efficient(4, 2),
        Hamiltonian.transverse_field_ising(4, 1.0, 0.8),
    )


def train_with(store: CheckpointStore, model: VQEModel, steps: int) -> Trainer:
    trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=SEED))
    manager = CheckpointManager(store, EveryKSteps(5))
    trainer.run(steps, hooks=[manager])
    manager.close()
    return trainer


def replicated_scenario(model: VQEModel, reference: np.ndarray) -> None:
    print("=== 3-way replication with quorum reads ===")
    replicas = [InMemoryBackend() for _ in range(3)]
    backend = ReplicatedBackend(replicas, consistency="quorum")
    trainer = train_with(CheckpointStore(backend), model, 12)
    print(f"checkpointed through step {trainer.step_count} across 3 replicas")

    # Disaster strikes: replica 0 is lost, replica 1 rots silently.  With
    # replica 0 gone, byte-voting on the rotted object is a 1-vs-1 tie; the
    # checkpoint manifest's SHA-256 breaks it.
    replicas[0]._objects.clear()
    latest_name = sorted(replicas[1].list("ckpt-"))[-1]
    rotten = bytearray(replicas[1].read(latest_name))
    rotten[len(rotten) // 2] ^= 0xFF
    replicas[1]._objects[latest_name] = bytes(rotten)
    print("replica 0 lost, replica 1 bit-rotted")

    validator = CheckpointStore(backend).object_validator()
    report = backend.scrub(validator)
    print(f"scrub report: {report}")

    resumed = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=SEED))
    record = resume_trainer(resumed, CheckpointStore(backend))
    resumed.run(TOTAL_STEPS - resumed.step_count)
    assert np.array_equal(resumed.params, reference)
    print(f"resumed from step {record.step}; final params match reference\n")


def tiered_scenario(model: VQEModel, reference: np.ndarray) -> None:
    print("=== tiered storage: fast tier loss ===")
    fast, slow = InMemoryBackend(), InMemoryBackend()
    tiered = TieredBackend(fast, slow, fast_capacity_bytes=1 << 20)
    trainer = train_with(CheckpointStore(tiered), model, 12)
    print(
        f"checkpointed through step {trainer.step_count}; "
        f"fast tier holds {tiered.fast_bytes_used()} B"
    )

    fast._objects.clear()
    print("fast tier wiped (node-local SSD lost)")

    rebuilt = TieredBackend(InMemoryBackend(), slow, fast_capacity_bytes=1 << 20)
    resumed = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=SEED))
    record = resume_trainer(resumed, CheckpointStore(rebuilt))
    resumed.run(TOTAL_STEPS - resumed.step_count)
    assert np.array_equal(resumed.params, reference)
    print(
        f"resumed from step {record.step} via the slow tier "
        f"({rebuilt.stats.fast_misses} miss, {rebuilt.stats.promotions} promotion); "
        "final params match reference"
    )


def main() -> None:
    model = build_model()
    reference = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=SEED))
    reference.run(TOTAL_STEPS)
    print(
        f"reference run: {TOTAL_STEPS} steps, "
        f"energy {model.energy(reference.params):.6f}\n"
    )
    replicated_scenario(model, reference.params)
    tiered_scenario(model, reference.params)


if __name__ == "__main__":
    main()
