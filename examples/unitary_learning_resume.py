#!/usr/bin/env python3
"""Characterizing an unknown unitary, with a mid-run crash and exact resume.

Workload from the QNN-characterization literature: learn an unknown 2-qubit
unitary from (input, output) state pairs by maximizing fidelity.  We crash
the run at step 30 of 80 and resume from the checkpoint store, then verify
the resumed trajectory is bitwise identical to an uninterrupted one.
"""

import numpy as np

from repro import (
    Adam,
    CheckpointManager,
    CheckpointStore,
    EveryKSteps,
    InMemoryBackend,
    SimulatedFailure,
    Trainer,
    TrainerConfig,
    UnitaryLearningModel,
    resume_trainer,
    strongly_entangling,
)
from repro.faults import CrashAtStep
from repro.quantum.haar import haar_state, haar_unitary

TOTAL_STEPS = 80
N_QUBITS = 2
N_TRAINING_STATES = 4


def build_model() -> UnitaryLearningModel:
    rng = np.random.default_rng(2026)
    target = haar_unitary(2**N_QUBITS, rng)
    inputs = [haar_state(N_QUBITS, rng) for _ in range(N_TRAINING_STATES)]
    return UnitaryLearningModel(strongly_entangling(N_QUBITS, 3), target, inputs)


def main() -> None:
    model = build_model()

    def make_trainer() -> Trainer:
        return Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=8))

    # Reference: uninterrupted run.
    reference = make_trainer()
    reference.run(TOTAL_STEPS)
    print(f"uninterrupted: fidelity {model.mean_fidelity(reference.params):.6f}")

    # Crashing run with checkpoints every 10 steps.
    store = CheckpointStore(InMemoryBackend())
    trainer = make_trainer()
    manager = CheckpointManager(store, EveryKSteps(10))
    try:
        trainer.run(TOTAL_STEPS, hooks=[manager, CrashAtStep(30)])
    except SimulatedFailure as failure:
        print(f"crashed: {failure}")

    # "New process": fresh trainer, resume, finish.
    survivor = make_trainer()
    record = resume_trainer(survivor, store)
    print(f"resumed from {record.id} at step {record.step}")
    survivor.run(TOTAL_STEPS - survivor.step_count, hooks=[manager])

    identical = np.array_equal(survivor.params, reference.params)
    print(f"final fidelity: {model.mean_fidelity(survivor.params):.6f}")
    print(f"bitwise identical to uninterrupted run: {identical}")
    assert identical, "exact-resume guarantee violated!"


if __name__ == "__main__":
    main()
