"""Tests for the unified restore pipeline (`repro.core.restore`).

Covers the acceptance criteria of the restore-path refactor:

* bitwise identity with the legacy read paths over formats x codecs x
  backends (property test),
* parameters-only restore transfers measurably fewer bytes than full,
* parallel executor and whole-object-fallback correctness,
* tier-aware chunk placement (pinned manifests, promote-on-restore,
  cold-chunk demotion),
* fault injection: a backend failing mid-ranged-read, truncated manifests,
  and chunks vanishing or moving tiers between plan and fetch all either
  restore bitwise or raise — never return corrupt tensors.
"""

import json

import numpy as np
import pytest

from repro.core.recovery import RecoveryManager, warm_start_trainer
from repro.core.restore import (
    WARM_START_TENSORS,
    QckptSource,
    RestoreExecutor,
    content_address,
    restore_tensors,
)
from repro.core.serialize import unpack_payload
from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointStore
from repro.errors import (
    CheckpointError,
    ConfigError,
    IntegrityError,
    ReproError,
    SerializationError,
    StorageError,
)
from repro.service.chunkstore import ChunkStore
from repro.service.manager import ServiceCheckpointManager
from repro.service.pool import WriterPool
from repro.storage.backend import StorageBackend
from repro.storage.flaky import FlakyBackend
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.sharded import ShardedBackend
from repro.storage.tiered import TieredBackend


def snapshot_at(step: int, seed: int = 7, extra_elems: int = 2048):
    rng = np.random.default_rng(seed + step)
    return TrainingSnapshot(
        step=step,
        params=rng.standard_normal(24),
        optimizer_state={"name": "adam", "t": step, "m": rng.standard_normal(24)},
        rng_state={"bit_generator": "PCG64", "state": {"s": step}},
        model_fingerprint="restore-pipeline-test",
        loss_history=rng.standard_normal(step + 1),
        statevector=(
            rng.standard_normal(extra_elems)
            + 1j * rng.standard_normal(extra_elems)
        ),
        wall_time=1.25 * step,
    )


def tensors_equal(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    return all(
        a[k].dtype == b[k].dtype
        and a[k].shape == b[k].shape
        and np.array_equal(a[k], b[k])
        for k in a
    )


def backend_factories(tmp_path):
    return {
        "memory": lambda: InMemoryBackend(),
        "local": lambda: LocalDirectoryBackend(tmp_path / "store"),
        "sharded": lambda: ShardedBackend([InMemoryBackend() for _ in range(3)]),
        "tiered": lambda: TieredBackend(
            InMemoryBackend(), InMemoryBackend(), fast_capacity_bytes=1 << 20
        ),
    }


class MinimalBackend(StorageBackend):
    """Abstract surface only: no ranged reads, counts whole-object reads."""

    def __init__(self):
        self.objects = {}
        self.reads = 0

    def write(self, name, data):
        self.objects[name] = bytes(data)

    def read(self, name):
        self.reads += 1
        try:
            return self.objects[name]
        except KeyError:
            raise StorageError(f"object {name!r} does not exist") from None

    def exists(self, name):
        return name in self.objects

    def delete(self, name):
        self.objects.pop(name, None)

    def list(self, prefix=""):
        return sorted(n for n in self.objects if n.startswith(prefix))


# ---------------------------------------------------------------------------
# Bitwise identity with the legacy paths: formats x codecs x backends
# ---------------------------------------------------------------------------


CODECS = ("none", "zlib-1", "zlib-6")


class TestBitwiseIdentity:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize(
        "backend_name", ["memory", "local", "sharded", "tiered"]
    )
    def test_core_store_full_and_delta(self, tmp_path, codec, backend_name):
        backend = backend_factories(tmp_path)[backend_name]()
        store = CheckpointStore(backend)
        record = store.save_full(snapshot_at(1), codec=codec)
        for step in (2, 3):
            record = store.save_delta(
                snapshot_at(step), record.id, codec=codec
            )
            if step == 2:
                base = record
        # Pipeline full restore == legacy unpack of the stored objects,
        # resolved through the same delta chain.
        for check in store.records():
            snapshot = store.load(check.id)
            assert snapshot == snapshot_at(check.step), (
                f"{backend_name}/{codec}: {check.id} not bitwise"
            )
        # Legacy oracle at the format level: the full record's bytes unpack
        # to exactly what the pipeline returned.
        full = store.records()[0]
        legacy_meta, legacy_tensors = unpack_payload(
            backend.read(full.object_name)
        )
        _, pipeline_tensors = store.load_tensors(full.id)
        assert tensors_equal(legacy_tensors, pipeline_tensors)

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize(
        "backend_name", ["memory", "local", "sharded", "tiered"]
    )
    def test_chunk_store(self, tmp_path, codec, backend_name):
        backend = backend_factories(tmp_path)[backend_name]()
        store = ChunkStore(backend, codec=codec, block_bytes=512)
        for step in (1, 2):
            store.save_snapshot("jobA", snapshot_at(step))
        # Legacy oracle: reassemble chunks by hand from the manifest.
        manifest = json.loads(
            backend.read("job-jobA-ckpt-000002.json").decode("utf-8")
        )
        from repro.core.codecs import get_codec
        from repro.core.serialize import tensor_from_bytes

        codec_obj = get_codec(manifest["codec"])
        legacy = {}
        for entry in manifest["tensors"]:
            raw = b"".join(
                codec_obj.decode(backend.read(block["chunk"]))
                for block in entry["blocks"]
            )
            legacy[entry["name"]] = tensor_from_bytes(
                raw, entry["dtype"], tuple(entry["shape"])
            )
        _, pipeline = store.load_tensors("jobA", "ckpt-000002")
        assert tensors_equal(legacy, pipeline), f"{backend_name}/{codec}"
        assert store.load_snapshot("jobA") == snapshot_at(2)

    def test_partial_equals_full_subset(self, tmp_path):
        for backend_name, factory in backend_factories(tmp_path).items():
            backend = factory()
            store = CheckpointStore(backend)
            record = store.save_full(snapshot_at(1))
            record = store.save_delta(snapshot_at(2), record.id)
            _, full = store.load_tensors(record.id)
            _, part = store.load_partial(record.id, ["params", "loss_history"])
            assert np.array_equal(part["params"], full["params"])
            assert np.array_equal(part["loss_history"], full["loss_history"])

    def test_chunk_partial_equals_full_subset(self):
        store = ChunkStore(InMemoryBackend(), block_bytes=256)
        store.save_snapshot("j", snapshot_at(3))
        _, full = store.load_tensors("j")
        _, part = store.load_partial("j", ["params"])
        assert set(part) == {"params"}
        assert np.array_equal(part["params"], full["params"])

    def test_executor_parallelism_is_invisible(self):
        backend = InMemoryBackend()
        store_serial = ChunkStore(backend, block_bytes=256, restore_workers=1)
        store_serial.save_snapshot("j", snapshot_at(5))
        store_parallel = ChunkStore(backend, block_bytes=256, restore_workers=8)
        _, serial = store_serial.load_tensors("j")
        _, parallel = store_parallel.load_tensors("j")
        assert tensors_equal(serial, parallel)


# ---------------------------------------------------------------------------
# Planner accounting: partial restores transfer fewer bytes
# ---------------------------------------------------------------------------


class TestPlanAccounting:
    def test_core_partial_fetches_fewer_bytes(self):
        backend = InMemoryBackend()
        store = CheckpointStore(backend)
        record = store.save_full(snapshot_at(1, extra_elems=1 << 14))
        backend.reset_counters()
        store.load_partial(record.id, ["params"])
        partial_bytes = backend.bytes_read
        backend.reset_counters()
        store.load_tensors(record.id)
        full_bytes = backend.bytes_read
        assert partial_bytes < full_bytes / 10

    def test_chunk_partial_fetches_fewer_bytes(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend, block_bytes=1024)
        store.save_snapshot("j", snapshot_at(1, extra_elems=1 << 14))
        backend.reset_counters()
        store.load_partial("j", ["params"])
        partial_bytes = backend.bytes_read
        backend.reset_counters()
        store.load_tensors("j")
        full_bytes = backend.bytes_read
        assert partial_bytes < full_bytes / 5

    def test_plan_reports_fetch_fraction(self):
        store = ChunkStore(InMemoryBackend(), block_bytes=1024)
        store.save_snapshot("j", snapshot_at(1, extra_elems=1 << 14))
        full_plan = store.plan_restore("j")
        part_plan = store.plan_restore("j", names=["params"])
        assert part_plan.fetch_bytes < full_plan.fetch_bytes / 5
        assert full_plan.total_stored_bytes == part_plan.total_stored_bytes
        assert part_plan.requested == ("params",)

    def test_core_plan_modes(self, tmp_path):
        store = CheckpointStore(LocalDirectoryBackend(tmp_path / "s"))
        record = store.save_full(snapshot_at(1))
        (full_plan,) = store.restore_plan(record.id)
        (part_plan,) = store.restore_plan(record.id, ["params"])
        assert full_plan.objects[0].mode == "whole"
        assert part_plan.objects[0].mode == "ranged"
        assert part_plan.fetch_bytes < full_plan.fetch_bytes

    def test_plan_introspection_transfers_no_payload(self):
        backend = InMemoryBackend()
        store = CheckpointStore(backend)
        record = store.save_full(snapshot_at(1, extra_elems=1 << 14))
        object_size = backend.size(record.object_name)
        backend.reset_counters()
        (plan,) = store.restore_plan(record.id)
        # Planning a full restore reads the header, not the payload.
        assert backend.bytes_read < object_size / 10
        assert plan.fetch_bytes == object_size

    def test_chunk_plan_introspection_transfers_no_payload(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend, block_bytes=1024)
        store.save_snapshot("j", snapshot_at(1, extra_elems=1 << 14))
        backend.reset_counters()
        plan = store.plan_restore("j")
        manifest_size = backend.size("job-j-ckpt-000001.json")
        assert backend.bytes_read <= 2 * manifest_size  # manifest only
        assert plan.fetch_bytes > 10 * manifest_size

    def test_minimal_backend_coalesces_to_one_read(self):
        backend = MinimalBackend()
        store = CheckpointStore(backend)
        record = store.save_full(snapshot_at(1))
        backend.reads = 0
        _, tensors = store.load_partial(
            record.id, ["params", "loss_history"]
        )
        # No ranged support: the planner fetches the object once, not once
        # per header-probe plus once per tensor.
        assert backend.reads == 1
        assert np.array_equal(tensors["params"], snapshot_at(1).params)

    def test_shared_chunk_fetched_once(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend, block_bytes=256)
        # Two tensors with identical content share every chunk.
        snap = snapshot_at(1)
        snap.extra["params_copy"] = snap.params.copy()
        store.save_snapshot("j", snap)
        plan = store.plan_restore(
            "j", names=["params", "extra/params_copy"]
        )
        addresses = [o.name for o in plan.objects]
        assert len(addresses) == len(set(addresses))


# ---------------------------------------------------------------------------
# Tier-aware placement
# ---------------------------------------------------------------------------


def tiered_chunk_store(fast_capacity=1 << 16, block_bytes=1024):
    tier = TieredBackend(
        InMemoryBackend(),
        InMemoryBackend(),
        fast_capacity_bytes=fast_capacity,
        policy="write-through",
    )
    return tier, ChunkStore(tier, block_bytes=block_bytes)


class TestTierPlacement:
    def test_newest_manifest_pinned_against_chunk_churn(self):
        tier, store = tiered_chunk_store(fast_capacity=1 << 14)
        for step in range(1, 6):
            store.save_snapshot("j", snapshot_at(step, extra_elems=4096))
        # Only the newest manifest stays pinned (bounded pinned bytes no
        # matter how long the history grows); chunk churn far beyond fast
        # capacity cannot evict it.
        assert tier.pinned_objects() == ["job-j-ckpt-000005.json"]
        assert "job-j-ckpt-000005.json" in tier.resident_objects()

    def test_reopened_store_repins_newest_manifest(self):
        tier, store = tiered_chunk_store()
        store.save_snapshot("j", snapshot_at(1))
        store.save_snapshot("j", snapshot_at(2))
        fresh_tier = TieredBackend(
            InMemoryBackend(), tier.slow, fast_capacity_bytes=1 << 16
        )
        ChunkStore(fresh_tier, block_bytes=1024)
        assert fresh_tier.pinned_objects() == ["job-j-ckpt-000002.json"]

    def test_restore_promotes_touched_chunks(self):
        tier, store = tiered_chunk_store(fast_capacity=1 << 20)
        store.save_snapshot("j", snapshot_at(1, extra_elems=4096))
        # Cold-start a fresh tier over the same slow store: nothing resident.
        cold_tier = TieredBackend(
            InMemoryBackend(), tier.slow, fast_capacity_bytes=1 << 20
        )
        cold_store = ChunkStore(cold_tier, block_bytes=1024)
        assert cold_store.load_snapshot("j") == snapshot_at(
            1, extra_elems=4096
        )
        first_promotions = cold_tier.stats.promotions
        assert first_promotions > 0
        hits_before = cold_tier.stats.fast_hits
        assert cold_store.load_snapshot("j") == snapshot_at(
            1, extra_elems=4096
        )
        # The second (tier-warm) restore runs on fast hits, not promotions.
        assert cold_tier.stats.promotions == first_promotions
        assert cold_tier.stats.fast_hits > hits_before

    def test_rebalance_demotes_cold_promotes_hot(self):
        tier, store = tiered_chunk_store(fast_capacity=1 << 20)
        for step in range(1, 4):
            store.save_snapshot("j", snapshot_at(step, extra_elems=4096))
        moved = store.rebalance_tiers(hot_per_job=1)
        assert moved["demoted"] > 0
        # Everything the newest checkpoint references is now resident.
        hot = store.plan_restore("j")
        resident = set(tier.resident_objects())
        assert all(o.name in resident for o in hot.objects)
        assert tier.stats.demotions >= moved["demoted"]

    def test_pinned_objects_never_evicted(self):
        tier = TieredBackend(
            InMemoryBackend(), InMemoryBackend(), fast_capacity_bytes=4096
        )
        tier.write("keep", b"k" * 512)
        tier.pin("keep")
        for i in range(20):
            tier.write(f"obj-{i}", b"x" * 1024)
        assert "keep" in tier.resident_objects()
        assert tier.demote("keep") is False  # pinned: demote refuses
        tier.unpin("keep")
        assert tier.demote("keep") is True
        assert tier.read("keep") == b"k" * 512  # still in the slow tier

    def test_pin_squeezed_write_degrades_to_slow_only(self):
        tier = TieredBackend(
            InMemoryBackend(), InMemoryBackend(), fast_capacity_bytes=2048
        )
        tier.write("a", b"a" * 1024)
        tier.write("b", b"b" * 1024)
        tier.pin("a")
        tier.pin("b")
        # Pinning must never fail a save: the write lands slow-only.
        tier.write("c", b"c" * 1024)
        assert "c" not in tier.resident_objects()
        assert tier.read("c") == b"c" * 1024  # readable (and now promotable)
        assert sorted(tier.pinned_objects()) == ["a", "b"]

    def test_pin_raises_when_tier_full_of_pins(self):
        tier = TieredBackend(
            InMemoryBackend(), InMemoryBackend(), fast_capacity_bytes=2048
        )
        tier.write("a", b"a" * 1536)
        tier.pin("a")
        tier.write("b", b"b" * 1024)  # slow-only: no unpinned victim fits
        with pytest.raises(StorageError, match="cannot pin"):
            tier.pin("b")

    def test_parallel_restores_through_one_tier_are_safe(self):
        import threading

        tier, store = tiered_chunk_store(fast_capacity=1 << 15)
        reference = snapshot_at(1, extra_elems=8192)
        store.save_snapshot("j", reference)
        cold = TieredBackend(
            InMemoryBackend(), tier.slow, fast_capacity_bytes=1 << 15
        )
        stores = [
            ChunkStore(cold, block_bytes=1024, restore_workers=4)
            for _ in range(4)
        ]
        errors = []

        def restore(chunk_store):
            try:
                for _ in range(3):
                    assert chunk_store.load_snapshot("j") == reference
            except BaseException as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=restore, args=(s,)) for s in stores
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors


# ---------------------------------------------------------------------------
# Fault injection: never corrupt tensors
# ---------------------------------------------------------------------------


class TestRestoreFaults:
    def _chunk_store_on(self, inner):
        store = ChunkStore(inner, block_bytes=512)
        store.save_snapshot("j", snapshot_at(1))
        store.save_snapshot("j", snapshot_at(2))
        return store

    def test_flaky_error_mid_ranged_read_core(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = CheckpointStore(flaky)
        record = store.save_full(snapshot_at(1))
        # Fail the third read of the partial restore (header probes first).
        flaky.arm_read("error", fail_on_read=3)
        with pytest.raises(StorageError, match="injected read error"):
            store.load_partial(record.id, ["params", "statevector"])
        flaky.disarm()
        _, tensors = store.load_partial(record.id, ["params"])
        assert np.array_equal(tensors["params"], snapshot_at(1).params)

    def test_flaky_bitflip_mid_ranged_read_detected(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = CheckpointStore(flaky)
        record = store.save_full(snapshot_at(1))
        # Corrupt whichever payload range the planner fetches third; the
        # block CRC must catch it regardless of which tensor it hits.
        flaky.arm_read("bitflip", fail_on_read=3, flip_offset=5)
        with pytest.raises(IntegrityError):
            store.load_partial(record.id, ["params", "statevector"])

    def test_flaky_error_mid_chunk_fetch(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = self._chunk_store_on(flaky)
        plan = store.plan_restore("j")
        assert plan.n_blocks > 3
        flaky.arm_read("error", fail_on_read=4)
        with pytest.raises(ReproError):
            store.load_snapshot("j")
        flaky.disarm()
        assert store.load_snapshot("j") == snapshot_at(2)

    def test_flaky_bitflip_on_chunk_detected_by_address(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = self._chunk_store_on(flaky)
        flaky.arm_read("bitflip", fail_on_read=4, flip_offset=3)
        with pytest.raises(IntegrityError):
            store.load_snapshot("j")

    def test_truncated_manifest_raises_and_latest_valid_falls_back(self):
        backend = InMemoryBackend()
        store = self._chunk_store_on(backend)
        name = "job-j-ckpt-000002.json"
        backend.write(name, backend.read(name)[: 40])
        with pytest.raises(IntegrityError):
            store.load_snapshot("j", "ckpt-000002")
        ckpt_id, snapshot, skipped = store.latest_valid("j")
        assert ckpt_id == "ckpt-000001"
        assert snapshot == snapshot_at(1)
        assert [s[0] for s in skipped] == ["ckpt-000002"]

    def test_chunk_gcd_between_plan_and_fetch(self):
        backend = InMemoryBackend()
        store = self._chunk_store_on(backend)
        source = store.restore_source("j", "ckpt-000002")
        plan = source.plan()
        # A racing gc sweeps one planned chunk before the fetch.
        victim = plan.objects[0].name
        backend.delete(victim)
        with pytest.raises(IntegrityError, match="garbage-collected or lost"):
            RestoreExecutor().run(source, plan)

    def test_chunk_moved_tiers_between_plan_and_fetch(self):
        tier, store = tiered_chunk_store()
        store.save_snapshot("j", snapshot_at(4))
        source = store.restore_source("j")
        plan = source.plan()
        # Placement races: chunks demoted (and one promoted back) after the
        # plan was computed must not change restored bytes.
        for obj in plan.objects:
            tier.demote(obj.name)
        tier.promote(plan.objects[0].name)
        meta, tensors = RestoreExecutor().run(source, plan)
        assert TrainingSnapshot.from_payload(meta, tensors) == snapshot_at(4)

    def test_latest_valid_partial_skips_damaged_params_chunk(self):
        backend = InMemoryBackend()
        store = self._chunk_store_on(backend)
        plan = store.plan_restore("j", "ckpt-000002", names=["params"])
        for obj in plan.objects:
            backend.delete(obj.name)
        ckpt_id, tensors, skipped = store.latest_valid_partial(
            "j", WARM_START_TENSORS
        )
        assert ckpt_id == "ckpt-000001"
        assert np.array_equal(tensors["params"], snapshot_at(1).params)
        assert [s[0] for s in skipped] == ["ckpt-000002"]


# ---------------------------------------------------------------------------
# Warm starts through the pipeline
# ---------------------------------------------------------------------------


def tiny_trainer(seed=3):
    from repro.ml.dataset import make_moons
    from repro.ml.models import VariationalClassifier
    from repro.ml.optimizers import Adam
    from repro.ml.trainer import Trainer, TrainerConfig
    from repro.quantum.templates import hardware_efficient

    model = VariationalClassifier(hardware_efficient(3, 1))
    dataset = make_moons(32, np.random.default_rng(5))
    return Trainer(
        model,
        Adam(lr=0.05),
        dataset=dataset,
        config=TrainerConfig(batch_size=4, seed=seed),
    )


class TestWarmStart:
    def test_trainer_warm_start_params_only(self):
        donor = tiny_trainer()
        donor.run(2)
        fresh = tiny_trainer(seed=9)
        fresh.warm_start(donor.params)
        assert np.array_equal(fresh.params, donor.params)
        assert fresh.step_count == 0
        assert fresh.loss_history == []

    def test_trainer_warm_start_resets_run_counters(self):
        trainer = tiny_trainer()
        trainer.run(2)
        donor = tiny_trainer(seed=13)
        trainer.warm_start(donor.params)
        # A warm start is a new run even on a used trainer.
        assert trainer.step_count == 0
        assert trainer.loss_history == []
        assert trainer.wall_time == 0.0

    def test_trainer_warm_start_shape_mismatch(self):
        fresh = tiny_trainer()
        with pytest.raises(ConfigError, match="warm-start"):
            fresh.warm_start(np.zeros(3))

    def test_warm_start_trainer_from_core_store(self):
        trainer = tiny_trainer()
        store = CheckpointStore(InMemoryBackend())
        trainer.run(2)
        store.save_full(trainer.capture())
        fresh = tiny_trainer(seed=11)
        record = warm_start_trainer(fresh, store)
        assert record is not None
        assert np.array_equal(fresh.params, trainer.params)
        assert fresh.step_count == 0

    def test_recovery_latest_valid_tensors_falls_back(self):
        store = CheckpointStore(InMemoryBackend())
        trainer = tiny_trainer()
        trainer.run(1)
        good = store.save_full(trainer.capture())
        trainer.run(1)
        bad = store.save_full(trainer.capture())
        data = bytearray(store.backend.read(bad.object_name))
        data[len(data) - 10] ^= 0xFF  # corrupt the payload tail
        store.backend.write(bad.object_name, bytes(data))
        record, tensors, skipped = RecoveryManager(
            store
        ).latest_valid_tensors(["params"])
        assert record is not None
        assert [s[0] for s in skipped] in ([], [bad.id])
        assert tensors["params"].shape == trainer.params.shape

    def test_service_manager_resume_modes(self):
        store = ChunkStore(InMemoryBackend(), block_bytes=512)
        pool = WriterPool(workers=1)
        try:
            trainer = tiny_trainer()
            manager = ServiceCheckpointManager(
                store, "job0", pool.channel("job0")
            )
            trainer.run(2, hooks=[manager])
            exact = tiny_trainer(seed=21)
            assert manager.resume(exact, mode="exact") is not None
            assert exact.step_count == trainer.step_count
            warm = tiny_trainer(seed=22)
            assert manager.resume(warm, mode="warm-start") is not None
            assert np.array_equal(warm.params, trainer.params)
            assert warm.step_count == 0
            with pytest.raises(ConfigError):
                manager.resume(warm, mode="sideways")
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Fleet warm-start restore mode
# ---------------------------------------------------------------------------


class TestFleetWarmStart:
    def test_warm_start_reincarnation(self):
        from repro.faults.injector import PreemptionStorm
        from repro.service.fleet import FleetHarness, FleetJobSpec

        store = ChunkStore(InMemoryBackend(), block_bytes=512)
        pool = WriterPool(workers=2)
        spec = FleetJobSpec(
            job_id="warm0",
            trainer_factory=lambda: tiny_trainer(seed=31),
            target_steps=3,
            restore_mode="warm-start",
        )
        harness = FleetHarness(
            store, pool, [spec], events=[PreemptionStorm(at_tick=1)]
        )
        try:
            result = harness.run()
        finally:
            pool.close()
        job = result.jobs["warm0"]
        assert job.final_step == 3
        assert job.preemptions == 1
        assert job.restores == 1
        # Warm starts restart the step counter: recovered step is 0.
        assert job.resumed_from_steps == [0]

    def test_invalid_restore_mode_rejected(self):
        from repro.service.fleet import FleetJobSpec

        with pytest.raises(ConfigError, match="restore_mode"):
            FleetJobSpec(
                job_id="x",
                trainer_factory=tiny_trainer,
                target_steps=1,
                restore_mode="lukewarm",
            )
