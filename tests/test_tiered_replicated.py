"""Tests for the replicated and tiered storage backends."""

import numpy as np
import pytest

from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps
from repro.core.recovery import resume_trainer
from repro.core.store import CheckpointStore
from repro.errors import ConfigError, StorageError
from repro.ml.optimizers import Adam
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.observables import Hamiltonian
from repro.quantum.templates import hardware_efficient
from repro.ml.models import VQEModel
from repro.storage.flaky import FlakyBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.replicated import ReplicatedBackend
from repro.storage.tiered import TieredBackend


def make_replicated(n=3, **kwargs):
    replicas = [InMemoryBackend() for _ in range(n)]
    return ReplicatedBackend(replicas, **kwargs), replicas


# ---------------------------------------------------------------------------
# ReplicatedBackend
# ---------------------------------------------------------------------------


class TestReplicatedConstruction:
    def test_rejects_single_replica(self):
        with pytest.raises(ConfigError):
            ReplicatedBackend([InMemoryBackend()])

    def test_rejects_bad_quorum(self):
        replicas = [InMemoryBackend(), InMemoryBackend()]
        with pytest.raises(ConfigError):
            ReplicatedBackend(replicas, write_quorum=3)
        with pytest.raises(ConfigError):
            ReplicatedBackend(replicas, write_quorum=0)

    def test_rejects_bad_consistency(self):
        with pytest.raises(ConfigError):
            ReplicatedBackend(
                [InMemoryBackend(), InMemoryBackend()], consistency="eventual"
            )

    def test_default_quorum_is_majority(self):
        backend, _ = make_replicated(5)
        assert backend.write_quorum == 3


class TestReplicatedWrites:
    def test_write_mirrors_to_all(self):
        backend, replicas = make_replicated(3)
        backend.write("obj", b"payload")
        for replica in replicas:
            assert replica.read("obj") == b"payload"

    def test_write_survives_minority_failure(self):
        fast = InMemoryBackend()
        flaky = FlakyBackend(InMemoryBackend())
        backend = ReplicatedBackend([fast, flaky, InMemoryBackend()])
        flaky.arm("error")
        backend.write("obj", b"payload")
        assert backend.stats.degraded_writes == 1
        assert backend.stats.per_replica_write_failures == [0, 1, 0]
        assert backend.read("obj") == b"payload"

    def test_write_fails_below_quorum(self):
        flaky_a = FlakyBackend(InMemoryBackend())
        flaky_b = FlakyBackend(InMemoryBackend())
        backend = ReplicatedBackend([flaky_a, flaky_b, InMemoryBackend()])
        flaky_a.arm("error")
        flaky_b.arm("error")
        with pytest.raises(StorageError, match="quorum"):
            backend.write("obj", b"payload")
        assert backend.stats.failed_writes == 1


class TestReplicatedReads:
    def test_first_mode_reads_any_available(self):
        backend, replicas = make_replicated(3)
        backend.write("obj", b"payload")
        replicas[0].delete("obj")
        assert backend.read("obj") == b"payload"

    def test_missing_everywhere_raises(self):
        backend, _ = make_replicated(3)
        with pytest.raises(StorageError, match="not found"):
            backend.read("ghost")

    def test_quorum_read_returns_majority(self):
        backend, replicas = make_replicated(3, consistency="quorum")
        backend.write("obj", b"good")
        replicas[1].write("obj", b"rot!")
        assert backend.read("obj") == b"good"
        assert backend.stats.divergent_reads == 1

    def test_quorum_read_repairs_minority(self):
        backend, replicas = make_replicated(3, consistency="quorum")
        backend.write("obj", b"good")
        replicas[2].write("obj", b"rot!")
        backend.read("obj")
        assert replicas[2].read("obj") == b"good"
        assert backend.stats.repaired_objects == 1

    def test_quorum_read_without_repair_leaves_rot(self):
        backend, replicas = make_replicated(
            3, consistency="quorum", read_repair=False
        )
        backend.write("obj", b"good")
        replicas[2].write("obj", b"rot!")
        assert backend.read("obj") == b"good"
        assert replicas[2].read("obj") == b"rot!"

    def test_unresolvable_tie_raises(self):
        backend, replicas = make_replicated(2, consistency="quorum")
        backend.write("obj", b"aaaa")
        replicas[1].write("obj", b"bbbb")
        with pytest.raises(StorageError, match="divergent"):
            backend.read("obj")


class TestReplicatedNamespace:
    def test_exists_any(self):
        backend, replicas = make_replicated(3)
        replicas[2].write("solo", b"x")
        assert backend.exists("solo")
        assert not backend.exists("ghost")

    def test_list_is_union(self):
        backend, replicas = make_replicated(2)
        replicas[0].write("a", b"1")
        replicas[1].write("b", b"2")
        assert backend.list() == ["a", "b"]

    def test_delete_removes_everywhere(self):
        backend, replicas = make_replicated(3)
        backend.write("obj", b"payload")
        backend.delete("obj")
        assert not backend.exists("obj")

    def test_size_from_first_holder(self):
        backend, replicas = make_replicated(2)
        backend.write("obj", b"12345")
        assert backend.size("obj") == 5
        with pytest.raises(StorageError):
            backend.size("ghost")


class TestScrub:
    def test_scrub_fills_missing_copies(self):
        backend, replicas = make_replicated(3)
        backend.write("obj", b"payload")
        replicas[1].delete("obj")
        report = backend.scrub()
        assert report == {"obj": "replicated"}
        assert replicas[1].read("obj") == b"payload"

    def test_scrub_repairs_divergence(self):
        backend, replicas = make_replicated(3)
        backend.write("obj", b"good")
        replicas[0].write("obj", b"rot!")
        report = backend.scrub()
        assert report == {"obj": "repaired"}
        assert replicas[0].read("obj") == b"good"

    def test_scrub_reports_conflicts(self):
        backend, replicas = make_replicated(2)
        replicas[0].write("obj", b"aaaa")
        replicas[1].write("obj", b"bbbb")
        assert backend.scrub() == {"obj": "conflict"}

    def test_scrub_clean_store_is_empty_report(self):
        backend, _ = make_replicated(3)
        backend.write("obj", b"payload")
        assert backend.scrub() == {}

    def test_validator_breaks_tie(self):
        backend, replicas = make_replicated(2)
        replicas[0].write("obj", b"good")
        replicas[1].write("obj", b"rot!")
        report = backend.scrub(lambda name, data: data == b"good")
        assert report == {"obj": "validated"}
        assert replicas[1].read("obj") == b"good"

    def test_validator_rejecting_everything_keeps_conflict(self):
        backend, replicas = make_replicated(2)
        replicas[0].write("obj", b"aaaa")
        replicas[1].write("obj", b"bbbb")
        assert backend.scrub(lambda name, data: False) == {"obj": "conflict"}

    def test_validator_accepting_both_keeps_conflict(self):
        backend, replicas = make_replicated(2)
        replicas[0].write("obj", b"aaaa")
        replicas[1].write("obj", b"bbbb")
        assert backend.scrub(lambda name, data: True) == {"obj": "conflict"}

    def test_store_object_validator_identifies_intact_copy(self):
        backend, replicas = make_replicated(2)
        store = CheckpointStore(backend)
        model = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
        )
        trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=4))
        manager = CheckpointManager(store, EveryKSteps(1))
        trainer.run(1, hooks=[manager])
        manager.close()

        name = store.latest().object_name
        rotten = bytearray(replicas[1].read(name))
        rotten[len(rotten) // 2] ^= 0xFF
        replicas[1].write(name, bytes(rotten))

        validator = store.object_validator()
        assert validator(name, replicas[0].read(name))
        assert not validator(name, bytes(rotten))
        assert not validator("unknown-object", b"anything")
        assert validator("MANIFEST.json", replicas[0].read("MANIFEST.json"))
        assert not validator("MANIFEST.json", b"\xff not json")

        report = backend.scrub(validator)
        assert report[name] == "validated"
        assert replicas[1].read(name) == replicas[0].read(name)


class TestReplicatedCheckpointing:
    def test_store_survives_one_dead_replica(self):
        backend, replicas = make_replicated(3)
        store = CheckpointStore(backend)
        model = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
        )
        config = TrainerConfig(seed=4)
        trainer = Trainer(model, Adam(lr=0.1), config=config)
        manager = CheckpointManager(store, EveryKSteps(2))
        trainer.run(4, hooks=[manager])
        manager.close()
        trainer.run(2)

        # Lose an entire replica, then resume through a fresh store handle.
        replicas[0]._objects.clear()  # simulate total replica loss
        resumed = Trainer(model, Adam(lr=0.1), config=config)
        fresh = CheckpointStore(backend)
        record = resume_trainer(resumed, fresh)
        assert record is not None and record.step == 4
        resumed.run(2)
        np.testing.assert_array_equal(resumed.params, trainer.params)


# ---------------------------------------------------------------------------
# TieredBackend
# ---------------------------------------------------------------------------


class TestTieredConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            TieredBackend(InMemoryBackend(), InMemoryBackend(), 0)

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigError):
            TieredBackend(
                InMemoryBackend(), InMemoryBackend(), 100, policy="write-around"
            )

    def test_adopts_existing_fast_objects(self):
        fast = InMemoryBackend()
        fast.write("warm", b"xyz")
        tiered = TieredBackend(fast, InMemoryBackend(), 100)
        assert tiered.fast_bytes_used() == 3
        tiered.read("warm")
        assert tiered.stats.fast_hits == 1


class TestWriteThrough:
    def test_write_lands_in_both_tiers(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100)
        tiered.write("obj", b"data")
        assert fast.read("obj") == b"data"
        assert slow.read("obj") == b"data"
        assert tiered.dirty_objects() == []

    def test_read_hits_fast_tier(self):
        tiered = TieredBackend(InMemoryBackend(), InMemoryBackend(), 100)
        tiered.write("obj", b"data")
        tiered.read("obj")
        assert tiered.stats.fast_hits == 1
        assert tiered.stats.fast_misses == 0

    def test_eviction_is_lru(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 10)
        tiered.write("a", b"aaaa")  # 4 bytes
        tiered.write("b", b"bbbb")  # 8 bytes total
        tiered.read("a")  # refresh a; b is now LRU
        tiered.write("c", b"cccc")  # needs eviction: b goes
        assert not fast.exists("b")
        assert fast.exists("a") and fast.exists("c")
        assert tiered.stats.evictions == 1
        assert slow.exists("b")  # write-through kept it durable

    def test_miss_promotes_from_slow(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100)
        slow.write("cold", b"brrr")
        assert tiered.read("cold") == b"brrr"
        assert tiered.stats.fast_misses == 1
        assert tiered.stats.promotions == 1
        assert fast.read("cold") == b"brrr"

    def test_oversized_object_is_served_without_promotion(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 4)
        slow.write("big", b"0123456789")
        assert tiered.read("big") == b"0123456789"
        assert tiered.stats.promotions == 0
        assert not fast.exists("big")

    def test_oversized_write_raises(self):
        tiered = TieredBackend(InMemoryBackend(), InMemoryBackend(), 4)
        with pytest.raises(StorageError, match="capacity"):
            tiered.write("big", b"0123456789")

    def test_replace_reuses_residency(self):
        tiered = TieredBackend(InMemoryBackend(), InMemoryBackend(), 10)
        tiered.write("obj", b"0123456789")
        tiered.write("obj", b"01234")
        assert tiered.fast_bytes_used() == 5
        assert tiered.stats.evictions == 0


class TestWriteBack:
    def test_write_defers_slow_tier(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100, policy="write-back")
        tiered.write("obj", b"data")
        assert fast.read("obj") == b"data"
        assert not slow.exists("obj")
        assert tiered.dirty_objects() == ["obj"]

    def test_flush_pushes_dirty_objects(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100, policy="write-back")
        tiered.write("a", b"1")
        tiered.write("b", b"2")
        assert tiered.flush() == ["a", "b"]
        assert slow.read("a") == b"1" and slow.read("b") == b"2"
        assert tiered.dirty_objects() == []
        assert tiered.stats.flushes == 2

    def test_eviction_flushes_dirty_victim(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 8, policy="write-back")
        tiered.write("a", b"aaaa")
        tiered.write("b", b"bbbb")
        tiered.write("c", b"cccc")  # evicts a, which is dirty
        assert slow.read("a") == b"aaaa"
        assert tiered.stats.evictions == 1
        assert "a" not in tiered.dirty_objects()

    def test_close_flushes(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100, policy="write-back")
        tiered.write("obj", b"data")
        tiered.close()
        assert slow.read("obj") == b"data"

    def test_delete_clears_dirty_state(self):
        tiered = TieredBackend(
            InMemoryBackend(), InMemoryBackend(), 100, policy="write-back"
        )
        tiered.write("obj", b"data")
        tiered.delete("obj")
        assert tiered.dirty_objects() == []
        assert not tiered.exists("obj")


class TestTieredNamespace:
    def test_list_is_union_of_tiers(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100, policy="write-back")
        tiered.write("hot", b"1")
        slow.write("cold", b"2")
        assert tiered.list() == ["cold", "hot"]
        assert tiered.list("h") == ["hot"]

    def test_size_prefers_fast_metadata(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100)
        tiered.write("obj", b"12345")
        assert tiered.size("obj") == 5
        slow.write("cold", b"123")
        assert tiered.size("cold") == 3

    def test_exists_checks_both(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 100, policy="write-back")
        tiered.write("hot", b"1")
        slow.write("cold", b"2")
        assert tiered.exists("hot") and tiered.exists("cold")
        assert not tiered.exists("ghost")


class TestTieredCheckpointing:
    def test_checkpoint_roundtrip_through_tiers(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 1 << 20)
        store = CheckpointStore(tiered)
        model = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
        )
        config = TrainerConfig(seed=4)
        trainer = Trainer(model, Adam(lr=0.1), config=config)
        manager = CheckpointManager(store, EveryKSteps(2))
        trainer.run(4, hooks=[manager])
        manager.close()

        # Losing the entire fast tier must not lose checkpoints.
        fast._objects.clear()
        fresh = CheckpointStore(TieredBackend(InMemoryBackend(), slow, 1 << 20))
        snapshot = fresh.load(fresh.latest().id)
        assert snapshot.step == 4


class TestTieredWriteFailureConsistency:
    def test_failed_eviction_flush_preserves_bookkeeping(self):
        """A slow-tier failure during evict-flush must not orphan fast objects."""
        from repro.storage.flaky import FlakyBackend

        fast = InMemoryBackend()
        slow = FlakyBackend(InMemoryBackend())
        tiered = TieredBackend(fast, slow, 8, policy="write-back")
        tiered.write("a", b"aaaa")
        tiered.write("b", b"bbbb")
        slow.arm("error")  # next flush (triggered by eviction of dirty 'a') fails
        with pytest.raises(StorageError):
            tiered.write("c", b"cccc")
        # 'a' and 'b' still tracked and readable; no orphan bookkeeping.
        assert tiered.read("a") == b"aaaa"
        assert tiered.read("b") == b"bbbb"
        assert sorted(tiered.dirty_objects()) == ["a", "b"]
        assert tiered.fast_bytes_used() == 8
        # Once the slow tier recovers, the same write succeeds.
        tiered.write("c", b"cccc")
        assert tiered.read("c") == b"cccc"

    def test_replacement_write_failure_restores_residency(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 8)
        tiered.write("a", b"aaaa")
        with pytest.raises(StorageError, match="capacity"):
            tiered.write("a", b"0123456789")  # oversized replacement
        assert tiered.read("a") == b"aaaa"
        assert tiered.fast_bytes_used() == 4


class _OpLogBackend(InMemoryBackend):
    """In-memory backend recording (tier, op, name) for ordering assertions.

    Pass a shared ``log`` list to two instances to get one global timeline
    across tiers.
    """

    def __init__(self, tier="", log=None):
        super().__init__()
        self.tier = tier
        self.log = [] if log is None else log

    def write(self, name, data):
        self.log.append((self.tier, "write", name))
        super().write(name, data)

    def delete(self, name):
        self.log.append((self.tier, "delete", name))
        super().delete(name)


class TestWriteBackDurabilityWindow:
    """The write-back durability window Tab. 4's interval analysis prices."""

    def _train_write_back(self, steps, fast_capacity=1 << 20):
        fast, slow = _OpLogBackend(), _OpLogBackend()
        tiered = TieredBackend(fast, slow, fast_capacity, policy="write-back")
        store = CheckpointStore(tiered)
        model = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
        )
        trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=4))
        manager = CheckpointManager(store, EveryKSteps(1))
        trainer.run(steps, hooks=[manager])
        manager.close()
        return tiered, fast, slow

    def test_crash_before_flush_loses_dirty_window(self):
        """Unflushed write-back checkpoints die with the fast tier."""
        tiered, fast, slow = self._train_write_back(3)
        dirty = tiered.dirty_objects()
        assert dirty  # every object is still fast-tier-only
        assert slow.write_count == 0
        # Simulated crash: the fast tier (node-local SSD) is gone, no flush.
        survivor = CheckpointStore(
            TieredBackend(InMemoryBackend(), slow, 1 << 20)
        )
        assert survivor.records() == []  # the whole window was lost

    def test_flush_closes_the_durability_window(self):
        tiered, fast, slow = self._train_write_back(3)
        flushed = tiered.flush()
        assert sorted(flushed) == sorted(set(flushed))
        assert tiered.dirty_objects() == []
        survivor = CheckpointStore(
            TieredBackend(InMemoryBackend(), slow, 1 << 20)
        )
        assert survivor.latest().step == 3
        snapshot = survivor.load(survivor.latest().id)
        assert snapshot.step == 3

    def test_partial_flush_crash_recovers_to_flushed_prefix(self):
        """Crash after an early flush: recovery lands on the flushed state."""
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 1 << 20, policy="write-back")
        store = CheckpointStore(tiered)
        model = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
        )
        trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=4))
        manager = CheckpointManager(store, EveryKSteps(1))
        trainer.run(2, hooks=[manager])
        tiered.flush()  # durability point at step 2
        trainer.run(2, hooks=[manager])
        manager.close()
        assert tiered.dirty_objects()  # steps 3-4 still in the window
        survivor = CheckpointStore(
            TieredBackend(InMemoryBackend(), slow, 1 << 20)
        )
        # Manifest and objects are consistent at the flushed prefix.
        assert survivor.latest().step == 2
        fresh_model = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
        )
        fresh = Trainer(fresh_model, Adam(lr=0.1), config=TrainerConfig(seed=4))
        record = resume_trainer(fresh, survivor)
        assert record is not None and fresh.step_count == 2

    def test_eviction_flushes_dirty_victim_before_delete(self):
        """Under byte pressure the dirty LRU victim is flushed, then evicted."""
        shared_log = []
        fast = _OpLogBackend("fast", shared_log)
        slow = _OpLogBackend("slow", shared_log)
        tiered = TieredBackend(fast, slow, 8, policy="write-back")
        tiered.write("a", b"aaaa")
        tiered.write("b", b"bbbb")
        assert shared_log == [("fast", "write", "a"), ("fast", "write", "b")]
        shared_log.clear()
        tiered.write("c", b"cccc")  # evicts 'a' (LRU)
        # One timeline: 'a' reaches the slow tier strictly before it leaves
        # the fast tier — the victim is never in a "neither tier" state.
        assert shared_log == [
            ("slow", "write", "a"),
            ("fast", "delete", "a"),
            ("fast", "write", "c"),
        ]
        assert tiered.dirty_objects() == ["b", "c"]  # victim is clean in slow
        assert tiered.read("a") == b"aaaa"  # served from (and promoted off) slow

    def test_eviction_order_under_sustained_pressure_is_lru(self):
        fast, slow = _OpLogBackend(), _OpLogBackend()
        tiered = TieredBackend(fast, slow, 8, policy="write-back")
        for name in ("a", "b", "c", "d", "e"):
            tiered.write(name, b"xxxx")
        # a, b, c flushed+evicted in LRU order; d, e still dirty-resident.
        assert [name for _, op, name in slow.log if op == "write"] == ["a", "b", "c"]
        assert tiered.dirty_objects() == ["d", "e"]
        assert tiered.fast_bytes_used() == 8
