"""Model-based (stateful hypothesis) tests for backend decorators.

The decorators — tiered, replicated, simulated-remote — must be
*observationally equivalent* to a plain backend: any sequence of
write/read/delete/list operations yields the same results as against a dict.
Hypothesis drives randomized operation sequences against both and compares.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import StorageError
from repro.storage.memory import InMemoryBackend
from repro.storage.replicated import ReplicatedBackend
from repro.storage.simulated import SimulatedRemoteBackend, TransferCostModel
from repro.storage.tiered import TieredBackend

_NAMES = st.sampled_from([f"obj-{i}" for i in range(6)])
_PAYLOADS = st.binary(min_size=0, max_size=64)

_MACHINE_SETTINGS = settings(
    max_examples=30,
    stateful_step_count=30,
    deadline=None,
)


class _BackendEquivalence(RuleBasedStateMachine):
    """Drives a backend-under-test against a dict model."""

    def __init__(self):
        super().__init__()
        self.model = {}
        self.backend = self.make_backend()

    def make_backend(self):  # pragma: no cover - overridden
        raise NotImplementedError

    @rule(name=_NAMES, data=_PAYLOADS)
    def write(self, name, data):
        self.backend.write(name, data)
        self.model[name] = data

    @rule(name=_NAMES)
    def read(self, name):
        if name in self.model:
            assert self.backend.read(name) == self.model[name]
        else:
            with pytest.raises(StorageError):
                self.backend.read(name)

    @rule(name=_NAMES, start=st.integers(0, 70), length=st.integers(0, 70))
    def read_range(self, name, start, length):
        if name in self.model:
            expected = self.model[name][start : start + length]
            assert self.backend.read_range(name, start, length) == expected

    @rule(name=_NAMES)
    def delete(self, name):
        self.backend.delete(name)
        self.model.pop(name, None)

    @rule(name=_NAMES)
    def exists(self, name):
        assert self.backend.exists(name) == (name in self.model)

    @rule(name=_NAMES)
    def size(self, name):
        if name in self.model:
            assert self.backend.size(name) == len(self.model[name])

    @invariant()
    def listing_matches(self):
        assert self.backend.list() == sorted(self.model)


class TieredWriteThroughMachine(_BackendEquivalence):
    def make_backend(self):
        return TieredBackend(InMemoryBackend(), InMemoryBackend(), 96)


class TieredWriteBackMachine(_BackendEquivalence):
    def make_backend(self):
        return TieredBackend(
            InMemoryBackend(), InMemoryBackend(), 96, policy="write-back"
        )


class ReplicatedMachine(_BackendEquivalence):
    def make_backend(self):
        return ReplicatedBackend([InMemoryBackend() for _ in range(3)])


class ReplicatedQuorumMachine(_BackendEquivalence):
    def make_backend(self):
        return ReplicatedBackend(
            [InMemoryBackend() for _ in range(3)], consistency="quorum"
        )


class SimulatedRemoteMachine(_BackendEquivalence):
    def make_backend(self):
        return SimulatedRemoteBackend(
            TransferCostModel(bandwidth_bytes_per_s=1e6, rtt_seconds=1e-3)
        )


for _machine in (
    TieredWriteThroughMachine,
    TieredWriteBackMachine,
    ReplicatedMachine,
    ReplicatedQuorumMachine,
    SimulatedRemoteMachine,
):
    _machine.TestCase.settings = _MACHINE_SETTINGS

TestTieredWriteThrough = TieredWriteThroughMachine.TestCase
TestTieredWriteBack = TieredWriteBackMachine.TestCase
TestReplicated = ReplicatedMachine.TestCase
TestReplicatedQuorum = ReplicatedQuorumMachine.TestCase
TestSimulatedRemote = SimulatedRemoteMachine.TestCase


class TestTieredDurabilityAfterFastLoss:
    """Write-through tiering must survive total fast-tier loss at any point."""

    def test_slow_tier_complete_after_sequence(self):
        fast, slow = InMemoryBackend(), InMemoryBackend()
        tiered = TieredBackend(fast, slow, 64)
        rng = np.random.default_rng(5)
        model = {}
        for i in range(50):
            name = f"obj-{int(rng.integers(0, 6))}"
            action = int(rng.integers(0, 3))
            if action == 0:
                data = bytes(rng.integers(0, 256, size=int(rng.integers(0, 48)), dtype=np.uint8))
                tiered.write(name, data)
                model[name] = data
            elif action == 1:
                tiered.delete(name)
                model.pop(name, None)
            else:
                if name in model:
                    assert tiered.read(name) == model[name]
        # Wipe the fast tier entirely; everything must still be in slow.
        fast._objects.clear()
        rebuilt = TieredBackend(InMemoryBackend(), slow, 64)
        for name, data in model.items():
            assert rebuilt.read(name) == data
