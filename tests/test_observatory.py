"""Performance observatory: timeseries history, profiler, health engine.

Covers the three `repro.obs` observatory modules plus the satellite
regressions that ride with them: SQLite sample history with metadb-style
discard-and-rebuild and bounded retention; the epoch-aware rate
discipline (a two-incarnation restart must never produce a negative or
restart-spanning rate anywhere — timeseries queries, sparklines, health
rules, or the daemon `series` op); span-tree profiling with stage
attribution and critical-path extraction; the declarative health rule
engine; Prometheus text exposition; the JSONL rotation/torn-line
hardening; and the FileTransport idle-poll elision.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time

import pytest

from repro.cli import _sparkline, main
from repro.errors import ConfigError, StorageError
from repro.obs import profile as obs_profile
from repro.obs.export import (
    BoundedJsonlWriter,
    ObsDir,
    TRACE_FILENAME,
    prometheus_text,
    read_jsonl_records,
    store_obs_dir,
)
from repro.obs.health import (
    DEFAULT_RULES,
    HealthEngine,
    HealthRule,
    rules_from_records,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DB_FILENAME,
    SCHEMA_VERSION,
    Sample,
    TimeSeriesDB,
    TimeSeriesSampler,
    group_by_labels,
    rate_from_samples,
)
from repro.service import (
    ChunkStore,
    DaemonClient,
    DaemonConfig,
    DaemonUnavailable,
    FleetDaemon,
    WriterPool,
)
from repro.service.transport import FileTransport, REQUEST_PREFIX
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend


def _counter_snapshot(value, epoch=1, name="reliability.retries"):
    """Minimal registry-snapshot dict with one counter series."""
    return {
        "version": 1,
        "epoch": epoch,
        "series": [
            {
                "name": name,
                "type": "counter",
                "labels": {},
                "value": float(value),
                "epoch": epoch,
            }
        ],
    }


def _sample(ts, epoch, value, name="reliability.retries"):
    return Sample(
        ts=float(ts), epoch=int(epoch), name=name, labels={}, kind="counter",
        value=float(value),
    )


# ---------------------------------------------------------------------------
# TimeSeriesDB: schema discipline, retention, queries
# ---------------------------------------------------------------------------


class TestTimeSeriesDB:
    def test_roundtrip_counter_and_histogram(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.counter("saves").inc(3)
        registry.histogram("save.seconds").observe(0.25)
        db = TimeSeriesDB(tmp_path / DB_FILENAME, prune_interval_seconds=0)
        try:
            written = db.record_snapshot(registry.snapshot(), ts=100.0)
            assert written == 2
            counter = db.query("saves")
            assert len(counter) == 1
            assert counter[0].cumulative == 3.0
            assert counter[0].epoch == 1
            hist = db.latest("save.seconds")
            assert hist.kind == "histogram"
            assert hist.count == 1
            assert hist.cumulative == 1.0  # histograms rate over count
            # counts carries the +Inf overflow bucket
            assert len(hist.counts) == len(hist.buckets) + 1
            assert db.series_names() == ["save.seconds", "saves"]
        finally:
            db.close()

    def test_corrupt_file_is_discarded_and_rebuilt(self, tmp_path):
        path = tmp_path / DB_FILENAME
        path.write_bytes(b"this is not a sqlite database at all" * 100)
        db = TimeSeriesDB(path, prune_interval_seconds=0)
        try:
            assert db.discarded_previous
            assert db.metrics.counter("timeseries.rebuilds").value == 1
            db.record_snapshot(_counter_snapshot(1), ts=1.0)
            assert len(db.query("reliability.retries")) == 1
        finally:
            db.close()

    def test_schema_version_mismatch_discards_history(self, tmp_path):
        path = tmp_path / DB_FILENAME
        db = TimeSeriesDB(path, prune_interval_seconds=0)
        db.record_snapshot(_counter_snapshot(5), ts=1.0)
        db.close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        reopened = TimeSeriesDB(path, prune_interval_seconds=0)
        try:
            assert reopened.discarded_previous
            assert reopened.query("reliability.retries") == []
        finally:
            reopened.close()

    def test_clean_reopen_keeps_history(self, tmp_path):
        path = tmp_path / DB_FILENAME
        db = TimeSeriesDB(path, prune_interval_seconds=0)
        db.record_snapshot(_counter_snapshot(5), ts=1.0)
        db.close()
        reopened = TimeSeriesDB(path, prune_interval_seconds=0)
        try:
            assert not reopened.discarded_previous
            assert len(reopened.query("reliability.retries")) == 1
        finally:
            reopened.close()

    def test_retention_window_prunes_old_rows(self):
        db = TimeSeriesDB(
            retention_seconds=100.0, prune_interval_seconds=0
        )
        try:
            db.record_snapshot(_counter_snapshot(1), ts=10.0)
            db.record_snapshot(_counter_snapshot(2), ts=50.0)
            db.record_snapshot(_counter_snapshot(3), ts=200.0)
            samples = db.query("reliability.retries")
            assert [s.ts for s in samples] == [200.0]
        finally:
            db.close()

    def test_row_cap_prunes_oldest_first(self):
        db = TimeSeriesDB(max_rows=3, prune_interval_seconds=0)
        try:
            for i in range(6):
                db.record_snapshot(_counter_snapshot(i), ts=float(i))
            samples = db.query("reliability.retries")
            assert [s.ts for s in samples] == [3.0, 4.0, 5.0]
        finally:
            db.close()

    def test_pruning_is_amortized_between_intervals(self):
        db = TimeSeriesDB(
            retention_seconds=1.0, prune_interval_seconds=60.0
        )
        try:
            db.record_snapshot(_counter_snapshot(0), ts=0.0)  # first: prunes
            for i in range(1, 5):
                db.record_snapshot(_counter_snapshot(i), ts=float(i))
            # Rows older than the 1s retention are still there — no prune
            # ran inside the 60s amortization window...
            assert len(db.query("reliability.retries")) == 5
            db.record_snapshot(_counter_snapshot(9), ts=61.0)
            # ...but the next insert past the interval sweeps them.
            assert [s.ts for s in db.query("reliability.retries")] == [61.0]
        finally:
            db.close()

    def test_row_cap_still_enforced_between_intervals(self):
        db = TimeSeriesDB(max_rows=4, prune_interval_seconds=60.0)
        try:
            for i in range(10):
                db.record_snapshot(_counter_snapshot(i), ts=float(i))
            assert len(db.query("reliability.retries")) <= 4
        finally:
            db.close()

    def test_query_filters_and_limit(self):
        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            for i in range(5):
                db.record_snapshot(_counter_snapshot(i), ts=float(i))
            assert [s.ts for s in db.query(
                "reliability.retries", since=2.0, until=3.0
            )] == [2.0, 3.0]
            # limit keeps the newest rows, returned oldest-first
            assert [s.ts for s in db.query(
                "reliability.retries", limit=2
            )] == [3.0, 4.0]
            assert db.latest_ts() == 4.0
        finally:
            db.close()

    def test_closed_db_raises_storage_error(self):
        db = TimeSeriesDB(prune_interval_seconds=0)
        db.close()
        with pytest.raises(StorageError):
            db.record_snapshot(_counter_snapshot(1), ts=1.0)
        with pytest.raises(StorageError):
            db.query("anything")


# ---------------------------------------------------------------------------
# Epoch-aware rate math (satellite: restart must never fake a rate)
# ---------------------------------------------------------------------------


class TestEpochAwareRates:
    def test_two_incarnation_restart_never_negative(self):
        """A counter that was at 100 before a restart and 2 after must
        never contribute a negative (or any) restart-spanning delta."""
        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            db.record_snapshot(_counter_snapshot(0, epoch=1), ts=0.0)
            db.record_snapshot(_counter_snapshot(100, epoch=1), ts=10.0)
            # restart: epoch bumps, cumulative resets far below 100
            db.record_snapshot(_counter_snapshot(2, epoch=2), ts=20.0)
            db.record_snapshot(_counter_snapshot(4, epoch=2), ts=30.0)
            rate = db.windowed_rate(
                "reliability.retries", window_seconds=1000.0, now=30.0
            )
            # epoch 1 contributes 100/10s, epoch 2 contributes 2/10s; the
            # 100 -> 2 crossing contributes nothing.
            assert rate == pytest.approx((100.0 + 2.0) / 20.0)
            assert rate >= 0
        finally:
            db.close()

    def test_restart_spanning_pair_alone_yields_none(self):
        samples = [_sample(0.0, 1, 100.0), _sample(10.0, 2, 2.0)]
        assert rate_from_samples(samples) is None

    def test_negative_within_epoch_delta_is_distrusted(self):
        samples = [
            _sample(0.0, 1, 10.0),
            _sample(5.0, 1, 4.0),  # counter went backwards: skip
            _sample(10.0, 1, 9.0),
        ]
        assert rate_from_samples(samples) == pytest.approx(5.0 / 5.0)

    def test_single_sample_yields_none(self):
        assert rate_from_samples([_sample(0.0, 1, 5.0)]) is None
        assert rate_from_samples([]) is None

    def test_windowed_quantile_ignores_prior_epoch(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("save.seconds")
        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            for _ in range(50):
                hist.observe(30.0)  # slow epoch-1 saves
            snap = registry.snapshot()
            snap["epoch"] = 1
            for record in snap["series"]:
                record["epoch"] = 1
            db.record_snapshot(snap, ts=0.0)

            fresh = MetricsRegistry(enabled=True)
            fast = fresh.histogram("save.seconds")
            for _ in range(50):
                fast.observe(0.01)  # fast epoch-2 saves
            snap2 = fresh.snapshot()
            snap2["epoch"] = 2
            for record in snap2["series"]:
                record["epoch"] = 2
            db.record_snapshot(snap2, ts=10.0)

            p99 = db.windowed_quantile(
                "save.seconds", 0.99, window_seconds=1000.0, now=10.0
            )
            assert p99 is not None
            assert p99 < 1.0  # epoch-2 distribution, not the slow one
        finally:
            db.close()

    def test_health_rate_rule_passes_on_restart_spanning_data(self):
        rule = HealthRule(
            name="retry-storm",
            kind="rate",
            series="reliability.retries",
            op=">",
            value=0.1,
            window_seconds=1000.0,
            severity="critical",
        )
        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            db.record_snapshot(_counter_snapshot(500, epoch=1), ts=0.0)
            db.record_snapshot(_counter_snapshot(0, epoch=2), ts=10.0)
            report = HealthEngine([rule]).evaluate(
                _counter_snapshot(0, epoch=2), db, now=10.0,
            )
            finding = report.findings[0]
            assert not finding.firing
            assert finding.reason == "no rate data in window"
            assert report.verdict == "ok"
        finally:
            db.close()

    def test_sparkline_renders_restart_gap_as_dot(self):
        # points are [ts, epoch, cumulative] triples (the `series` op wire
        # shape); the epoch-2 reset must render as a gap, not a plunge.
        points = [
            [0.0, 1, 0.0],
            [1.0, 1, 8.0],
            [2.0, 2, 1.0],
            [3.0, 2, 5.0],
        ]
        line = _sparkline(points)
        assert len(line) == 3
        assert line[1] == "·"  # the restart-spanning gap
        assert line[0] != "·" and line[2] != "·"
        assert _sparkline([]) == ""
        assert _sparkline([[0.0, 1, 1.0]]) == ""


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------


class TestTimeSeriesSampler:
    def test_maybe_sample_respects_cadence(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc()
        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            sampler = TimeSeriesSampler(db, registry, interval_seconds=10.0)
            assert sampler.maybe_sample(now=0.0)
            assert not sampler.maybe_sample(now=5.0)
            assert sampler.maybe_sample(now=10.0)
            assert sampler.samples_taken == 2
            assert len(db.query("c")) == 2
        finally:
            db.close()

    def test_sampler_swallows_storage_errors(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc()
        db = TimeSeriesDB(prune_interval_seconds=0)
        db.close()  # every record_snapshot now raises StorageError
        sampler = TimeSeriesSampler(db, registry, interval_seconds=0.0)
        assert sampler.sample(now=1.0) is False
        assert sampler.errors == 1
        assert sampler.samples_taken == 0


# ---------------------------------------------------------------------------
# Span profiler
# ---------------------------------------------------------------------------


def _span(name, trace, span_id, parent=None, start=0.0, dur_ms=10.0,
          attrs=None, status="ok"):
    return {
        "kind": "span",
        "name": name,
        "trace": trace,
        "span": span_id,
        "parent": parent,
        "start": start,
        "duration_ms": dur_ms,
        "status": status,
        "attrs": attrs or {},
    }


def _save_trace(trace="t1", start=100.0, dur_ms=100.0):
    """A realistic store.save span tree with stage attribution."""
    return [
        _span(
            "store.save", trace, "s1", start=start, dur_ms=dur_ms,
            attrs={
                "stages": {
                    "serialize": 0.010,
                    "hash": 0.020,
                    "encode": 0.005,
                    "write": 0.050,
                    "manifest": 0.005,
                },
                "bytes": 4 << 20,
                "blocks": 4,
            },
        ),
        _span("pool.task", trace, "s2", parent="s1", start=start + 0.001,
              dur_ms=5.0),
    ]


class TestProfile:
    def test_build_trees_parents_and_expands_stages(self):
        trees = obs_profile.build_trees(_save_trace())
        assert set(trees) == {"t1"}
        (root,) = trees["t1"]
        assert root.name == "store.save"
        names = {c.name for c in root.children}
        assert "pool.task" in names
        assert obs_profile.STAGE_PREFIX + "write" in names
        write = next(
            c for c in root.children if c.name == "stage:write"
        )
        assert write.synthetic
        assert write.duration_ms == pytest.approx(50.0)
        # self time = wall minus all children (real + synthetic)
        assert root.child_ms == pytest.approx(95.0)
        assert root.self_ms == pytest.approx(5.0)

    def test_self_ms_never_negative(self):
        records = [
            _span("outer", "t", "a", dur_ms=10.0),
            _span("inner", "t", "b", parent="a", dur_ms=25.0),  # clock skew
        ]
        (root,) = obs_profile.build_trees(records)["t"]
        assert root.self_ms == 0.0

    def test_orphan_span_becomes_root(self):
        records = [_span("child", "t", "b", parent="rotated-away")]
        roots = obs_profile.build_trees(records)["t"]
        assert [r.name for r in roots] == ["child"]

    def test_critical_path_descends_heaviest_child(self):
        trees = obs_profile.build_trees(_save_trace())
        (root,) = trees["t1"]
        path = obs_profile.critical_path(root)
        assert [n.name for n in path] == ["store.save", "stage:write"]

    def test_stage_coverage_meets_attribution_floor(self):
        (root,) = obs_profile.build_trees(_save_trace())["t1"]
        coverage = obs_profile.stage_coverage(root)
        # 90ms of stages + 5ms pool task over 100ms wall
        assert coverage == pytest.approx(0.95)
        leaf = obs_profile.critical_path(root)[-1]
        assert obs_profile.stage_coverage(leaf) == 0.0  # no children
        zero = obs_profile.ProfileNode(
            name="z", span_id="z", trace_id="t", parent_id=None,
            start=0.0, duration_ms=0.0,
        )
        assert obs_profile.stage_coverage(zero) is None

    def test_aggregate_counts_and_throughput(self):
        records = _save_trace("t1") + _save_trace("t2", start=300.0)
        aggs = obs_profile.aggregate(obs_profile.build_trees(records))
        save = next(a for a in aggs if a.name == "store.save")
        assert save.count == 2
        assert save.total_ms == pytest.approx(200.0)
        assert save.bytes == 8 << 20
        # 8 MiB over 200ms = 40 MiB/s
        assert save.throughput_mb_s == pytest.approx(40.0)

    def test_newest_trace_and_find_span(self):
        records = _save_trace("old", start=100.0) + _save_trace(
            "new", start=500.0
        )
        trees = obs_profile.build_trees(records)
        assert obs_profile.newest_trace(trees, containing="store.save") == "new"
        assert obs_profile.newest_trace(trees, containing="nope") is None
        node = obs_profile.find_span(trees["new"], "stage:hash")
        assert node is not None and node.duration_ms == pytest.approx(20.0)

    def test_folded_stacks_merge_self_time(self):
        records = _save_trace("t1") + _save_trace("t2", start=300.0)
        folded = obs_profile.folded_stacks(obs_profile.build_trees(records))
        by_stack = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in folded
        )
        # two traces' stage:write self time merged: 2 * 50ms in µs
        assert by_stack["store.save;stage:write"] == 100_000
        assert by_stack["store.save"] == 10_000  # 2 * 5ms self
        assert folded == sorted(folded)

    def test_load_trees_tolerates_torn_trailing_line(self, tmp_path):
        trace_path = tmp_path / TRACE_FILENAME
        with trace_path.open("w", encoding="utf-8") as handle:
            for record in _save_trace():
                handle.write(json.dumps(record) + "\n")
            handle.write('{"kind": "span", "name": "torn')  # crash mid-append
        trees = obs_profile.load_trees(trace_path)
        assert set(trees) == {"t1"}
        assert len(trees["t1"]) == 1


# ---------------------------------------------------------------------------
# JSONL rotation + damage-tolerant reads (satellite)
# ---------------------------------------------------------------------------


class TestBoundedJsonl:
    def test_rotation_keeps_whole_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = BoundedJsonlWriter(path, max_bytes=200)
        for i in range(40):
            writer.append({"i": i})
        records = list(read_jsonl_records(path))
        assert records  # never empty after rotation
        values = [r["i"] for r in records]
        assert values == sorted(values)
        assert values[-1] == 39
        # every surviving record is intact (json.loads succeeded) and the
        # rotated generation exists
        assert path.with_name("log.jsonl.1").exists()

    def test_oversized_record_never_wipes_previous_generation(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.with_name("log.jsonl.1").write_text(
            json.dumps({"kept": True}) + "\n", encoding="utf-8"
        )
        writer = BoundedJsonlWriter(path, max_bytes=10)  # every record oversized
        writer.append({"huge": "x" * 100})
        # live file was empty, so no rotation happened: the .1 generation
        # survives and both records read back.
        records = list(read_jsonl_records(path))
        assert records[0] == {"kept": True}
        assert records[1]["huge"] == "x" * 100

    def test_reader_skips_torn_and_garbage_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"a": 1}) + "\n"
            + "not json at all\n"
            + json.dumps([1, 2, 3]) + "\n"  # decodes but not an object
            + json.dumps({"b": 2}) + "\n"
            + '{"torn": tr',  # crash mid-append, no newline
            encoding="utf-8",
        )
        assert list(read_jsonl_records(path)) == [{"a": 1}, {"b": 2}]

    def test_reader_reads_rotated_generation_first(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.with_name("log.jsonl.1").write_text(
            json.dumps({"gen": 1}) + "\n", encoding="utf-8"
        )
        path.write_text(json.dumps({"gen": 0}) + "\n", encoding="utf-8")
        assert [r["gen"] for r in read_jsonl_records(path)] == [1, 0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert list(read_jsonl_records(tmp_path / "absent.jsonl")) == []


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


class TestPrometheusText:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("daemon.requests_served").inc(7)
        registry.gauge("pool.queue_depth", pool="a b").set(3)
        hist = registry.histogram("save.seconds")
        hist.observe(0.05)
        hist.observe(100.0)
        text = prometheus_text(registry.snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE qckpt_daemon_requests_served_total counter" in lines
        assert "qckpt_daemon_requests_served_total 7" in lines
        assert 'qckpt_pool_queue_depth{pool="a b"} 3' in lines
        assert "# TYPE qckpt_save_seconds histogram" in lines
        # +Inf bucket carries the full count and equals _count
        inf = next(
            line for line in lines
            if line.startswith('qckpt_save_seconds_bucket{le="+Inf"}')
        )
        assert inf.endswith(" 2")
        assert "qckpt_save_seconds_count 2" in lines
        assert any(
            line.startswith("qckpt_save_seconds_sum ") for line in lines
        )
        assert "qckpt_registry_epoch 1" in lines
        # bucket counts are cumulative (monotone in le)
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("qckpt_save_seconds_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)


# ---------------------------------------------------------------------------
# Health rule engine
# ---------------------------------------------------------------------------


class TestHealthEngine:
    def test_threshold_rule_fires_on_gauge(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("reliability.breaker_open").set(1)
        report = HealthEngine().evaluate(
            registry.snapshot(), include_staleness=False
        )
        assert report.verdict == "critical"
        (finding,) = [f for f in report.firing if f.rule == "breaker-open"]
        assert "circuit breaker" in finding.reason

    def test_all_rules_pass_on_quiet_registry(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("save.count").inc()
        report = HealthEngine().evaluate(
            registry.snapshot(), include_staleness=False
        )
        assert report.verdict == "ok"
        assert report.checked == len(DEFAULT_RULES) - 1  # staleness skipped
        assert report.firing == []

    def test_threshold_histogram_quantile(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("save.seconds")
        for _ in range(100):
            hist.observe(30.0)  # p99 far above the 5s default
        report = HealthEngine().evaluate(
            registry.snapshot(), include_staleness=False
        )
        assert any(f.rule == "save-latency-p99" for f in report.firing)
        assert report.verdict == "warn"

    def test_rate_rule_fires_with_history(self):
        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            db.record_snapshot(_counter_snapshot(0), ts=0.0)
            db.record_snapshot(_counter_snapshot(100), ts=10.0)
            report = HealthEngine().evaluate(
                _counter_snapshot(100), db, now=10.0, include_staleness=False
            )
            (finding,) = [f for f in report.firing if f.rule == "retry-storm"]
            assert finding.observed == pytest.approx(10.0)
            assert "[observed" in finding.reason
        finally:
            db.close()

    def test_burn_rule_fires_on_exhausted_budget(self):
        def snap(retries, exhausted, ts_epoch=1):
            return {
                "version": 1,
                "epoch": ts_epoch,
                "series": [
                    {
                        "name": "reliability.retries", "type": "counter",
                        "labels": {}, "value": float(retries),
                        "epoch": ts_epoch,
                    },
                    {
                        "name": "reliability.exhausted_ops", "type": "counter",
                        "labels": {}, "value": float(exhausted),
                        "epoch": ts_epoch,
                    },
                ],
            }

        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            db.record_snapshot(snap(0, 0), ts=0.0)
            db.record_snapshot(snap(10, 8), ts=10.0)
            report = HealthEngine().evaluate(
                snap(10, 8), db, now=10.0, include_staleness=False
            )
            (finding,) = [
                f for f in report.firing if f.rule == "retry-budget-burn"
            ]
            assert finding.observed == pytest.approx(0.8)
        finally:
            db.close()

    def test_staleness_rule_fires_on_old_samples(self):
        db = TimeSeriesDB(prune_interval_seconds=0)
        try:
            db.record_snapshot(_counter_snapshot(1), ts=0.0)
            rule = HealthRule(
                name="stalled", kind="staleness", window_seconds=30.0,
                severity="warn",
            )
            report = HealthEngine([rule]).evaluate(
                _counter_snapshot(1), db, now=100.0
            )
            assert report.verdict == "warn"
            assert report.findings[0].observed == pytest.approx(100.0)
            # fresh samples: passes
            db.record_snapshot(_counter_snapshot(2), ts=95.0)
            ok = HealthEngine([rule]).evaluate(
                _counter_snapshot(2), db, now=100.0
            )
            assert ok.verdict == "ok"
        finally:
            db.close()

    def test_windowed_rules_pass_without_history(self):
        report = HealthEngine().evaluate(
            _counter_snapshot(100), timeseries=None, include_staleness=False
        )
        assert report.verdict == "ok"
        rate_findings = [
            f for f in report.findings if f.reason == "no history available"
        ]
        assert rate_findings  # rate + burn rules declined to guess

    def test_rule_roundtrip_and_validation(self):
        for rule in DEFAULT_RULES:
            assert HealthRule.from_dict(rule.to_dict()) == rule
        (restored,) = rules_from_records([DEFAULT_RULES[0].to_dict()])
        assert restored == DEFAULT_RULES[0]
        with pytest.raises(ConfigError):
            HealthRule(name="bad", kind="nonsense")
        with pytest.raises(ConfigError):
            HealthRule(name="bad", kind="threshold", severity="fatal")
        with pytest.raises(ConfigError):
            HealthRule(name="bad", kind="threshold", op="!=")
        with pytest.raises(ConfigError):
            HealthRule(name="bad", kind="burn", series="a")  # no total_series
        with pytest.raises(ConfigError):
            HealthRule(name="bad", kind="rate", window_seconds=0.0)

    def test_report_to_dict_shape(self):
        report = HealthEngine().evaluate(
            _counter_snapshot(0), include_staleness=False
        )
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["verdict"] == "ok"
        assert doc["checked"] == len(doc["findings"])
        assert {"rule", "severity", "firing", "reason"} <= set(
            doc["findings"][0]
        )


# ---------------------------------------------------------------------------
# FileTransport idle-poll elision (satellite)
# ---------------------------------------------------------------------------


class TestFileTransportElision:
    def test_idle_polls_are_elided_and_new_requests_seen(self, tmp_path):
        control = LocalDirectoryBackend(tmp_path / "ctl")
        transport = FileTransport(control)
        assert transport.poll() == []
        # Let the directory mtime age past the trust margin, then one
        # empty listing records the high-water mark...
        time.sleep(0.05)
        assert transport.poll() == []
        skipped_before = transport.dir_scans_skipped
        assert transport.poll() == []
        assert transport.poll() == []
        assert transport.dir_scans_skipped == skipped_before + 2
        # ...and a new request invalidates it via the directory mtime.
        control.write(
            f"{REQUEST_PREFIX}abc.json",
            json.dumps({"op": "ping"}).encode("utf-8"),
        )
        pending = transport.poll()
        assert len(pending) == 1
        assert pending[0].request == {"op": "ping"}

    def test_pending_requests_never_recorded_as_high_water(self, tmp_path):
        control = LocalDirectoryBackend(tmp_path / "ctl")
        control.write(
            f"{REQUEST_PREFIX}one.json",
            json.dumps({"op": "ping"}).encode("utf-8"),
        )
        transport = FileTransport(control)
        time.sleep(0.05)
        # A non-empty listing must never set the mark: the same request is
        # re-served on every poll until it is responded to.
        assert len(transport.poll()) == 1
        assert len(transport.poll()) == 1
        assert transport.dir_scans_skipped == 0


# ---------------------------------------------------------------------------
# Daemon integration: sampler + health + the three observatory ops
# ---------------------------------------------------------------------------


def _tiny_spec(job_id, steps=2):
    return {
        "job_id": job_id,
        "workload": "classifier",
        "target_steps": steps,
        "params": {"qubits": 2, "layers": 1, "samples": 16, "batch_size": 4},
    }


class TestDaemonObservatory:
    def _run_incarnation(self, tmp_path, obs_root, job_id):
        registry = MetricsRegistry(enabled=True)
        store = ChunkStore(InMemoryBackend(), block_bytes=2048, metrics=registry)
        pool = WriterPool(workers=1, metrics=registry)
        daemon = FleetDaemon(
            store,
            pool,
            tmp_path / "ctl",
            config=DaemonConfig(
                tick_seconds=0.002,
                metrics_export_seconds=0.0,
                obs_sample_seconds=0.01,
            ),
            metrics=registry,
            obs_dir=obs_root,
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        client = DaemonClient(tmp_path / "ctl", timeout=30.0)
        responses = {}
        try:
            assert client.submit(_tiny_spec(job_id, steps=2))["ok"]
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                jobs = client.status()["jobs"]
                if all(j["state"] == "finished" for j in jobs.values()):
                    break
                time.sleep(0.02)
            responses["status"] = client.status()
            responses["health"] = client.request("health")
            responses["metrics_text"] = client.request("metrics_text")
            responses["series"] = client.request(
                "series", name="save.seconds", window=120.0, limit=64
            )
        finally:
            try:
                client.stop(timeout=10.0)
            except (ConfigError, DaemonUnavailable):
                pass
            thread.join(timeout=30.0)
            pool.close()
        return responses

    def test_observatory_ops_and_restart_safe_history(self, tmp_path):
        obs_root = store_obs_dir(tmp_path)
        for incarnation, job_id in enumerate(["alpha", "beta"]):
            responses = self._run_incarnation(tmp_path, obs_root, job_id)

            health = responses["health"]
            assert health["ok"]
            assert health["health"]["verdict"] == "ok"
            assert health["health"]["checked"] == len(DEFAULT_RULES)
            assert {r["name"] for r in health["rules"]} == {
                r.name for r in DEFAULT_RULES
            }
            # the in-loop report also lands on the status op
            assert responses["status"]["health"]["verdict"] == "ok"

            text = responses["metrics_text"]["text"]
            assert "# TYPE qckpt_save_seconds histogram" in text
            assert f"qckpt_registry_epoch {incarnation + 1}" in text

            series = responses["series"]
            assert series["ok"]
            assert series["series"], "sampler produced no save.seconds rows"
            for entry in series["series"]:
                for ts, epoch, cumulative in entry["points"]:
                    assert epoch >= 1 and cumulative >= 0
                if entry["rate"] is not None:
                    assert entry["rate"] >= 0

        # The history file persisted across both incarnations with both
        # epochs present, and no restart-spanning rate goes negative.
        db = TimeSeriesDB(obs_root / DB_FILENAME)
        try:
            assert not db.discarded_previous
            samples = db.query("save.seconds")
            assert {s.epoch for s in samples} == {1, 2}
            for run in group_by_labels(samples).values():
                rate = rate_from_samples(run)
                assert rate is None or rate >= 0
        finally:
            db.close()


# ---------------------------------------------------------------------------
# Offline CLI verbs over crafted obs directories
# ---------------------------------------------------------------------------


class TestObservatoryCli:
    def test_health_offline_exit_codes(self, tmp_path, capsys):
        obs = ObsDir(store_obs_dir(tmp_path))
        registry = MetricsRegistry(enabled=True)
        registry.counter("save.count").inc()
        obs.save_registry(registry)
        assert main(["health", str(tmp_path)]) == 0
        assert "health OK" in capsys.readouterr().out

        registry.gauge("reliability.breaker_open").set(1)
        obs.save_registry(registry)
        assert main(["health", str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "health CRITICAL" in out
        assert "breaker-open" in out

    def test_health_json_output(self, tmp_path, capsys):
        obs = ObsDir(store_obs_dir(tmp_path))
        registry = MetricsRegistry(enabled=True)
        registry.counter("save.count").inc()
        obs.save_registry(registry)
        assert main(["health", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verdict"] == "ok"

    def test_health_without_registry_is_an_error(self, tmp_path, capsys):
        assert main(["health", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_prints_critical_path_and_folded(self, tmp_path, capsys):
        trace_path = store_obs_dir(tmp_path) / TRACE_FILENAME
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        with trace_path.open("w", encoding="utf-8") as handle:
            for record in _save_trace():
                handle.write(json.dumps(record) + "\n")

        assert main(["profile", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "store.save" in out
        assert "critical path: store.save (100.00ms) -> stage:write" in out
        assert "stage coverage:" in out

        assert main(["profile", str(tmp_path), "--last-save"]) == 0
        assert "trace t1" in capsys.readouterr().out

        assert main(["profile", str(tmp_path), "--folded"]) == 0
        folded = capsys.readouterr().out
        assert "store.save;stage:write 50000" in folded

        assert main(["profile", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(a["name"] == "store.save" for a in doc["aggregate"])

    def test_profile_unknown_trace_is_an_error(self, tmp_path, capsys):
        trace_path = store_obs_dir(tmp_path) / TRACE_FILENAME
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        with trace_path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(_save_trace()[0]) + "\n")
        assert main(["profile", str(tmp_path), "--trace", "missing"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_prom_offline(self, tmp_path, capsys):
        obs = ObsDir(store_obs_dir(tmp_path))
        registry = MetricsRegistry(enabled=True)
        registry.counter("save.count").inc(5)
        obs.save_registry(registry)
        assert main(["metrics", str(tmp_path), "--prom"]) == 0
        out = capsys.readouterr().out
        assert "qckpt_save_count_total 5" in out
