"""Reliability layer: retry/backoff, deadlines, breakers, fault schedules.

Everything here is deterministic: the retry policy takes an injected RNG and
sleep, the breaker and deadline take injected clocks, and the flaky backend
fails fixed op ordinals — so each test asserts exact delay sequences and
exact recovery points rather than sampling probabilities.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.snapshot import TrainingSnapshot
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceeded,
    RetryExhaustedError,
    StorageError,
    TransientStorageError,
)
from repro.reliability import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    current_deadline,
    deadline_scope,
)
from repro.service.chunkstore import ChunkStore
from repro.storage.flaky import FlakyBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.reliable import ReliableBackend


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _policy(**overrides) -> RetryPolicy:
    """A policy whose sleeps are recorded, not slept."""
    sleeps: list = overrides.pop("sleeps", [])
    defaults = dict(
        max_attempts=4,
        base_delay=0.1,
        max_delay=1.0,
        multiplier=2.0,
        jitter="none",
        sleep=sleeps.append,
    )
    defaults.update(overrides)
    policy = RetryPolicy(**defaults)
    policy.recorded_sleeps = sleeps  # type: ignore[attr-defined]
    return policy


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_with_label(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("warmup")
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="during warmup"):
            deadline.check("warmup")

    def test_clamp_bounds_timeouts(self):
        clock = FakeClock()
        deadline = Deadline(3.0, clock=clock)
        assert deadline.clamp(10.0) == pytest.approx(3.0)
        assert deadline.clamp(1.0) == pytest.approx(1.0)
        clock.advance(2.5)
        assert deadline.clamp(10.0) == pytest.approx(0.5)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            Deadline(-1.0)

    def test_ambient_scope_nests_and_unwinds(self):
        assert current_deadline() is None
        outer, inner = Deadline(10.0), Deadline(2.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_none_scope_is_noop(self):
        with deadline_scope(None):
            assert current_deadline() is None


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_caps_exponential_and_clipped(self):
        policy = _policy()
        assert [policy.backoff_cap(i) for i in range(5)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
            pytest.approx(1.0),  # clipped at max_delay
        ]

    def test_worst_case_delay_is_sum_of_caps(self):
        policy = _policy(max_attempts=4)
        assert policy.worst_case_delay() == pytest.approx(0.1 + 0.2 + 0.4)

    def test_full_jitter_is_seed_deterministic(self):
        delays_a = [
            RetryPolicy(jitter="full", rng=random.Random(7)).delay_for(i)
            for i in range(4)
        ]
        delays_b = [
            RetryPolicy(jitter="full", rng=random.Random(7)).delay_for(i)
            for i in range(4)
        ]
        assert delays_a == delays_b
        for i, delay in enumerate(delays_a):
            assert 0.0 <= delay <= RetryPolicy().backoff_cap(i)

    def test_call_retries_transient_until_success(self):
        policy = _policy()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientStorageError("brownout")
            return "done"

        assert policy.call(flaky) == "done"
        assert len(calls) == 3
        # Exact deterministic delay sequence: one sleep per scheduled retry.
        assert policy.recorded_sleeps == [
            pytest.approx(0.1),
            pytest.approx(0.2),
        ]

    def test_exhaustion_chains_last_error(self):
        policy = _policy(max_attempts=3)

        def always_down():
            raise TransientStorageError("still down")

        with pytest.raises(RetryExhaustedError, match="3 attempts") as info:
            policy.call(always_down)
        assert isinstance(info.value.__cause__, TransientStorageError)
        assert isinstance(info.value, StorageError)  # storage-class for callers

    def test_persistent_errors_never_retried(self):
        policy = _policy()
        calls = []

        def missing():
            calls.append(1)
            raise StorageError("object not found")

        with pytest.raises(StorageError, match="not found"):
            policy.call(missing)
        assert len(calls) == 1
        assert policy.recorded_sleeps == []

    def test_on_retry_hook_sees_each_scheduled_retry(self):
        policy = _policy(max_attempts=3)
        seen = []

        def always_down():
            raise TransientStorageError("nope")

        with pytest.raises(RetryExhaustedError):
            policy.call(always_down, on_retry=lambda i, e: seen.append((i, str(e))))
        assert seen == [(0, "nope"), (1, "nope")]

    def test_pause_refuses_to_sleep_past_deadline(self):
        clock = FakeClock()
        policy = _policy(base_delay=1.0, max_delay=1.0)
        deadline = Deadline(0.5, clock=clock)
        with pytest.raises(DeadlineExceeded, match="cannot absorb"):
            policy.pause(0, deadline)
        assert policy.recorded_sleeps == []  # the budget was not burned

    def test_expired_deadline_stops_attempts(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        calls = []
        with pytest.raises(DeadlineExceeded):
            _policy().call(lambda: calls.append(1), deadline=deadline)
        assert calls == []

    def test_ambient_deadline_honored(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceeded):
                _policy().call(lambda: "unreachable")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter="bogus")
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-0.1)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        for _ in range(2):
            breaker.failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        with pytest.raises(CircuitOpenError, match="3 consecutive"):
            breaker.before()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.failure()
        breaker.success()
        breaker.failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.before()  # probe traffic admitted
        breaker.success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_call_counts_only_transient_class_errors(self):
        breaker = CircuitBreaker(failure_threshold=1)

        def missing():
            raise StorageError("no such object")

        with pytest.raises(StorageError):
            breaker.call(missing)
        assert breaker.state == CircuitBreaker.CLOSED  # an answer, not an outage

        def down():
            raise TransientStorageError("brownout")

        with pytest.raises(TransientStorageError):
            breaker.call(down)
        assert breaker.state == CircuitBreaker.OPEN


# ---------------------------------------------------------------------------
# FlakyBackend deterministic fault schedules
# ---------------------------------------------------------------------------


class TestFlakySchedules:
    def test_write_window_fails_then_heals(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.arm_schedule("write", "error", first=1, count=2)
        for expected_failure in (True, True, False, False):
            if expected_failure:
                with pytest.raises(TransientStorageError):
                    flaky.write("obj", b"data")
            else:
                flaky.write("obj", b"data")
        assert flaky.read("obj") == b"data"
        assert flaky.faults_injected == 2

    def test_offset_window(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.arm_schedule("write", "error", first=3, count=1)
        flaky.write("a", b"x")
        flaky.write("b", b"x")
        with pytest.raises(TransientStorageError):
            flaky.write("c", b"x")
        flaky.write("c", b"x")

    def test_periodic_storm_repeats_deterministically(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.arm_schedule("write", "error", first=1, count=1, period=3)
        outcomes = []
        for i in range(9):
            try:
                flaky.write(f"obj-{i}", b"x")
                outcomes.append("ok")
            except TransientStorageError:
                outcomes.append("fail")
        assert outcomes == ["fail", "ok", "ok"] * 3

    def test_period_shorter_than_count_rejected(self):
        flaky = FlakyBackend(InMemoryBackend())
        with pytest.raises(ConfigError, match="never heal"):
            flaky.arm_schedule("write", "error", count=3, period=2)

    def test_read_schedule_shares_ordinal_with_read_range(self):
        inner = InMemoryBackend()
        inner.write("obj", b"0123456789")
        flaky = FlakyBackend(inner)
        flaky.arm_schedule("read", "error", first=2, count=1)
        assert flaky.read("obj") == b"0123456789"  # ordinal 1
        with pytest.raises(TransientStorageError):
            flaky.read_range("obj", 0, 4)  # ordinal 2: scheduled failure
        assert flaky.read_range("obj", 0, 4) == b"0123"

    def test_disarm_clears_schedules(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.arm_schedule("write", "error", first=1, count=100)
        flaky.disarm()
        flaky.write("obj", b"fine")
        assert flaky.read("obj") == b"fine"

    def test_schedule_replaces_oneshot_and_vice_versa(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.arm("error", fail_on_write=1)
        flaky.arm_schedule("write", "error", first=2, count=1)
        flaky.write("a", b"x")  # ordinal 1: one-shot was superseded
        with pytest.raises(TransientStorageError):
            flaky.write("b", b"x")


# ---------------------------------------------------------------------------
# ReliableBackend: the policies wired across the storage contract
# ---------------------------------------------------------------------------


class TestReliableBackend:
    def test_recovers_within_policy(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.write("obj", b"payload")
        flaky.arm_schedule("read", "error", first=1, count=2)
        backend = ReliableBackend(flaky, retry=_policy())
        assert backend.read("obj") == b"payload"
        assert backend.stats.retries == 2
        assert backend.stats.recovered_ops == 1
        assert backend.stats.exhausted_ops == 0

    def test_exhaustion_surfaces_and_counts(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.write("obj", b"payload")
        flaky.arm_schedule("read", "error", first=1, count=100)
        backend = ReliableBackend(flaky, retry=_policy(max_attempts=3))
        with pytest.raises(RetryExhaustedError):
            backend.read("obj")
        assert backend.stats.exhausted_ops == 1
        assert backend.stats.recovered_ops == 0

    def test_persistent_miss_is_not_retried(self):
        backend = ReliableBackend(InMemoryBackend(), retry=_policy())
        with pytest.raises(StorageError):
            backend.read("no-such-object")
        assert backend.stats.retries == 0
        assert backend.stats.exhausted_ops == 0

    def test_breaker_rejects_after_exhaustion_streak(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.write("obj", b"payload")
        flaky.arm_schedule("read", "error", first=1, count=10_000)
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=30.0, clock=clock)
        backend = ReliableBackend(
            flaky, retry=_policy(max_attempts=2), breaker=breaker
        )
        for _ in range(2):
            with pytest.raises(RetryExhaustedError):
                backend.read("obj")
        with pytest.raises(CircuitOpenError):
            backend.read("obj")
        assert backend.stats.rejected_ops == 1
        # After the reset window, the probe goes through to a healed backend.
        flaky.disarm()
        clock.advance(30.0)
        assert backend.read("obj") == b"payload"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_total_sleep_bounded_by_worst_case(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.write("obj", b"payload")
        flaky.arm_schedule("read", "error", first=1, count=3)
        policy = _policy(max_attempts=4, jitter="full", rng=random.Random(11))
        backend = ReliableBackend(flaky, retry=policy)
        assert backend.read("obj") == b"payload"
        assert sum(policy.recorded_sleeps) <= policy.worst_case_delay()

    def test_write_path_recovers_too(self):
        flaky = FlakyBackend(InMemoryBackend())
        flaky.arm_schedule("write", "error", first=1, count=1)
        backend = ReliableBackend(flaky, retry=_policy())
        backend.write("obj", b"through the storm")
        assert backend.read("obj") == b"through the storm"
        assert backend.stats.recovered_ops == 1


# ---------------------------------------------------------------------------
# Restore pipeline: per-block retry and re-verify
# ---------------------------------------------------------------------------


def _snapshot(step: int, size: int = 256) -> TrainingSnapshot:
    rng = np.random.default_rng(step)
    return TrainingSnapshot(
        step=step,
        params=rng.normal(size=size),
        optimizer_state={"lr": 0.05},
        rng_state={"seed": step},
        model_fingerprint="reliability-model",
    )


class TestRestoreRetry:
    def _store(self, flaky: FlakyBackend) -> ChunkStore:
        return ChunkStore(
            flaky,
            block_bytes=512,
            retry=RetryPolicy(
                max_attempts=4, base_delay=0.0, jitter="none", sleep=lambda _s: None
            ),
        )

    def test_transient_fetch_failures_recovered(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = self._store(flaky)
        snap = _snapshot(1)
        store.save_snapshot("job", snap)
        # Ordinal 1 is the manifest read; fail the first two chunk fetches.
        flaky.arm_schedule("read", "error", first=2, count=2)
        restored = store.load_snapshot("job")
        assert restored.step == snap.step
        assert restored.params.tobytes() == snap.params.tobytes()

    def test_corrupt_fetch_reverified_after_refetch(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = self._store(flaky)
        snap = _snapshot(2)
        store.save_snapshot("job", snap)
        # One lying fetch: the pipeline must catch the checksum mismatch and
        # re-fetch fresh bytes instead of surfacing garbage or failing.
        flaky.arm_read("bitflip", fail_on_read=2)
        restored = store.load_snapshot("job")
        assert restored.params.tobytes() == snap.params.tobytes()

    def test_unretried_store_still_fails_fast(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = ChunkStore(flaky, block_bytes=512)  # no policy
        store.save_snapshot("job", _snapshot(3))
        flaky.arm_schedule("read", "error", first=2, count=2)
        with pytest.raises(TransientStorageError):
            store.load_snapshot("job")
