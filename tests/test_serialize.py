"""Unit tests for the QCKPT container format, including corruption handling."""

import numpy as np
import pytest

from repro.core.serialize import (
    FORMAT_VERSION,
    MAGIC,
    inspect_header,
    pack_payload,
    pack_snapshot,
    unpack_payload,
    unpack_snapshot,
)
from repro.errors import IntegrityError, SerializationError
from tests.test_snapshot import sample_snapshot


def sample_tensors():
    rng = np.random.default_rng(0)
    return {
        "f64": rng.standard_normal(10),
        "f32": rng.standard_normal(7).astype(np.float32),
        "c128": (rng.standard_normal(8) + 1j * rng.standard_normal(8)),
        "c64": (rng.standard_normal(4) + 1j * rng.standard_normal(4)).astype(
            np.complex64
        ),
        "i64": rng.integers(-100, 100, 5),
        "i8": rng.integers(-100, 100, 9).astype(np.int8),
        "u8": rng.integers(0, 255, 6).astype(np.uint8),
        "bool": np.array([True, False, True]),
        "matrix": rng.standard_normal((3, 4)),
        "empty": np.zeros(0),
    }


class TestRoundtrip:
    @pytest.mark.parametrize("codec", ["none", "zlib-1", "zlib-6", "lzma", "bz2"])
    def test_all_dtypes_roundtrip(self, codec):
        meta = {"kind": "test", "nested": {"x": [1, 2, 3]}}
        tensors = sample_tensors()
        data = pack_payload(meta, tensors, codec=codec)
        meta2, tensors2 = unpack_payload(data)
        assert meta2 == meta
        assert set(tensors2) == set(tensors)
        for name in tensors:
            assert tensors2[name].dtype == tensors[name].dtype, name
            assert np.array_equal(tensors2[name], tensors[name]), name

    def test_empty_tensor_directory(self):
        data = pack_payload({"only": "meta"}, {})
        meta, tensors = unpack_payload(data)
        assert meta == {"only": "meta"} and tensors == {}

    def test_snapshot_roundtrip(self):
        snapshot = sample_snapshot()
        assert unpack_snapshot(pack_snapshot(snapshot)) == snapshot

    def test_unpack_snapshot_rejects_delta_payload(self):
        data = pack_payload({"kind": "delta"}, {})
        with pytest.raises(SerializationError, match="delta"):
            unpack_snapshot(data)

    def test_deterministic_output(self):
        snapshot = sample_snapshot()
        assert pack_snapshot(snapshot) == pack_snapshot(snapshot)

    def test_transform_applied_and_recorded(self):
        rng = np.random.default_rng(1)
        vec = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        vec = vec / np.linalg.norm(vec)
        data = pack_payload(
            {"k": 1}, {"sv": vec}, transforms={"sv": "f16-pair"}
        )
        header = inspect_header(data)
        entry = header["tensors"][0]
        assert entry["transform"] == "f16-pair"
        assert entry["dtype"] == "<f2"
        _, tensors = unpack_payload(data)
        assert abs(np.vdot(vec, tensors["sv"])) ** 2 > 0.999

    def test_transform_target_must_exist(self):
        with pytest.raises(SerializationError):
            pack_payload({}, {"a": np.ones(2)}, transforms={"b": "c64"})

    def test_non_array_tensor_rejected(self):
        with pytest.raises(SerializationError):
            pack_payload({}, {"a": [1, 2, 3]})

    def test_unserializable_meta_rejected(self):
        with pytest.raises(SerializationError):
            pack_payload({"fn": object()}, {})

    def test_disallowed_dtype_rejected(self):
        with pytest.raises(SerializationError):
            pack_payload({}, {"a": np.zeros(2, dtype=np.float128)})


class TestIntegrity:
    def _packed(self):
        return pack_payload({"kind": "test"}, sample_tensors(), codec="zlib-6")

    def test_bad_magic(self):
        data = bytearray(self._packed())
        data[0] ^= 0xFF
        with pytest.raises(IntegrityError):
            unpack_payload(bytes(data))

    def test_truncated_file(self):
        data = self._packed()
        with pytest.raises(IntegrityError):
            unpack_payload(data[: len(data) // 2])

    def test_too_short_file(self):
        with pytest.raises(IntegrityError):
            unpack_payload(b"QCKPT")

    @pytest.mark.parametrize("fraction", [0.3, 0.5, 0.7, 0.95])
    def test_bitflip_detected_everywhere(self, fraction):
        data = bytearray(self._packed())
        offset = int(len(data) * fraction)
        data[offset] ^= 0x01
        with pytest.raises(IntegrityError):
            unpack_payload(bytes(data))

    def test_footer_tamper_detected(self):
        data = bytearray(self._packed())
        data[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            unpack_payload(bytes(data))

    def test_verify_false_skips_sha(self):
        data = bytearray(self._packed())
        data[-1] ^= 0x01  # damage only the footer
        meta, tensors = unpack_payload(bytes(data), verify=False)
        assert meta["kind"] == "test"

    def test_crc_catches_chunk_corruption_even_without_sha(self):
        data = bytearray(self._packed())
        # Damage payload *and* recompute nothing; skip sha with verify=False:
        # the per-chunk CRC must still catch it.
        header = inspect_header(bytes(data))
        first = header["tensors"][0]
        payload_start = data.index(b"}", len(MAGIC)) + 1  # end of header JSON
        # find payload offset precisely: header length field
        import struct

        (header_len,) = struct.unpack_from("<I", data, len(MAGIC))
        payload_start = len(MAGIC) + 4 + header_len
        data[payload_start + first["offset"]] ^= 0xFF
        # With sha skipped the damage is still caught — either by the chunk
        # CRC or by the codec failing to decode.
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            unpack_payload(bytes(data), verify=False)
        with pytest.raises(IntegrityError):
            unpack_payload(bytes(data), verify=True)

    def test_unsupported_format_version(self):
        data = pack_payload({"k": 1}, {})
        # Rewrite the header with a bumped version and fix up lengths/sha.
        import json
        import struct

        from repro.core.integrity import sha256_of

        (header_len,) = struct.unpack_from("<I", data, len(MAGIC))
        start = len(MAGIC) + 4
        header = json.loads(data[start : start + header_len])
        header["format_version"] = FORMAT_VERSION + 1
        new_header = json.dumps(header, sort_keys=True).encode()
        body = (
            MAGIC
            + struct.pack("<I", len(new_header))
            + new_header
            + data[start + header_len : -32]
        )
        data = body + sha256_of(body)
        with pytest.raises(SerializationError, match="version"):
            unpack_payload(data)

    def test_inspect_header_reads_without_decode(self):
        data = self._packed()
        header = inspect_header(data)
        assert header["format_version"] == FORMAT_VERSION
        assert header["codec"] == "zlib-6"
        assert {t["name"] for t in header["tensors"]} == set(sample_tensors())

    def test_inspect_header_rejects_non_qckpt(self):
        with pytest.raises(IntegrityError):
            inspect_header(b"\x00" * 64)
