"""Tests for the EXPERIMENTS.md generator (python -m repro.bench).

The row generators themselves are exercised by ``benchmarks/``; here we pin
the generator's *wiring*: section identities, and that each shape-check
function detects both conforming and violating row sets (so schema drift in
``repro.bench.experiments`` cannot silently turn every check green).
"""

import pytest

from repro.bench.__main__ import (
    _check,
    _fig1_checks,
    _fig5_checks,
    _sections,
    _tab3_checks,
    _tab5_checks,
    _tab6_checks,
)


class TestSectionWiring:
    def test_identifiers_unique_and_complete(self):
        sections = _sections()
        idents = [s.ident for s in sections]
        assert len(idents) == len(set(idents))
        # 7 figures + 6 tables = the full reconstructed evaluation.
        assert sum(1 for i in idents if i.startswith("Fig")) == 7
        assert sum(1 for i in idents if i.startswith("Tab")) == 6

    def test_every_section_has_expected_shape_text(self):
        for section in _sections():
            assert len(section.expected) > 20
            assert callable(section.run)
            assert callable(section.checks)


class TestCheckPrimitive:
    def test_pass_and_fail_prefixes(self):
        assert _check("x", True).startswith("PASS")
        assert _check("x", False).startswith("FAIL")


class TestCheckFunctions:
    def test_fig1_detects_wrong_scaling(self):
        good = [
            {"n_qubits": 4, "statevector_bytes": 256, "statevector_share": 0.5},
            {"n_qubits": 6, "statevector_bytes": 1024, "statevector_share": 0.995},
        ]
        assert all(c.startswith("PASS") for c in _fig1_checks(good))
        bad = [dict(r, statevector_bytes=100) for r in good]
        assert any(c.startswith("FAIL") for c in _fig1_checks(bad))

    def test_fig5_detects_delta_regression(self):
        def series(workload, delta, full):
            return {
                "workload": workload,
                "cum_delta_mode": delta,
                "cum_full_mode": full,
            }

        good = [series("classifier", 40, 100), series("vqe+sv", 99, 100)]
        assert all(c.startswith("PASS") for c in _fig5_checks(good))
        bad = [series("classifier", 90, 100), series("vqe+sv", 99, 100)]
        assert any(c.startswith("FAIL") for c in _fig5_checks(bad))

    def test_tab3_requires_exact_zero(self):
        good = [{"max_param_delta": 0.0, "bitwise_exact": True}]
        assert _tab3_checks(good)[0].startswith("PASS")
        bad = [{"max_param_delta": 1e-16, "bitwise_exact": True}]
        assert _tab3_checks(bad)[0].startswith("FAIL")

    def test_tab5_detects_mps_regression(self):
        def row(family, transform, bytes_, fidelity, ratio):
            return {
                "family": family,
                "transform": transform,
                "stored_bytes": bytes_,
                "fidelity": fidelity,
                "infidelity": max(0.0, 1 - fidelity),
                "ratio": ratio,
            }

        good = [
            row("shallow", "mps-8", 100, 1.0, 10.0),
            row("shallow", "f16-pair", 400, 1.0, 4.0),
            row("haar", "mps-8", 100, 0.2, 4.0),
            row("haar", "mps-32", 900, 0.9, 0.6),
        ]
        assert all(c.startswith("PASS") for c in _tab5_checks(good))
        bad = [dict(r) for r in good]
        bad[0]["stored_bytes"] = 500  # MPS no longer smaller
        assert any(c.startswith("FAIL") for c in _tab5_checks(bad))

    def test_tab6_detects_replication_cost_change(self):
        good = [
            {"config": "datacenter", "write_s": 1.0},
            {"config": "replicated-3x", "write_s": 1.0},
            {"config": "tiered/write-through", "write_s": 1.0},
            {"config": "tiered/write-back", "write_s": 0.1},
        ]
        assert all(c.startswith("PASS") for c in _tab6_checks(good))
        bad = [dict(r) for r in good]
        bad[1]["write_s"] = 3.0  # serialized replication
        assert any(c.startswith("FAIL") for c in _tab6_checks(bad))


class TestQuickSweepShapes:
    """The quick sweeps must produce rows the check functions accept."""

    @pytest.mark.parametrize(
        "ident", ["Fig. 1", "Tab. 1", "Tab. 4", "Tab. 6"]
    )
    def test_cheap_sections_pass_quick(self, ident):
        section = next(s for s in _sections() if s.ident == ident)
        rows = section.run(True)
        checks = section.checks(rows)
        assert checks and all(c.startswith("PASS") for c in checks)
