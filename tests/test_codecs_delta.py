"""Unit tests for byte codecs, lossy transforms, and XOR delta encoding."""

import numpy as np
import pytest

from repro.core.codecs import (
    CODECS,
    TRANSFORMS,
    get_codec,
    get_transform,
)
from repro.core.delta import (
    MODE_APPEND,
    MODE_FULL,
    MODE_XOR,
    apply_delta,
    delta_sparsity,
    encode_delta,
    xor_bytes,
)
from repro.errors import ConfigError, SerializationError
from repro.quantum.haar import haar_state


class TestCodecs:
    @pytest.mark.parametrize("name", sorted(CODECS))
    def test_roundtrip_random_bytes(self, name, rng):
        codec = get_codec(name)
        data = rng.integers(0, 256, 4096).astype(np.uint8).tobytes()
        assert codec.decode(codec.encode(data)) == data

    @pytest.mark.parametrize("name", sorted(CODECS))
    def test_roundtrip_empty(self, name):
        codec = get_codec(name)
        assert codec.decode(codec.encode(b"")) == b""

    def test_compressible_data_shrinks(self):
        data = b"\x00" * 100_000
        for name in ("zlib-6", "lzma", "bz2"):
            assert len(get_codec(name).encode(data)) < 1000

    def test_zlib_levels_ordered(self):
        data = bytes(range(256)) * 400
        fast = len(get_codec("zlib-1").encode(data))
        best = len(get_codec("zlib-9").encode(data))
        assert best <= fast

    def test_unknown_codec(self):
        with pytest.raises(ConfigError):
            get_codec("zstd")

    def test_corrupt_stream_decode_fails(self):
        for name in ("zlib-6", "lzma", "bz2"):
            with pytest.raises(SerializationError):
                get_codec(name).decode(b"not compressed data")

    def test_level_validation(self):
        from repro.core.codecs import Bz2Codec, LzmaCodec, ZlibCodec

        with pytest.raises(ConfigError):
            ZlibCodec(0)
        with pytest.raises(ConfigError):
            LzmaCodec(10)
        with pytest.raises(ConfigError):
            Bz2Codec(0)


class TestTransforms:
    def test_identity_is_lossless(self, rng):
        transform = get_transform("identity")
        array = rng.standard_normal(10)
        encoded, meta = transform.encode(array)
        assert np.array_equal(transform.decode(encoded, meta), array)
        assert not transform.lossy

    @pytest.mark.parametrize("name", ["c64", "f16-pair", "int8-block"])
    def test_lossy_transforms_preserve_fidelity(self, name, rng):
        state = haar_state(8, rng)
        transform = get_transform(name)
        encoded, meta = transform.encode(state)
        restored = transform.decode(encoded, meta)
        fidelity = abs(np.vdot(state, restored)) ** 2
        assert fidelity > 0.999
        assert np.isclose(np.linalg.norm(restored), 1.0)

    def test_fidelity_ordering(self, rng):
        """More aggressive quantization loses more fidelity."""
        state = haar_state(10, rng)
        infidelities = {}
        for name in ("c64", "f16-pair", "int8-block"):
            transform = get_transform(name)
            encoded, meta = transform.encode(state)
            restored = transform.decode(encoded, meta)
            infidelities[name] = 1.0 - abs(np.vdot(state, restored)) ** 2
        assert infidelities["c64"] <= infidelities["f16-pair"]
        assert infidelities["f16-pair"] <= infidelities["int8-block"]

    def test_size_ordering(self, rng):
        state = haar_state(10, rng)
        sizes = {}
        for name in ("identity", "c64", "f16-pair", "int8-block"):
            encoded, _ = get_transform(name).encode(state)
            sizes[name] = encoded.nbytes
        assert sizes["c64"] == sizes["identity"] // 2
        assert sizes["f16-pair"] == sizes["identity"] // 4
        assert sizes["int8-block"] == sizes["identity"] // 8

    @pytest.mark.parametrize("name", ["c64", "f16-pair", "int8-block"])
    def test_reject_non_complex(self, name, rng):
        with pytest.raises(SerializationError):
            get_transform(name).encode(rng.standard_normal(8))

    def test_int8_block_scales_per_block(self, rng):
        from repro.core.codecs import Int8BlockTransform

        transform = Int8BlockTransform(block_size=8)
        state = haar_state(5, rng)  # 32 amplitudes -> 64 values -> 8 blocks
        encoded, meta = transform.encode(state)
        assert len(meta["scales"]) == 8
        restored = transform.decode(encoded, meta)
        assert abs(np.vdot(state, restored)) ** 2 > 0.99

    def test_int8_block_size_validation(self):
        from repro.core.codecs import Int8BlockTransform

        with pytest.raises(ConfigError):
            Int8BlockTransform(block_size=1)

    def test_zero_state_handled(self):
        # all-zero imaginary parts, blocks of zeros: scales fall back to 1.
        state = np.zeros(8, dtype=np.complex128)
        state[0] = 1.0
        for name in ("f16-pair", "int8-block"):
            transform = get_transform(name)
            encoded, meta = transform.encode(state)
            restored = transform.decode(encoded, meta)
            assert abs(np.vdot(state, restored)) ** 2 > 0.999

    def test_unknown_transform(self):
        with pytest.raises(ConfigError):
            get_transform("fp4")

    def test_registry_names_consistent(self):
        for name, transform in TRANSFORMS.items():
            assert transform.name == name


class TestXorBytes:
    def test_self_inverse(self, rng):
        a = rng.integers(0, 256, 100).astype(np.uint8).tobytes()
        b = rng.integers(0, 256, 100).astype(np.uint8).tobytes()
        delta = xor_bytes(a, b)
        assert xor_bytes(a, delta) == b
        assert xor_bytes(b, delta) == a

    def test_identical_inputs_give_zeros(self):
        data = b"hello world"
        assert xor_bytes(data, data) == b"\x00" * len(data)

    def test_length_mismatch(self):
        with pytest.raises(SerializationError):
            xor_bytes(b"ab", b"abc")


class TestDeltaEncoding:
    def _tensors(self, rng, offset=0.0):
        return {
            "params": rng.standard_normal(16) + offset,
            "moments": rng.standard_normal(16),
            "ints": np.arange(8),
        }

    def test_roundtrip_exact(self, rng):
        base = self._tensors(rng)
        current = {k: v + 1e-3 for k, v in base.items()}
        current["ints"] = base["ints"]  # unchanged tensor
        delta_tensors, meta = encode_delta(base, current)
        rebuilt = apply_delta(base, delta_tensors, meta)
        assert set(rebuilt) == set(current)
        for name in current:
            assert np.array_equal(rebuilt[name], current[name]), name
            assert rebuilt[name].dtype == current[name].dtype

    def test_unchanged_tensor_is_all_zero_delta(self, rng):
        base = self._tensors(rng)
        delta_tensors, meta = encode_delta(base, base)
        assert delta_sparsity(delta_tensors, meta) == 1.0

    def test_shape_change_falls_back_to_full(self, rng):
        # A grown 1-D array whose *prefix changed* cannot append-encode.
        base = {"x": np.ones(4)}
        current = {"x": np.zeros(6)}
        delta_tensors, meta = encode_delta(base, current)
        assert meta["entries"]["x"]["mode"] == MODE_FULL
        rebuilt = apply_delta(base, delta_tensors, meta)
        assert rebuilt["x"].shape == (6,)

    def test_matrix_growth_falls_back_to_full(self, rng):
        base = {"x": np.zeros((2, 4))}
        current = {"x": np.zeros((3, 4))}
        _, meta = encode_delta(base, current)
        assert meta["entries"]["x"]["mode"] == MODE_FULL

    def test_dtype_change_falls_back_to_full(self):
        base = {"x": np.zeros(4, dtype=np.float64)}
        current = {"x": np.zeros(4, dtype=np.float32)}
        _, meta = encode_delta(base, current)
        assert meta["entries"]["x"]["mode"] == MODE_FULL

    def test_new_tensor_stored_full(self, rng):
        base = {}
        current = {"new": rng.standard_normal(3)}
        delta_tensors, meta = encode_delta(base, current)
        assert meta["entries"]["new"]["mode"] == MODE_FULL
        rebuilt = apply_delta(base, delta_tensors, meta)
        assert np.array_equal(rebuilt["new"], current["new"])

    def test_removed_tensor_dropped(self, rng):
        base = {"old": np.ones(2), "keep": np.ones(3)}
        current = {"keep": np.ones(3)}
        delta_tensors, meta = encode_delta(base, current)
        assert meta["removed"] == ["old"]
        rebuilt = apply_delta(base, delta_tensors, meta)
        assert set(rebuilt) == {"keep"}

    def test_xor_mode_for_matching_tensors(self, rng):
        base = self._tensors(rng)
        current = {k: v.copy() for k, v in base.items()}
        _, meta = encode_delta(base, current)
        assert all(e["mode"] == MODE_XOR for e in meta["entries"].values())

    def test_apply_missing_base_tensor_rejected(self, rng):
        base = {"x": np.zeros(4)}
        delta_tensors, meta = encode_delta(base, {"x": np.ones(4)})
        with pytest.raises(SerializationError):
            apply_delta({}, delta_tensors, meta)

    def test_apply_base_shape_mismatch_rejected(self, rng):
        base = {"x": np.zeros(4)}
        delta_tensors, meta = encode_delta(base, {"x": np.ones(4)})
        with pytest.raises(SerializationError):
            apply_delta({"x": np.zeros(5)}, delta_tensors, meta)

    def test_malformed_meta_rejected(self):
        with pytest.raises(SerializationError):
            apply_delta({}, {}, {"entries": {"x": {"mode": "zip"}}, "removed": []})
        with pytest.raises(SerializationError):
            apply_delta({}, {}, None)

    def test_append_mode_for_grown_history(self, rng):
        base = {"history": rng.standard_normal(100)}
        current = {"history": np.concatenate([base["history"], [1.5, 2.5]])}
        delta_tensors, meta = encode_delta(base, current)
        assert meta["entries"]["history"]["mode"] == MODE_APPEND
        assert meta["entries"]["history"]["base_size"] == 100
        assert delta_tensors["history"].size == 2  # only the suffix stored
        rebuilt = apply_delta(base, delta_tensors, meta)
        assert np.array_equal(rebuilt["history"], current["history"])

    def test_append_requires_bitwise_prefix(self, rng):
        base = {"history": rng.standard_normal(100)}
        grown = np.concatenate([base["history"], [1.5]])
        grown[0] += 1e-12  # prefix no longer bitwise equal
        _, meta = encode_delta(base, {"history": grown})
        assert meta["entries"]["history"]["mode"] == MODE_FULL

    def test_append_preserves_dtype(self):
        base = {"steps": np.arange(5, dtype=np.int32)}
        current = {"steps": np.arange(8, dtype=np.int32)}
        delta_tensors, meta = encode_delta(base, current)
        assert meta["entries"]["steps"]["mode"] == MODE_APPEND
        rebuilt = apply_delta(base, delta_tensors, meta)
        assert rebuilt["steps"].dtype == np.int32
        assert np.array_equal(rebuilt["steps"], current["steps"])

    def test_append_apply_validates_base(self, rng):
        base = {"h": rng.standard_normal(10)}
        delta_tensors, meta = encode_delta(
            base, {"h": np.concatenate([base["h"], [1.0]])}
        )
        with pytest.raises(SerializationError):
            apply_delta({"h": np.zeros(9)}, delta_tensors, meta)
        with pytest.raises(SerializationError):
            apply_delta({}, delta_tensors, meta)

    def test_append_apply_validates_suffix_dtype(self, rng):
        base = {"h": rng.standard_normal(10)}
        delta_tensors, meta = encode_delta(
            base, {"h": np.concatenate([base["h"], [1.0]])}
        )
        bad = {"h": delta_tensors["h"].astype(np.float32)}
        with pytest.raises(SerializationError):
            apply_delta(base, bad, meta)

    def test_shrunk_history_stored_full(self, rng):
        base = {"h": rng.standard_normal(10)}
        current = {"h": base["h"][:6].copy()}
        _, meta = encode_delta(base, current)
        assert meta["entries"]["h"]["mode"] == MODE_FULL

    def test_small_parameter_moves_compress_well(self, rng):
        """The Fig. 5 premise: near-identical snapshots yield tiny deltas."""
        import zlib

        base = {"sv": haar_state(10, rng)}
        current = {"sv": base["sv"].copy()}
        current["sv"][:8] += 1e-9  # a few amplitudes nudged
        current["sv"] /= np.linalg.norm(current["sv"])
        delta_tensors, meta = encode_delta(base, current)
        delta_compressed = len(zlib.compress(delta_tensors["sv"].tobytes(), 6))
        full_compressed = len(
            zlib.compress(np.ascontiguousarray(current["sv"]).tobytes(), 6)
        )
        # Renormalization touches every amplitude, so the delta is not sparse
        # in general — but when only a few bytes differ it must beat full.
        assert delta_sparsity(delta_tensors, meta) >= 0.0
        assert delta_compressed <= full_compressed * 1.05
