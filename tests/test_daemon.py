"""Fleet daemon lifecycle: control plane, churn, reincarnation, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.service import (
    ChunkStore,
    DaemonAlreadyRunning,
    DaemonClient,
    DaemonConfig,
    FleetDaemon,
    WriterPool,
)
from repro.service.daemon import STATE_STOPPED
from repro.storage.memory import InMemoryBackend
from repro.storage.tiered import TieredBackend


def _tiny_spec(job_id: str, steps: int = 3, **overrides) -> dict:
    spec = {
        "job_id": job_id,
        "workload": "classifier",
        "target_steps": steps,
        "params": {"qubits": 2, "layers": 1, "samples": 16, "batch_size": 4},
    }
    spec.update(overrides)
    return spec


class _DaemonFixture:
    """One daemon serving in a background thread, plus its client."""

    def __init__(self, tmp_path, backend=None, **config):
        config.setdefault("tick_seconds", 0.002)
        self.backend = backend if backend is not None else InMemoryBackend()
        self.store = ChunkStore(self.backend, block_bytes=2048)
        self.pool = WriterPool(workers=2)
        self.control = tmp_path / "ctl"
        self.daemon = FleetDaemon(
            self.store,
            self.pool,
            self.control,
            config=DaemonConfig(**config),
        )
        self.thread = threading.Thread(target=self.daemon.serve, daemon=True)
        self.client = DaemonClient(self.control, timeout=30.0)

    def start(self) -> "DaemonClient":
        self.thread.start()
        self.client.ping()
        return self.client

    def wait_job(self, job_id: str, states=("finished",), timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.client.status(job_id)["jobs"][job_id]
            if status["state"] in states:
                return status
            time.sleep(0.01)
        raise AssertionError(
            f"job {job_id} never reached {states}; last: {status}"
        )

    def stop(self):
        if self.thread.is_alive():
            try:
                self.client.stop(timeout=10.0)
            except ConfigError:
                pass
            self.thread.join(timeout=10.0)
        self.pool.close()


@pytest.fixture
def fixture_factory(tmp_path):
    made = []

    def make(subdir: str = "d0", backend=None, **config):
        fixture = _DaemonFixture(tmp_path / subdir, backend=backend, **config)
        made.append(fixture)
        return fixture

    yield make
    for fixture in made:
        fixture.stop()


class TestLifecycle:
    def test_submit_run_finish_and_bitwise_store_state(self, fixture_factory):
        fixture = fixture_factory()
        client = fixture.start()
        response = client.submit(_tiny_spec("j1", steps=3))
        assert response["ok"], response
        status = fixture.wait_job("j1")
        assert status["final_step"] == 3
        assert status["preemptions"] == 0
        # The store holds a restorable checkpoint at the final step.
        snapshot = fixture.store.load_snapshot("j1")
        assert snapshot.step == 3

    def test_double_start_refused(self, fixture_factory, tmp_path):
        fixture = fixture_factory()
        fixture.start()
        second = FleetDaemon(
            fixture.store,
            fixture.pool,
            fixture.control,
            config=DaemonConfig(tick_seconds=0.002),
        )
        with pytest.raises(DaemonAlreadyRunning):
            second.serve()

    def test_start_allowed_after_stale_heartbeat(self, fixture_factory):
        fixture = fixture_factory(stale_after_seconds=1.0)
        client = fixture.start()
        # Kill the first daemon without a clean stop; its heartbeat goes
        # stale and a successor may claim the control directory.
        fixture.daemon._stop_requested = True
        fixture.thread.join(timeout=10.0)
        meta = client.daemon_meta()
        assert meta["state"] == STATE_STOPPED
        successor = FleetDaemon(
            fixture.store,
            fixture.pool,
            fixture.control,
            config=DaemonConfig(tick_seconds=0.002, max_ticks=5),
        )
        successor.serve()  # must not raise
        assert successor.tick >= 5

    def test_client_times_out_without_daemon(self, tmp_path):
        client = DaemonClient(tmp_path / "nobody", timeout=0.2)
        assert not client.is_alive()
        with pytest.raises(ConfigError, match="did not answer"):
            client.ping()

    def test_duplicate_active_job_and_unknown_workload_refused(
        self, fixture_factory
    ):
        fixture = fixture_factory()
        client = fixture.start()
        assert client.submit(_tiny_spec("j1", steps=50))["ok"]
        duplicate = client.submit(_tiny_spec("j1"))
        assert not duplicate["ok"] and "already active" in duplicate["error"]
        unknown = client.submit(_tiny_spec("j2", workload="nope"))
        assert not unknown["ok"] and "unknown workload" in unknown["error"]


class TestReincarnation:
    def test_status_after_preempt_and_reincarnation(self, fixture_factory):
        fixture = fixture_factory()
        client = fixture.start()
        client.submit(_tiny_spec("j1", steps=30))
        # Let it take a few steps (and checkpoints) first.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status = client.status("j1")["jobs"]["j1"]
            if (status["step"] or 0) >= 3:
                break
            time.sleep(0.01)
        response = client.preempt("j1", restart_delay_ticks=2)
        assert response["ok"] and response["preempted"] == ["j1"]
        status = fixture.wait_job("j1", states=("finished",))
        assert status["preemptions"] == 1
        assert status["restores"] == 1
        assert status["resumed_from_steps"], "reincarnation must restore"
        assert status["resumed_from_steps"][0] >= 1
        assert status["final_step"] == 30
        # Recovered work: the reincarnation resumed, it did not start over.
        assert status["lost_steps"] <= 2

    def test_restore_readahead_staged_during_restart_delay(
        self, fixture_factory
    ):
        backend = TieredBackend(
            InMemoryBackend(), InMemoryBackend(), fast_capacity_bytes=1 << 22
        )
        fixture = fixture_factory(backend=backend)
        client = fixture.start()
        client.submit(_tiny_spec("j1", steps=40))
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if (client.status("j1")["jobs"]["j1"]["step"] or 0) >= 2:
                break
            time.sleep(0.01)
        # A long restart delay: the daemon stages the restore meanwhile.
        response = client.preempt("j1", restart_delay_ticks=100)
        assert response["ok"]
        status = client.status("j1")["jobs"]["j1"]
        if status["state"] == "down":
            assert status["prefetching_restore"], (
                "preempted job should have its restore read-ahead in flight"
            )
        status = fixture.wait_job("j1")
        assert status["restores"] == 1 and status["final_step"] == 40

    def test_resubmitted_job_resumes_from_store(self, fixture_factory):
        fixture = fixture_factory()
        client = fixture.start()
        client.submit(_tiny_spec("j1", steps=3))
        fixture.wait_job("j1")
        # Same id, higher target: the fresh incarnation adopts the stored
        # step-3 checkpoint instead of starting over.
        response = client.submit(_tiny_spec("j1", steps=6))
        assert response["ok"], response
        assert response["resumed_from_step"] == 3
        status = fixture.wait_job("j1")
        assert status["final_step"] == 6


class _ExplodingTrainer:
    """Delegating trainer that crashes at a chosen step."""

    def __init__(self, inner, fail_at: int):
        self._inner = inner
        self._fail_at = fail_at

    def train_step(self):
        from repro.faults.injector import SimulatedFailure

        if self._inner.step_count + 1 >= self._fail_at:
            raise SimulatedFailure(self._inner.step_count + 1, "exploding")
        return self._inner.train_step()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestFailedJobs:
    def test_failed_job_parks_and_resubmission_gets_fresh_channel(
        self, fixture_factory
    ):
        fixture = fixture_factory()
        from repro.service.daemon import BUILTIN_WORKLOADS

        def exploding(params):
            inner_factory = BUILTIN_WORKLOADS["classifier"](params)
            return lambda: _ExplodingTrainer(inner_factory(), fail_at=2)

        fixture.daemon.register_workload("exploding", exploding)
        client = fixture.start()
        client.submit(_tiny_spec("boom", steps=10, workload="exploding"))
        status = fixture.wait_job("boom", states=("failed",))
        assert "exploding" in status["error"]
        # The daemon survived its job's crash and still serves requests.
        assert client.ping()["ok"]
        # Resubmitting the same id must get a clean channel (no stale queue
        # or pending error from the dead incarnation) and run to completion.
        response = client.submit(_tiny_spec("boom", steps=3))
        assert response["ok"], response
        status = fixture.wait_job("boom", states=("finished",))
        assert status["error"] is None
        assert status["final_step"] == 3

    def test_drain_compacts_placement_journal(self, tmp_path):
        import threading

        from repro.storage.placement import PlacementJournal
        from repro.storage.tiered import TieredBackend

        journal = PlacementJournal(
            InMemoryBackend(), "daemon-t", refresh_seconds=0.0
        )
        tier = TieredBackend(
            InMemoryBackend(),
            InMemoryBackend(),
            fast_capacity_bytes=1 << 22,
            journal=journal,
        )
        store = ChunkStore(tier, block_bytes=2048, placement_journal=journal)
        pool = WriterPool(workers=2)
        daemon = FleetDaemon(
            store,
            pool,
            tmp_path / "ctl",
            config=DaemonConfig(tick_seconds=0.002),
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        client = DaemonClient(tmp_path / "ctl", timeout=30.0)
        try:
            for i in range(3):
                client.submit(_tiny_spec(f"j{i}", steps=4))
            client.drain(wait=True, timeout=60.0)
        finally:
            thread.join(timeout=30.0)
            pool.close()
        # Every checkpoint appended pin/unpin records; the drain folded
        # them into one snapshot (+ lease bookkeeping), and pins survive.
        assert len(journal.records()) <= 3
        pinned = journal.pinned_names()
        for i in range(3):
            assert store.manifest_names(f"j{i}")[-1] in pinned


class TestDrain:
    def test_submit_while_draining_refused_then_drained(self, fixture_factory):
        fixture = fixture_factory()
        client = fixture.start()
        client.submit(_tiny_spec("j1", steps=15))
        response = client.drain(wait=False)
        assert response["state"] == "draining"
        refused = client.submit(_tiny_spec("j2"))
        assert not refused["ok"] and "draining" in refused["error"]
        # The already-running job still finishes before the daemon exits.
        client.drain(wait=True, timeout=60.0)
        fixture.thread.join(timeout=10.0)
        assert not fixture.thread.is_alive()
        assert fixture.store.load_snapshot("j1").step == 15

    def test_drain_with_no_jobs_stops_immediately(self, fixture_factory):
        fixture = fixture_factory()
        client = fixture.start()
        result = client.drain(wait=True, timeout=30.0)
        assert result["state"] == STATE_STOPPED
        fixture.thread.join(timeout=10.0)
        assert not fixture.thread.is_alive()
