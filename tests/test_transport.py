"""Control-plane transports: framing, file/socket parity, faults, scheduling.

The transport contract says the daemon cannot tell (and must not care) how a
request arrived — so the heart of this module is a *parity* test driving the
same request sequence through the file protocol and the TCP wire protocol
and demanding byte-identical responses.  Around it: the socket fault matrix
(truncated/oversized frames, bad auth, mid-response disconnects, concurrent
clients), the full daemon op set over TCP only, weighted scheduling shares,
the client's fail-fast on a dead daemon, and journal auto-compaction.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import uuid

import pytest

from repro.errors import ConfigError, TransportError
from repro.service import (
    ChunkStore,
    DaemonClient,
    DaemonConfig,
    DaemonUnavailable,
    FileTransport,
    FleetDaemon,
    SocketControlClient,
    SocketTransport,
    WriterPool,
)
from repro.service.transport import (
    FRAME_HEADER,
    PROTOCOL_VERSION,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend


def _tiny_spec(job_id: str, steps: int = 3, **overrides) -> dict:
    spec = {
        "job_id": job_id,
        "workload": "classifier",
        "target_steps": steps,
        "params": {"qubits": 2, "layers": 1, "samples": 16, "batch_size": 4},
    }
    spec.update(overrides)
    return spec


# ---------------------------------------------------------------------------
# Framing primitives
# ---------------------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "ping", "id": "x" * 12, "n": 7}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(FRAME_HEADER.pack(100) + b'{"op": "pi')
            a.close()
            with pytest.raises(TransportError, match="closed mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(FRAME_HEADER.pack(1 << 30))
            with pytest.raises(TransportError, match="exceeds"):
                recv_frame(b, max_frame_bytes=1 << 20)
        finally:
            a.close()
            b.close()

    def test_non_json_payload_raises(self):
        a, b = socket.socketpair()
        try:
            body = b"\xff\xfe not json"
            a.sendall(FRAME_HEADER.pack(len(body)) + body)
            with pytest.raises(TransportError, match="not JSON"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_raises(self):
        a, b = socket.socketpair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(FRAME_HEADER.pack(len(body)) + body)
            with pytest.raises(TransportError, match="JSON object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7777") == ("127.0.0.1", 7777)
        assert parse_address(("host", 5)) == ("host", 5)
        with pytest.raises(ConfigError, match="HOST:PORT"):
            parse_address("no-port-here")
        with pytest.raises(ConfigError, match="integer"):
            parse_address("host:seven")


# ---------------------------------------------------------------------------
# A deterministic handler served over both transports
# ---------------------------------------------------------------------------


class _ScriptedServer:
    """Serves a deterministic handler over any set of transports.

    Stands in for the daemon loop so parity tests compare *transports*,
    not scheduler timing: the handler's output depends only on the request.
    """

    def __init__(self, *transports):
        self.transports = transports
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    @staticmethod
    def handle(request: dict) -> dict:
        op = request.get("op")
        if op == "echo":
            return {"ok": True, "payload": request.get("payload")}
        if op == "sum":
            return {"ok": True, "total": sum(request.get("terms", []))}
        if op == "boom":
            raise ValueError("scripted failure")
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _loop(self):
        while not self._stop.is_set():
            handled = 0
            for transport in self.transports:
                for pending in transport.poll():
                    if pending.request is None:
                        response = {"ok": False, "error": "unreadable request"}
                    else:
                        try:
                            response = self.handle(pending.request)
                        except Exception as exc:  # noqa: BLE001 - mirrors daemon
                            response = {
                                "ok": False,
                                "error": f"{type(exc).__name__}: {exc}",
                            }
                    response["id"] = pending.request_id
                    pending.respond(response)
                    handled += 1
            if not handled:
                time.sleep(0.002)

    def __enter__(self):
        for transport in self.transports:
            transport.start()
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5.0)
        for transport in self.transports:
            transport.close()


def _file_roundtrip(control, body: dict, request_id: str) -> dict:
    """One raw file-protocol round trip with a chosen request id."""
    control.write(
        f"req-{request_id}.json",
        json.dumps(body, sort_keys=True).encode("utf-8"),
    )
    deadline = time.monotonic() + 10.0
    name = f"res-{request_id}.json"
    while time.monotonic() < deadline:
        if control.exists(name):
            response = json.loads(control.read(name).decode("utf-8"))
            control.delete(name)
            return response
        time.sleep(0.002)
    raise AssertionError(f"no response to {body}")


class TestTransportParity:
    # One sequence exercising success, structured data, handler crashes,
    # and unknown ops — everything an envelope can look like.
    SEQUENCE = [
        {"op": "echo", "payload": {"k": [1, 2, {"deep": "x"}]}},
        {"op": "sum", "terms": [1, 2, 3, 4]},
        {"op": "boom"},
        {"op": "nope"},
        {"op": "echo", "payload": None},
    ]

    def test_same_requests_byte_identical_responses(self, tmp_path):
        control = LocalDirectoryBackend(tmp_path / "ctl", fsync=False)
        file_transport = FileTransport(control)
        socket_transport = SocketTransport("127.0.0.1", 0)
        with _ScriptedServer(file_transport, socket_transport):
            sock_client = SocketControlClient(socket_transport.address)
            try:
                for i, body in enumerate(self.SEQUENCE):
                    request_id = f"parity{i:04d}"
                    via_file = _file_roundtrip(control, dict(body), request_id)
                    via_sock = sock_client.request({**body, "id": request_id})
                    file_bytes = json.dumps(via_file, sort_keys=True).encode()
                    sock_bytes = json.dumps(via_sock, sort_keys=True).encode()
                    assert file_bytes == sock_bytes, (
                        f"transport responses diverge for {body}"
                    )
            finally:
                sock_client.close()

    def test_unreadable_file_request_gets_error_envelope(self, tmp_path):
        control = LocalDirectoryBackend(tmp_path / "ctl", fsync=False)
        transport = FileTransport(control)
        with _ScriptedServer(transport):
            control.write("req-broken000.json", b"\xff not json")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if control.exists("res-broken000.json"):
                    break
                time.sleep(0.002)
            response = json.loads(control.read("res-broken000.json"))
            assert response == {
                "ok": False,
                "error": "unreadable request",
                "id": "broken000",
            }
            # The unreadable request was consumed, not re-served forever.
            assert not control.exists("req-broken000.json")


# ---------------------------------------------------------------------------
# Socket fault matrix
# ---------------------------------------------------------------------------


@pytest.fixture
def scripted_socket():
    transport = SocketTransport(
        "127.0.0.1",
        0,
        auth_token="hunter2",
        max_frame_bytes=4096,
        connection_timeout_seconds=5.0,
        response_timeout_seconds=5.0,
    )
    with _ScriptedServer(transport):
        yield transport


def _raw_conn(transport: SocketTransport) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", transport.port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _handshake(sock: socket.socket, token: str = "hunter2") -> dict:
    send_frame(sock, {"qckpt": PROTOCOL_VERSION, "token": token})
    return recv_frame(sock)


class TestSocketFaults:
    def test_bad_auth_token_refused(self, scripted_socket):
        sock = _raw_conn(scripted_socket)
        try:
            reply = _handshake(sock, token="wrong")
            assert reply == {"ok": False, "error": "bad auth token"}
            # The server hangs up after refusing; nothing more arrives.
            assert recv_frame(sock) is None
        finally:
            sock.close()
        assert scripted_socket.auth_failures == 1

    def test_missing_token_refused(self, scripted_socket):
        sock = _raw_conn(scripted_socket)
        try:
            send_frame(sock, {"qckpt": PROTOCOL_VERSION})
            reply = recv_frame(sock)
            assert reply["ok"] is False
        finally:
            sock.close()

    def test_wrong_protocol_version_refused(self, scripted_socket):
        sock = _raw_conn(scripted_socket)
        try:
            send_frame(sock, {"qckpt": 99, "token": "hunter2"})
            reply = recv_frame(sock)
            assert not reply["ok"] and "protocol" in reply["error"]
        finally:
            sock.close()

    def test_client_api_rejects_bad_token(self, scripted_socket):
        client = SocketControlClient(scripted_socket.address, token="nope")
        with pytest.raises(TransportError, match="bad auth token"):
            client.request({"op": "echo", "payload": 1})

    def test_oversized_frame_rejected_server_survives(self, scripted_socket):
        sock = _raw_conn(scripted_socket)
        try:
            assert _handshake(sock)["ok"]
            sock.sendall(FRAME_HEADER.pack(1 << 20))  # > max_frame_bytes=4096
            reply = recv_frame(sock)
            assert not reply["ok"] and "bad frame" in reply["error"]
            assert recv_frame(sock) is None  # connection closed after it
        finally:
            sock.close()
        # A fresh, well-behaved client is served as if nothing happened.
        client = SocketControlClient(scripted_socket.address, token="hunter2")
        try:
            assert client.request({"op": "sum", "terms": [2, 3]})["total"] == 5
        finally:
            client.close()

    def test_truncated_frame_server_survives(self, scripted_socket):
        sock = _raw_conn(scripted_socket)
        try:
            assert _handshake(sock)["ok"]
            sock.sendall(FRAME_HEADER.pack(512) + b'{"op": "ec')  # then die
        finally:
            sock.close()
        client = SocketControlClient(scripted_socket.address, token="hunter2")
        try:
            assert client.request({"op": "echo", "payload": "alive"})["ok"]
        finally:
            client.close()
        assert scripted_socket.frame_errors >= 1

    def test_disconnect_mid_request_server_survives(self, scripted_socket):
        sock = _raw_conn(scripted_socket)
        assert _handshake(sock)["ok"]
        send_frame(sock, {"op": "echo", "payload": "bye", "id": "gone000"})
        sock.close()  # gone before the response could be written
        client = SocketControlClient(scripted_socket.address, token="hunter2")
        try:
            assert client.request({"op": "echo", "payload": "here"})["ok"]
        finally:
            client.close()

    def test_concurrent_clients_all_served(self, scripted_socket):
        n_clients, n_requests = 6, 10
        failures = []

        def hammer(worker: int):
            client = SocketControlClient(
                scripted_socket.address, token="hunter2"
            )
            try:
                for i in range(n_requests):
                    request_id = uuid.uuid4().hex[:12]
                    response = client.request(
                        {
                            "op": "sum",
                            "terms": [worker, i],
                            "id": request_id,
                        }
                    )
                    if (
                        response.get("total") != worker + i
                        or response.get("id") != request_id
                    ):
                        failures.append((worker, i, response))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append((worker, repr(exc)))
            finally:
                client.close()

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures, failures
        assert scripted_socket.connections_accepted >= n_clients

    def test_connect_to_nobody_raises(self):
        client = SocketControlClient("127.0.0.1:1", timeout=1.0)
        with pytest.raises(TransportError, match="cannot connect"):
            client.request({"op": "ping"})

    def test_stale_buffered_error_frame_triggers_fresh_retry(self):
        """An un-correlated frame on a cached connection is not the answer.

        A server that idles out a connection leaves an id-less error
        envelope buffered in the client's socket.  The client must not
        hand that frame back as the response to its next (unrelated)
        request — it must drop the poisoned connection and retry once,
        fresh, exactly like any other stale-connection failure.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]
        answered = []

        def fake_server():
            # Connection 1: handshake, answer one request properly (this
            # makes it the client's *cached* connection), then emit an
            # id-less timeout envelope (mimicking
            # SocketTransport._try_error) and hard-close — the frame sits
            # buffered for whatever the client asks next.
            conn, _ = listener.accept()
            assert recv_frame(conn)["qckpt"] == PROTOCOL_VERSION
            send_frame(conn, {"ok": True, "protocol": PROTOCOL_VERSION})
            first = recv_frame(conn)
            send_frame(conn, {"ok": True, "id": first["id"], "pong": 0})
            send_frame(
                conn, {"ok": False, "error": "connection idle past timeout"}
            )
            conn.close()
            # Connection 2: the retry — serve it properly.
            conn, _ = listener.accept()
            assert recv_frame(conn)["qckpt"] == PROTOCOL_VERSION
            send_frame(conn, {"ok": True, "protocol": PROTOCOL_VERSION})
            request = recv_frame(conn)
            answered.append(request)
            send_frame(conn, {"ok": True, "id": request["id"], "pong": 1})
            conn.close()

        server = threading.Thread(target=fake_server, daemon=True)
        server.start()
        client = SocketControlClient(f"127.0.0.1:{port}", timeout=5.0)
        try:
            assert client.request({"op": "ping", "id": "primer000001"})[
                "pong"
            ] == 0
            # The cached connection now has the poisoned frame buffered;
            # this request must see it, drop the connection, and succeed
            # on a fresh one instead of returning the stale envelope.
            response = client.request({"op": "ping", "id": "realreq00001"})
            assert response == {"ok": True, "id": "realreq00001", "pong": 1}
            assert answered and answered[0]["id"] == "realreq00001"
        finally:
            client.close()
            listener.close()
            server.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The daemon over TCP only
# ---------------------------------------------------------------------------


class _SocketDaemonFixture:
    """A daemon serving file + socket; the test talks TCP exclusively."""

    def __init__(self, tmp_path, token="secret-token", **config):
        config.setdefault("tick_seconds", 0.002)
        self.store = ChunkStore(InMemoryBackend(), block_bytes=2048)
        self.pool = WriterPool(workers=2)
        self.daemon = FleetDaemon(
            self.store,
            self.pool,
            tmp_path / "ctl",
            config=DaemonConfig(**config),
            listen="127.0.0.1:0",
            auth_token=token,
        )
        self.thread = threading.Thread(target=self.daemon.serve, daemon=True)
        self.token = token
        self.client = None

    def start(self) -> DaemonClient:
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while self.daemon.socket_transport.port == 0:
            if time.monotonic() > deadline:
                raise AssertionError("socket transport never bound")
            time.sleep(0.002)
        self.client = DaemonClient(
            connect=self.daemon.listen_address,
            token=self.token,
            timeout=30.0,
        )
        self.client.ping()
        return self.client

    def wait_job(self, job_id: str, states=("finished",), timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.client.status(job_id)["jobs"][job_id]
            if status["state"] in states:
                return status
            time.sleep(0.01)
        raise AssertionError(
            f"job {job_id} never reached {states}; last: {status}"
        )

    def stop(self):
        if self.client is not None:
            if self.thread.is_alive():
                try:
                    self.client.stop(timeout=10.0)
                except (ConfigError, DaemonUnavailable):
                    pass
            self.client.close()
        self.thread.join(timeout=10.0)
        self.pool.close()


@pytest.fixture
def socket_daemon(tmp_path):
    fixture = _SocketDaemonFixture(tmp_path)
    yield fixture
    fixture.stop()


class TestSocketDaemon:
    def test_full_op_set_over_tcp(self, socket_daemon):
        """ping/submit/status/preempt/drain, all through the socket.

        The client never touches the control directory — this is the
        acceptance scenario for driving a daemon with no shared filesystem
        for control traffic.
        """
        client = socket_daemon.start()
        ping = client.ping()
        assert ping["ok"] and ping["state"] == "running"
        assert ping["daemon_id"] == socket_daemon.daemon.daemon_id

        assert client.submit(_tiny_spec("r1", steps=30))["ok"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if (client.status("r1")["jobs"]["r1"]["step"] or 0) >= 2:
                break
            time.sleep(0.01)
        preempted = client.preempt("r1", restart_delay_ticks=2)
        assert preempted["ok"] and preempted["preempted"] == ["r1"]
        status = socket_daemon.wait_job("r1")
        assert status["preemptions"] == 1
        assert status["restores"] == 1
        assert status["final_step"] == 30
        # Drain over the socket: the ack arrives over TCP and the client
        # observes completion as the daemon going unreachable.
        result = client.drain(wait=True, timeout=60.0)
        assert result["state"] == "stopped"
        socket_daemon.thread.join(timeout=10.0)
        assert not socket_daemon.thread.is_alive()
        assert socket_daemon.store.load_snapshot("r1").step == 30

    def test_stop_over_tcp(self, socket_daemon):
        client = socket_daemon.start()
        assert client.stop()["ok"]
        socket_daemon.thread.join(timeout=10.0)
        assert not socket_daemon.thread.is_alive()

    def test_file_transport_still_works_alongside(
        self, socket_daemon, tmp_path
    ):
        """Socket serving does not displace the file plane: both answer."""
        socket_daemon.start()
        file_client = DaemonClient(tmp_path / "ctl", timeout=10.0)
        assert file_client.ping()["ok"]
        assert file_client.is_alive()
        meta = file_client.daemon_meta()
        assert meta["listen"] == socket_daemon.daemon.listen_address
        assert meta["auth"] is True

    def test_wrong_token_is_daemon_unavailable(self, socket_daemon):
        socket_daemon.start()
        bad = DaemonClient(
            connect=socket_daemon.daemon.listen_address,
            token="not-it",
            timeout=5.0,
        )
        with pytest.raises(DaemonUnavailable, match="bad auth token"):
            bad.ping()
        assert not bad.is_alive()


# ---------------------------------------------------------------------------
# Weighted scheduling
# ---------------------------------------------------------------------------


class TestWeightedScheduling:
    def test_priority_2_gets_double_share_without_starvation(self, tmp_path):
        store = ChunkStore(InMemoryBackend(), block_bytes=2048)
        pool = WriterPool(workers=2)
        daemon = FleetDaemon(
            store,
            pool,
            tmp_path / "ctl",
            config=DaemonConfig(tick_seconds=0.002),
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        client = DaemonClient(tmp_path / "ctl", timeout=30.0)
        try:
            # Unreachable targets: both jobs stay runnable for the whole
            # measurement window, so shares are pure scheduler policy.
            assert client.submit(
                _tiny_spec("hi", steps=100000, priority=2,
                           checkpoint_every=1000)
            )["ok"]
            assert client.submit(
                _tiny_spec("lo", steps=100000, priority=1,
                           checkpoint_every=1000)
            )["ok"]
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                jobs = client.status()["jobs"]
                if jobs["lo"]["ticks_scheduled"] >= 30:
                    break
                time.sleep(0.01)
            jobs = client.status()["jobs"]
        finally:
            try:
                client.stop(timeout=10.0)
            except (ConfigError, DaemonUnavailable):
                pass
            thread.join(timeout=30.0)
            pool.close()
        hi, lo = jobs["hi"], jobs["lo"]
        assert hi["priority"] == 2 and lo["priority"] == 1
        # ~2x the ticks, with slack for the startup transient.
        ratio = hi["ticks_scheduled"] / lo["ticks_scheduled"]
        assert 1.6 <= ratio <= 2.4, (
            f"priority-2 share off target: {ratio:.2f}x "
            f"({hi['ticks_scheduled']} vs {lo['ticks_scheduled']})"
        )
        # Starvation protection: the low-priority job kept training.
        assert lo["steps_executed"] >= 30
        assert 0.0 < lo["sched_share"] < hi["sched_share"]
        assert abs(hi["sched_share"] + lo["sched_share"] - 1.0) < 1e-9

    def test_priority_validation(self):
        from repro.service import FleetJobSpec

        with pytest.raises(ConfigError, match="priority"):
            FleetJobSpec(
                job_id="x",
                trainer_factory=lambda: None,
                target_steps=1,
                priority=0,
            )


# ---------------------------------------------------------------------------
# Client fail-fast on a dead daemon
# ---------------------------------------------------------------------------


class TestStaleDaemonFailFast:
    def _write_meta(self, control, heartbeat: float, state: str = "running"):
        control.write(
            "daemon.json",
            json.dumps(
                {
                    "daemon_id": "daemon-dead00",
                    "pid": 424242,
                    "state": state,
                    "heartbeat": heartbeat,
                    "tick": 17,
                },
                sort_keys=True,
            ).encode("utf-8"),
        )

    def test_stale_heartbeat_fails_fast_naming_the_corpse(self, tmp_path):
        control = LocalDirectoryBackend(tmp_path / "ctl", fsync=False)
        self._write_meta(control, heartbeat=time.time() - 120.0)
        client = DaemonClient(control, timeout=30.0, stale_after_seconds=2.0)
        started = time.monotonic()
        with pytest.raises(DaemonUnavailable) as excinfo:
            client.ping()
        elapsed = time.monotonic() - started
        # Fail-fast: nowhere near the 30 s request timeout.
        assert elapsed < 5.0, f"stale daemon took {elapsed:.1f}s to surface"
        message = str(excinfo.value)
        assert "daemon-dead00" in message
        assert "424242" in message
        assert "heartbeat" in message
        # The abandoned request was cleaned up.
        assert not control.list("req-")

    def test_stopped_state_fails_fast(self, tmp_path):
        control = LocalDirectoryBackend(tmp_path / "ctl", fsync=False)
        self._write_meta(control, heartbeat=time.time(), state="stopped")
        client = DaemonClient(control, timeout=30.0)
        started = time.monotonic()
        with pytest.raises(DaemonUnavailable, match="stopped"):
            client.request("status", job=None)
        assert time.monotonic() - started < 5.0
        assert not control.list("req-")

    def test_no_meta_still_waits_for_a_late_daemon(self, tmp_path):
        # An empty control directory may belong to a daemon that has not
        # claimed it *yet* — the client must keep waiting (and time out
        # with the old error), not fail fast.
        client = DaemonClient(tmp_path / "virgin", timeout=0.4)
        with pytest.raises(ConfigError, match="did not answer"):
            client.ping()

    def test_fresh_heartbeat_is_not_stale(self, tmp_path):
        control = LocalDirectoryBackend(tmp_path / "ctl", fsync=False)
        self._write_meta(control, heartbeat=time.time())
        client = DaemonClient(control, timeout=0.6, stale_after_seconds=30.0)
        # Live-looking daemon that never answers: normal timeout path.
        with pytest.raises(ConfigError, match="did not answer"):
            client.ping()

    def test_client_needs_some_control_plane(self):
        with pytest.raises(ConfigError, match="control directory or"):
            DaemonClient()


# ---------------------------------------------------------------------------
# Journal auto-compaction during serve()
# ---------------------------------------------------------------------------


class TestJournalAutoCompaction:
    def test_journal_stays_bounded_while_serving(self, tmp_path):
        from repro.storage.placement import PlacementJournal
        from repro.storage.tiered import TieredBackend

        journal = PlacementJournal(
            InMemoryBackend(), "daemon-c", refresh_seconds=0.0
        )
        tier = TieredBackend(
            InMemoryBackend(),
            InMemoryBackend(),
            fast_capacity_bytes=1 << 22,
            journal=journal,
        )
        store = ChunkStore(tier, block_bytes=2048, placement_journal=journal)
        pool = WriterPool(workers=2)
        daemon = FleetDaemon(
            store,
            pool,
            tmp_path / "ctl",
            config=DaemonConfig(
                tick_seconds=0.002,
                heartbeat_seconds=0.05,
                stale_after_seconds=1.0,
                compact_journal_records=8,
            ),
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        client = DaemonClient(tmp_path / "ctl", timeout=30.0)
        try:
            # Every checkpoint appends pin/unpin records; 3 jobs x 8 steps
            # crosses the 8-record threshold repeatedly.
            for i in range(3):
                assert client.submit(_tiny_spec(f"j{i}", steps=8))["ok"]
            for i in range(3):
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    job = client.status(f"j{i}")["jobs"][f"j{i}"]
                    if job["state"] == "finished":
                        break
                    time.sleep(0.01)
                assert job["state"] == "finished", job
            # Let at least one heartbeat pass after the last save so the
            # cadence check observes the final record count.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if (
                    daemon.journal_compactions > 0
                    and len(journal.records()) <= 8 + 4
                ):
                    break
                time.sleep(0.02)
            assert daemon.journal_compactions > 0, (
                "serve() never compacted the journal"
            )
            # Bounded: threshold + a few records of post-compaction churn,
            # nowhere near the ~50 pin/unpin records the run generated.
            assert len(journal.records()) <= 8 + 4
            # Compaction preserved the placement facts: every job's newest
            # manifest is still pinned.
            pinned = journal.pinned_names()
            for i in range(3):
                assert store.manifest_names(f"j{i}")[-1] in pinned
        finally:
            try:
                client.stop(timeout=10.0)
            except (ConfigError, DaemonUnavailable):
                pass
            thread.join(timeout=30.0)
            pool.close()

    def test_zero_threshold_disables_cadence_compaction(self, tmp_path):
        from repro.storage.placement import PlacementJournal
        from repro.storage.tiered import TieredBackend

        journal = PlacementJournal(
            InMemoryBackend(), "daemon-z", refresh_seconds=0.0
        )
        tier = TieredBackend(
            InMemoryBackend(),
            InMemoryBackend(),
            fast_capacity_bytes=1 << 22,
            journal=journal,
        )
        store = ChunkStore(tier, block_bytes=2048, placement_journal=journal)
        pool = WriterPool(workers=2)
        daemon = FleetDaemon(
            store,
            pool,
            tmp_path / "ctl",
            config=DaemonConfig(
                tick_seconds=0.002,
                heartbeat_seconds=0.05,
                stale_after_seconds=1.0,
                compact_journal_records=0,
            ),
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        client = DaemonClient(tmp_path / "ctl", timeout=30.0)
        try:
            assert client.submit(_tiny_spec("j0", steps=8))["ok"]
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.status("j0")["jobs"]["j0"]["state"] == "finished":
                    break
                time.sleep(0.01)
            assert daemon.journal_compactions == 0
        finally:
            try:
                client.stop(timeout=10.0)
            except (ConfigError, DaemonUnavailable):
                pass
            thread.join(timeout=30.0)
            pool.close()


# ---------------------------------------------------------------------------
# Retried reconnect: one request id across reconnects; daemon-side dedup
# ---------------------------------------------------------------------------


class TestRetriedReconnect:
    def test_same_request_id_across_reconnect(self):
        """Regression: a reconnect must resend the SAME request id.

        The old race: the client regenerated the id on its fresh-connection
        retry, so a daemon that *had* read the first delivery (then lost the
        connection before answering) saw two distinct requests and applied
        the op twice.  With a retry policy the id is generated once before
        any attempt, making the resend deduplicable.
        """
        from repro.reliability import RetryPolicy

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]
        delivered_ids = []

        def dying_then_healthy_server():
            # Connection 1: handshake, READ the request (the daemon has now
            # seen it), then die without answering — the ambiguous window.
            conn, _ = listener.accept()
            assert recv_frame(conn)["qckpt"] == PROTOCOL_VERSION
            send_frame(conn, {"ok": True, "protocol": PROTOCOL_VERSION})
            request = recv_frame(conn)
            delivered_ids.append(request["id"])
            conn.close()
            # Connection 2: the policy-driven reconnect; answer properly.
            conn, _ = listener.accept()
            assert recv_frame(conn)["qckpt"] == PROTOCOL_VERSION
            send_frame(conn, {"ok": True, "protocol": PROTOCOL_VERSION})
            request = recv_frame(conn)
            delivered_ids.append(request["id"])
            send_frame(conn, {"ok": True, "id": request["id"], "applied": 1})
            conn.close()

        server = threading.Thread(target=dying_then_healthy_server, daemon=True)
        server.start()
        client = SocketControlClient(
            f"127.0.0.1:{port}",
            timeout=5.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter="none"),
        )
        try:
            response = client.request({"op": "preempt", "job": "j0"})
            assert response["applied"] == 1
            assert len(delivered_ids) == 2
            assert delivered_ids[0] == delivered_ids[1]  # the fix under test
        finally:
            client.close()
            listener.close()
            server.join(timeout=5.0)

    def test_without_policy_legacy_single_retry_still_works(self):
        """The conservative legacy regime is untouched when retry=None."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        def server_once():
            conn, _ = listener.accept()
            assert recv_frame(conn)["qckpt"] == PROTOCOL_VERSION
            send_frame(conn, {"ok": True, "protocol": PROTOCOL_VERSION})
            request = recv_frame(conn)
            send_frame(conn, {"ok": True, "id": request["id"], "pong": 1})
            conn.close()

        server = threading.Thread(target=server_once, daemon=True)
        server.start()
        client = SocketControlClient(f"127.0.0.1:{port}", timeout=5.0)
        try:
            assert client.request({"op": "ping"})["pong"] == 1
        finally:
            client.close()
            listener.close()
            server.join(timeout=5.0)


class TestDaemonIdempotency:
    def test_duplicate_request_id_replays_instead_of_reapplying(self):
        """A resent submit (same id) must not register the job twice."""
        control = InMemoryBackend()
        pool = WriterPool(workers=1)
        try:
            daemon = FleetDaemon(
                ChunkStore(InMemoryBackend(), block_bytes=2048),
                pool,
                control,
                config=DaemonConfig(tick_seconds=0.002),
            )
            daemon._claim_control()
            body = json.dumps(
                {"op": "submit", "spec": _tiny_spec("j0"), "id": "fixedid00001"},
                sort_keys=True,
            ).encode("utf-8")
            control.write("req-fixedid00001.json", body)
            assert daemon._poll_control() == 1
            first = json.loads(
                control.read("res-fixedid00001.json").decode("utf-8")
            )
            assert first["ok"] is True

            # The client never saw the response (crash/drop); it resends the
            # identical request.  Without dedup this would be "job exists".
            control.delete("res-fixedid00001.json")
            control.write("req-fixedid00001.json", body)
            assert daemon._poll_control() == 1
            replayed = json.loads(
                control.read("res-fixedid00001.json").decode("utf-8")
            )
            assert replayed == first  # byte-equal replay, not a re-apply
            assert daemon.duplicate_requests == 1
            assert list(daemon._jobs) == ["j0"]
        finally:
            pool.close()

    def test_distinct_ids_are_not_deduplicated(self):
        control = InMemoryBackend()
        pool = WriterPool(workers=1)
        try:
            daemon = FleetDaemon(
                ChunkStore(InMemoryBackend(), block_bytes=2048),
                pool,
                control,
                config=DaemonConfig(tick_seconds=0.002),
            )
            daemon._claim_control()
            for request_id in ("aaaaaaaaaaa1", "aaaaaaaaaaa2"):
                control.write(
                    f"req-{request_id}.json",
                    json.dumps(
                        {"op": "ping", "id": request_id}, sort_keys=True
                    ).encode("utf-8"),
                )
            assert daemon._poll_control() == 2
            assert daemon.duplicate_requests == 0
            assert daemon.requests_served == 2
        finally:
            pool.close()
