"""Unified telemetry layer: registry, tracing, logging, export, CLI surfaces.

Covers the ``repro.obs`` package plus the acceptance-critical integration
paths: a shared registry hammered from many threads stays consistent under
snapshot; one trace id follows a client request over the socket transport
into the daemon's span tree (pool task and backend write included), and the
context survives the reconnect-with-stable-request-id retry path; persisted
registry snapshots survive a daemon restart with an epoch bump instead of
silently resetting to zero (the stats-loss-on-reopen fix).
"""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

from repro.errors import ConfigError
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.obs.export import (
    BoundedJsonlWriter,
    ObsDir,
    store_obs_dir,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
    StatsView,
)
from repro.obs.trace import (
    MemoryTraceSink,
    capture_context,
    current_span,
    parse_context,
    set_trace_sink,
    span_scope,
    traced,
    wire_context,
)
from repro.reliability import RetryPolicy
from repro.service import (
    ChunkStore,
    DaemonClient,
    DaemonConfig,
    DaemonUnavailable,
    FleetDaemon,
    WriterPool,
)
from repro.service.transport import PROTOCOL_VERSION, recv_frame, send_frame
from repro.storage.memory import InMemoryBackend


@pytest.fixture(autouse=True)
def _clean_obs_globals():
    """No sink or log configuration leaks between tests."""
    previous = set_trace_sink(None)
    obs_log.reset()
    yield
    set_trace_sink(previous)
    obs_log.reset()


def _tiny_spec(job_id: str, steps: int = 2) -> dict:
    return {
        "job_id": job_id,
        "workload": "classifier",
        "target_steps": steps,
        "params": {"qubits": 2, "layers": 1, "samples": 16, "batch_size": 4},
    }


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("ops")
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.dec(2)
        assert gauge.value == 5.0
        hist = registry.histogram("lat")
        hist.observe(0.003)
        hist.observe(0.2)
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.203)
        assert hist.mean == pytest.approx(0.1015)
        assert hist.quantile(0.5) in DEFAULT_BUCKETS

    def test_labels_are_distinct_series_and_get_or_create(self):
        registry = MetricsRegistry(enabled=True)
        a = registry.counter("saves", job="a")
        b = registry.counter("saves", job="b")
        assert a is not b
        a.inc()
        assert b.value == 0.0
        assert registry.counter("saves", job="a") is a  # cached
        assert registry.find("saves", job="a") is a
        assert registry.find("saves", job="zzz") is None  # no create

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("x")
        with pytest.raises(ConfigError, match="already registered"):
            registry.histogram("x")

    def test_disabled_registry_is_null_and_snapshots_empty(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("ops")
        assert counter is NULL_INSTRUMENT
        counter.inc()
        counter.observe(1.0)
        assert counter.value == 0.0
        assert registry.snapshot()["series"] == []

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("QCKPT_METRICS", "0")
        assert not MetricsRegistry().enabled
        monkeypatch.setenv("QCKPT_METRICS", "1")
        assert MetricsRegistry().enabled

    def test_snapshot_is_deterministic_and_sorted(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("b").inc()
        registry.counter("a", job="j2").inc(2)
        registry.counter("a", job="j1").inc(3)
        registry.histogram("h").observe(0.01)
        snap1 = registry.snapshot()
        snap2 = registry.snapshot()
        assert snap1 == snap2
        names = [(s["name"], tuple(sorted(s["labels"].items())))
                 for s in snap1["series"]]
        assert names == sorted(names)
        hist = next(s for s in snap1["series"] if s["name"] == "h")
        assert hist["count"] == 1
        assert sum(hist["counts"]) == hist["count"]
        assert len(hist["counts"]) == len(hist["buckets"]) + 1

    def test_save_load_bumps_epoch_and_keeps_totals(self, tmp_path):
        first = MetricsRegistry(enabled=True)
        first.counter("saves").inc(5)
        first.histogram("lat").observe(0.01)
        path = tmp_path / "registry.json"
        first.save(path)

        second = MetricsRegistry(enabled=True)
        assert second.load(path)
        assert second.epoch == 2  # restart visible to rate readers
        second.counter("saves").inc(2)
        second.histogram("lat").observe(0.02)
        snap = second.snapshot()
        saves = next(s for s in snap["series"] if s["name"] == "saves")
        assert saves["value"] == 7.0  # cumulative across the restart
        lat = next(s for s in snap["series"] if s["name"] == "lat")
        assert lat["count"] == 2
        assert lat["sum"] == pytest.approx(0.03)
        assert sum(lat["counts"]) == 2

    def test_load_missing_or_garbage_is_false(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        assert not registry.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert not registry.load(bad)
        assert registry.epoch == 1

    def test_merge_gauge_live_value_wins(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("depth").set(3)
        registry.merge(
            {
                "series": [
                    {
                        "name": "depth",
                        "labels": {},
                        "type": "gauge",
                        "value": 99.0,
                    }
                ]
            }
        )
        snap = registry.snapshot()
        depth = next(s for s in snap["series"] if s["name"] == "depth")
        assert depth["value"] == 3.0


class TestStatsView:
    def test_view_over_hot_shared_registry_counts_from_zero(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("tier.fast_hits", tier="fast").inc(100)

        class View(StatsView):
            def __init__(self, metrics):
                super().__init__()
                self._bind(
                    "fast_hits",
                    metrics.counter("tier.fast_hits", tier="fast"),
                )

        view = View(registry)
        assert view.fast_hits == 0  # per-instance semantics preserved
        view.fast_hits += 2
        assert view.fast_hits == 2
        assert registry.counter("tier.fast_hits", tier="fast").value == 102.0
        view.fast_hits = 5
        assert view.fast_hits == 5

    def test_float_binding_and_plain_attributes(self):
        registry = MetricsRegistry(enabled=True)

        class View(StatsView):
            def __init__(self):
                super().__init__()
                self._bind(
                    "seconds", registry.counter("w.seconds"), as_int=False
                )
                self.last = None

        view = View()
        view.seconds += 0.25
        assert view.seconds == pytest.approx(0.25)
        assert isinstance(view.seconds, float)
        view.last = "plain"
        assert view.last == "plain"
        with pytest.raises(AttributeError):
            view.never_bound


class TestRegistryConcurrency:
    def test_hammered_histogram_stays_consistent_under_snapshot(self):
        """Workers + restore threads on ONE labeled histogram; snapshots
        taken mid-load must be internally consistent and the final count
        exact."""
        registry = MetricsRegistry(enabled=True)
        threads, per_thread = 8, 500
        start = threading.Barrier(threads + 1)
        inconsistent = []

        def worker(value: float) -> None:
            hist = registry.histogram("save.seconds", job="shared")
            start.wait()
            for _ in range(per_thread):
                hist.observe(value)
                registry.counter("saves", job="shared").inc()

        pool = [
            threading.Thread(target=worker, args=(0.001 * (i + 1),))
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        start.wait()
        for _ in range(50):  # snapshot *under* load
            snap = registry.snapshot()
            for series in snap["series"]:
                if series["type"] == "histogram":
                    if sum(series["counts"]) != series["count"]:
                        inconsistent.append(series)
        for thread in pool:
            thread.join()
        assert not inconsistent, "count/bucket totals tore under load"
        final = registry.histogram("save.seconds", job="shared")
        assert final.count == threads * per_thread
        assert (
            registry.counter("saves", job="shared").value
            == threads * per_thread
        )


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTrace:
    def test_fast_path_yields_none_when_tracing_off(self):
        with span_scope("noop") as span:
            assert span is None
        assert current_span() is None

    def test_nesting_shares_trace_id_and_parents(self):
        sink = MemoryTraceSink()
        set_trace_sink(sink)
        with span_scope("outer") as outer:
            with span_scope("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert current_span() is inner
            assert current_span() is outer
        records = sink.records()
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["trace"] == records[1]["trace"]

    def test_explicit_parent_beats_ambient(self):
        sink = MemoryTraceSink()
        set_trace_sink(sink)
        wire = {"trace_id": "t" * 16, "span_id": "s" * 8}
        with span_scope("ambient"):
            with span_scope("child", parent=wire) as child:
                assert child.trace_id == "t" * 16
                assert child.parent_id == "s" * 8

    def test_exception_marks_error_and_still_emits(self):
        sink = MemoryTraceSink()
        set_trace_sink(sink)
        with pytest.raises(ValueError):
            with span_scope("boom"):
                raise ValueError("nope")
        (record,) = sink.records()
        assert record["status"] == "error"
        assert current_span() is None  # stack unwound

    def test_traced_thread_hop_joins_the_submitting_trace(self):
        sink = MemoryTraceSink()
        set_trace_sink(sink)
        with span_scope("submit") as span:
            ctx = capture_context()
            assert ctx == span.context()
        ran = threading.Event()
        thread = threading.Thread(
            target=traced(ran.set, "pool.task", ctx, job="j")
        )
        thread.start()
        thread.join()
        assert ran.is_set()
        task = next(r for r in sink.records() if r["name"] == "pool.task")
        assert task["trace"] == span.trace_id
        assert task["parent"] == span.span_id
        assert task["attrs"]["job"] == "j"

    def test_wire_context_fresh_root_and_parse_validation(self):
        ctx = wire_context()  # no ambient span: a fresh root
        assert len(ctx["trace_id"]) == 16
        assert parse_context(ctx)["trace_id"] == ctx["trace_id"]
        assert parse_context(None) is None
        assert parse_context("junk") is None
        assert parse_context({"trace_id": ""}) is None
        assert parse_context({"trace_id": "t", "span_id": 7})["span_id"] == ""

    def test_memory_sink_is_bounded(self):
        sink = MemoryTraceSink(capacity=3)
        set_trace_sink(sink)
        for i in range(5):
            with span_scope(f"s{i}"):
                pass
        assert [r["name"] for r in sink.records()] == ["s2", "s3", "s4"]


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


class TestLogger:
    def test_level_threshold_and_key_value_format(self):
        stream = io.StringIO()
        obs_log.configure(level="info", stream=stream)
        logger = obs_log.get_logger("daemon")
        logger.debug("hidden", n=1)
        logger.info("transport-start", transport="socket", n=2)
        output = stream.getvalue()
        assert "hidden" not in output
        (line,) = output.splitlines()
        assert " INFO daemon transport-start " in line
        assert line.endswith("transport=socket n=2")

    def test_values_with_spaces_are_quoted(self):
        stream = io.StringIO()
        obs_log.configure(level="debug", stream=stream)
        obs_log.get_logger("cli").warning("oops", msg="two words")
        assert 'msg="two words"' in stream.getvalue()

    def test_ambient_trace_id_is_appended(self):
        stream = io.StringIO()
        obs_log.configure(level="debug", stream=stream)
        set_trace_sink(MemoryTraceSink())
        with span_scope("op") as span:
            obs_log.get_logger("store").info("saved")
        assert f"trace={span.trace_id}" in stream.getvalue()

    def test_env_level_and_reset(self, monkeypatch):
        monkeypatch.setenv("QCKPT_LOG", "debug")
        obs_log.reset()
        assert obs_log.threshold() == 10
        monkeypatch.delenv("QCKPT_LOG")
        obs_log.reset()
        assert obs_log.threshold() == 30  # default: warning

    def test_bad_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_log.configure(level="loud")


# ---------------------------------------------------------------------------
# Export: bounded JSONL + the obs directory
# ---------------------------------------------------------------------------


class TestExport:
    def test_bounded_writer_rotates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = BoundedJsonlWriter(path, max_bytes=200)
        for i in range(20):
            writer.append({"i": i, "pad": "x" * 40})
        assert path.exists()
        rotated = tmp_path / "log.jsonl.1"
        assert rotated.exists()
        assert path.stat().st_size <= 200
        # Every surviving line is intact JSON.
        for file in (path, rotated):
            for line in file.read_text().splitlines():
                json.loads(line)

    def test_obs_dir_roundtrip(self, tmp_path):
        obs = ObsDir(store_obs_dir(tmp_path))
        registry = MetricsRegistry(enabled=True)
        registry.counter("saves").inc(3)
        obs.save_registry(registry)
        obs.append_metrics(registry, daemon_id="d1")

        sink = obs.trace_sink()
        set_trace_sink(sink)
        with span_scope("op"):
            pass

        reopened = MetricsRegistry(enabled=True)
        assert obs.load_registry(reopened)
        assert reopened.epoch == 2
        record = json.loads(obs.metrics_path.read_text().splitlines()[0])
        assert record["kind"] == "metrics"
        assert record["daemon_id"] == "d1"
        assert any(s["name"] == "saves" for s in record["series"])
        span_record = json.loads(obs.trace_path.read_text().splitlines()[0])
        assert span_record["kind"] == "span"
        assert span_record["name"] == "op"


# ---------------------------------------------------------------------------
# Trace propagation: client -> socket -> daemon -> pool -> store
# ---------------------------------------------------------------------------


class TestTracePropagation:
    def test_single_trace_id_from_client_to_backend_write(self, tmp_path):
        """The acceptance path: a submit's trace id shows up on the
        daemon-side handling span, the pool task, and the store save."""
        sink = MemoryTraceSink(capacity=4096)
        set_trace_sink(sink)
        store = ChunkStore(InMemoryBackend(), block_bytes=2048)
        pool = WriterPool(workers=1, metrics=store.metrics)
        daemon = FleetDaemon(
            store,
            pool,
            tmp_path / "ctl",
            config=DaemonConfig(tick_seconds=0.002),
            listen="127.0.0.1:0",
            auth_token="hunter2",
        )
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while daemon.listen_address is None or ":0" in daemon.listen_address:
            assert time.monotonic() < deadline, "socket never bound"
            time.sleep(0.01)
        client = DaemonClient(
            connect=daemon.listen_address, token="hunter2", timeout=30.0
        )
        try:
            with span_scope("cli.submit") as root:
                response = client.submit(_tiny_spec("traced", steps=2))
            assert response["ok"]
            trace_id = root.trace_id
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                jobs = client.status()["jobs"]
                if jobs["traced"]["state"] == "finished":
                    break
                time.sleep(0.02)
        finally:
            try:
                client.stop(timeout=10.0)
            except (ConfigError, DaemonUnavailable):
                pass
            client.close()
            thread.join(timeout=30.0)
            pool.close()
        by_trace = [r for r in sink.records() if r["trace"] == trace_id]
        names = {r["name"] for r in by_trace}
        assert "client.submit" in names
        assert "daemon.submit" in names
        # The submit starts the job, whose first save rides the same trace
        # through the channel's thread hop onto the pool worker.
        assert "pool.task" in names
        assert "store.save" in names
        # And the tree is connected: daemon.submit is parented on the
        # client-side span that carried the wire context.
        daemon_span = next(r for r in by_trace if r["name"] == "daemon.submit")
        client_span = next(r for r in by_trace if r["name"] == "client.submit")
        assert daemon_span["parent"] == client_span["span"]
        assert daemon_span["attrs"]["transport"] == "socket"

    def test_trace_context_stable_across_reconnect(self):
        """The resent frame after a mid-request death carries the SAME
        trace context (it is part of the body the client rebuilds from),
        so the daemon-side tree never splits across retries."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]
        delivered = []

        def dying_then_healthy_server():
            conn, _ = listener.accept()
            assert recv_frame(conn)["qckpt"] == PROTOCOL_VERSION
            send_frame(conn, {"ok": True, "protocol": PROTOCOL_VERSION})
            delivered.append(recv_frame(conn))
            conn.close()  # die without answering
            conn, _ = listener.accept()
            assert recv_frame(conn)["qckpt"] == PROTOCOL_VERSION
            send_frame(conn, {"ok": True, "protocol": PROTOCOL_VERSION})
            request = recv_frame(conn)
            delivered.append(request)
            send_frame(conn, {"ok": True, "id": request["id"]})
            conn.close()

        server = threading.Thread(target=dying_then_healthy_server, daemon=True)
        server.start()
        client = DaemonClient(
            connect=f"127.0.0.1:{port}",
            timeout=5.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter="none"),
        )
        try:
            assert client.request("ping")["ok"]
        finally:
            client.close()
            listener.close()
            server.join(timeout=5.0)
        assert len(delivered) == 2
        first, second = delivered
        assert first["id"] == second["id"]
        assert first[obs_trace.TRACE_KEY] == second[obs_trace.TRACE_KEY]
        assert parse_context(first[obs_trace.TRACE_KEY]) is not None

    def test_file_transport_also_carries_trace(self, tmp_path):
        sink = MemoryTraceSink()
        set_trace_sink(sink)
        store = ChunkStore(InMemoryBackend(), block_bytes=2048)
        pool = WriterPool(workers=1)
        try:
            daemon = FleetDaemon(
                store, pool, tmp_path / "ctl",
                config=DaemonConfig(tick_seconds=0.002),
            )
            daemon._claim_control()
            with span_scope("cli.ping") as root:
                ctx = wire_context()
                body = json.dumps(
                    {"op": "ping", "id": "t" * 12, obs_trace.TRACE_KEY: ctx},
                    sort_keys=True,
                ).encode("utf-8")
            daemon.control.write("req-tttttttttttt.json", body)
            assert daemon._poll_control() == 1
            handled = next(
                r for r in sink.records() if r["name"] == "daemon.ping"
            )
            assert handled["trace"] == root.trace_id
            assert handled["attrs"]["transport"] == "file"
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Daemon metrics op + persistence across restart
# ---------------------------------------------------------------------------


class TestDaemonMetrics:
    def _serve(self, daemon):
        thread = threading.Thread(target=daemon.serve, daemon=True)
        thread.start()
        return thread

    def test_metrics_op_and_registry_survives_restart(self, tmp_path):
        obs_root = store_obs_dir(tmp_path)
        first_served = 0
        for incarnation in range(2):
            registry = MetricsRegistry(enabled=True)
            store = ChunkStore(
                InMemoryBackend(), block_bytes=2048, metrics=registry
            )
            pool = WriterPool(workers=1, metrics=registry)
            daemon = FleetDaemon(
                store,
                pool,
                tmp_path / "ctl",
                config=DaemonConfig(
                    tick_seconds=0.002, metrics_export_seconds=0.0
                ),
                metrics=registry,
                obs_dir=obs_root,
            )
            thread = self._serve(daemon)
            client = DaemonClient(tmp_path / "ctl", timeout=30.0)
            try:
                assert client.submit(
                    _tiny_spec(f"job{incarnation}", steps=2)
                )["ok"]
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    jobs = client.status()["jobs"]
                    if all(j["state"] == "finished" for j in jobs.values()):
                        break
                    time.sleep(0.02)
                response = client.request("metrics")
            finally:
                try:
                    client.stop(timeout=10.0)
                except (ConfigError, DaemonUnavailable):
                    pass
                thread.join(timeout=30.0)
                pool.close()
            assert response["ok"]
            assert response["epoch"] == incarnation + 1
            snapshot = response["metrics"]
            names = {s["name"] for s in snapshot["series"]}
            assert "save.seconds" in names
            assert "daemon.requests_served" in names
            assert "daemon.active_jobs" in names  # gauge refreshed on op
            assert response["dedup_ratio"] == store.stats.dedup_ratio
            assert "queues" in response
            served = next(
                s["value"]
                for s in snapshot["series"]
                if s["name"] == "daemon.requests_served"
            )
            if incarnation == 0:
                first_served = served
                # Per-job latency summary surfaces in status too.
                job_metrics = jobs["job0"]["metrics"]
                assert job_metrics["saves"] >= 1
                assert job_metrics["save_p99_seconds"] > 0.0
            else:
                # The second incarnation folded the persisted snapshot in:
                # cumulative, not reset (the stats-loss-on-reopen fix).
                assert served > first_served
                saves = [
                    s
                    for s in snapshot["series"]
                    if s["name"] == "save.seconds"
                ]
                assert {s["labels"]["job"] for s in saves} == {
                    "job0",
                    "job1",
                }
            assert (obs_root / "registry.json").exists()

    def test_requests_served_counts_from_zero_on_shared_registry(
        self, tmp_path
    ):
        registry = MetricsRegistry(enabled=True)
        registry.counter("daemon.requests_served").inc(50)
        store = ChunkStore(InMemoryBackend(), block_bytes=2048)
        pool = WriterPool(workers=1)
        try:
            daemon = FleetDaemon(
                store, pool, tmp_path / "ctl", metrics=registry
            )
            assert daemon.requests_served == 0
            daemon._c_requests.inc()
            assert daemon.requests_served == 1
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# CLI: qckpt metrics / qckpt top
# ---------------------------------------------------------------------------


class TestCliMetrics:
    def test_metrics_from_persisted_registry(self, tmp_path, capsys):
        from repro.cli import main

        registry = MetricsRegistry(enabled=True)
        registry.histogram("save.seconds", job="j0").observe(0.01)
        registry.counter("store.logical_bytes").inc(200)
        registry.counter("store.physical_bytes").inc(100)
        obs = ObsDir(store_obs_dir(tmp_path))
        obs.save_registry(registry)

        assert main(["metrics", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "dedup ratio: 2.00x" in output
        assert "j0" in output

        assert main(["metrics", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["dedup_ratio"] == pytest.approx(2.0)
        names = {s["name"] for s in payload["metrics"]["series"]}
        assert "save.seconds" in names

    def test_metrics_without_source_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["metrics"]) == 2
        assert "pick a source" in capsys.readouterr().err
        assert main(["metrics", str(tmp_path / "empty")]) == 2
        assert "no persisted metrics" in capsys.readouterr().err

    def test_top_requires_a_live_control_plane(self, capsys):
        from repro.cli import main

        assert main(["top", "--iterations", "1"]) == 2
        assert "live daemon" in capsys.readouterr().err
