"""Store scrub & repair: detection, quarantine, re-replication, fsck.

The headline guarantee under test: when at least one replica of every
damaged object survives, ``scrub`` repairs 100% of injected corruptions —
including the case where *every* chunk of one replica is corrupted — and
the repaired store restores bitwise.  ``fsck`` is the same walk read-only,
with a property test pinning "healthy store ⇒ zero findings".
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as qckpt_main
from repro.core.snapshot import TrainingSnapshot
from repro.service.chunkstore import ChunkStore
from repro.service.scrub import (
    QUARANTINE_PREFIX,
    StoreScrubber,
    scrub_store,
)
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.placement import PlacementJournal
from repro.storage.replicated import ReplicatedBackend
from repro.storage.sharded import ShardedBackend
from repro.storage.tiered import TieredBackend


def _snapshot(step: int, size: int = 192, seed: int | None = None) -> TrainingSnapshot:
    rng = np.random.default_rng(step if seed is None else seed)
    return TrainingSnapshot(
        step=step,
        params=rng.normal(size=size),
        optimizer_state={"lr": 0.01},
        rng_state={"seed": step},
        model_fingerprint="scrub-model",
    )


def _bitwise(a: TrainingSnapshot, b: TrainingSnapshot) -> bool:
    return a.step == b.step and a.params.tobytes() == b.params.tobytes()


def _replicated_store(block_bytes: int = 512):
    replica_a, replica_b = InMemoryBackend(), InMemoryBackend()
    backend = ReplicatedBackend([replica_a, replica_b], read_repair=False)
    return replica_a, replica_b, ChunkStore(backend, block_bytes=block_bytes)


class TestScrubRepairs:
    def test_every_chunk_of_one_replica_corrupted_full_repair(self):
        replica_a, replica_b, store = _replicated_store()
        snaps = [_snapshot(step) for step in (1, 2, 3)]
        for snap in snaps:
            store.save_snapshot("job", snap)
        chunks = replica_a.list("ch-")
        assert len(chunks) > 3
        for address in chunks:  # total rot of replica A's chunk payloads
            replica_a.write(address, b"rotten " + address.encode())

        report = scrub_store(store.backend, repair=True)
        assert report.repaired == len(chunks)  # 100% repaired
        assert report.quarantined == len(chunks)
        assert not report.unrestorable
        assert all(f.repaired for f in report.findings)

        # Repaired replica is byte-identical to the survivor again.
        for address in chunks:
            assert replica_a.read(address) == replica_b.read(address)
        # And the store restores bitwise through the repaired replica.
        _, restored, skipped = ChunkStore(store.backend).latest_valid("job")
        assert restored is not None and _bitwise(restored, snaps[-1])
        assert skipped == []
        # fsck confirms the heal (quarantine objects are evidence, not damage).
        assert scrub_store(store.backend, repair=False).clean

    def test_quarantine_preserves_the_corrupt_bytes(self):
        replica_a, _, store = _replicated_store()
        store.save_snapshot("job", _snapshot(1))
        address = sorted(replica_a.list("ch-"))[0]
        replica_a.write(address, b"evidence")
        report = scrub_store(store.backend, repair=True)
        finding = report.findings[0]
        assert finding.quarantined == f"{QUARANTINE_PREFIX}{address}"
        assert store.backend.read(finding.quarantined) == b"evidence"

    def test_damaged_manifest_repaired_from_replica(self):
        replica_a, _, store = _replicated_store()
        store.save_snapshot("job", _snapshot(1))
        manifest_name = replica_a.list("job-")[0]
        replica_a.write(manifest_name, b"{ not json")
        report = scrub_store(store.backend, repair=True)
        kinds = {f.kind for f in report.findings}
        assert kinds == {"damaged-manifest"}
        assert report.repaired == 1
        assert scrub_store(store.backend, repair=False).clean

    def test_no_surviving_copy_is_unrestorable_not_fabricated(self):
        replica_a, replica_b, store = _replicated_store()
        store.save_snapshot("job", _snapshot(1))
        address = sorted(replica_a.list("ch-"))[0]
        for replica in (replica_a, replica_b):
            replica.write(address, b"rot everywhere")
        report = scrub_store(store.backend, repair=True)
        corrupt = [f for f in report.findings if f.kind == "corrupt-chunk"]
        assert corrupt and not corrupt[0].repaired
        assert report.unrestorable  # the checkpoint is honestly reported lost
        # The corrupt copy was still quarantined for forensics.
        assert corrupt[0].quarantined is not None

    def test_missing_chunk_detected(self):
        replica_a, replica_b, store = _replicated_store()
        store.save_snapshot("job", _snapshot(1))
        address = sorted(replica_a.list("ch-"))[0]
        for replica in (replica_a, replica_b):
            replica.delete(address)
        report = scrub_store(store.backend, repair=True)
        assert any(f.kind == "missing-chunk" for f in report.findings)
        assert report.unrestorable

    def test_orphan_chunks_reported_never_deleted(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend, block_bytes=512)
        store.save_snapshot("job", _snapshot(1))
        backend.write("ch-" + "0" * 32, b"unreferenced")
        report = scrub_store(backend, repair=True)
        orphans = [f for f in report.findings if f.kind == "orphan-chunk"]
        assert len(orphans) == 1 and not orphans[0].repaired
        assert backend.exists("ch-" + "0" * 32)  # gc's job, not scrub's

    def test_corruption_inside_tiered_slow_tier_found(self):
        # A stale-but-valid fast tier would mask slow-tier rot from a plain
        # read(); the leaf walk must still find and fix it.
        fast, slow = InMemoryBackend(), InMemoryBackend()
        replica_b = InMemoryBackend()
        tiered = TieredBackend(fast, slow, fast_capacity_bytes=1 << 20)
        backend = ReplicatedBackend([tiered, replica_b], read_repair=False)
        store = ChunkStore(backend, block_bytes=512, tier_placement=False)
        store.save_snapshot("job", _snapshot(1))
        address = sorted(slow.list("ch-"))[0]
        slow.write(address, b"slow-tier rot")
        report = scrub_store(backend, repair=True)
        assert report.repaired >= 1
        assert slow.read(address) == replica_b.read(address)

    def test_scrub_under_sharded_replicas(self):
        shards_a = [InMemoryBackend() for _ in range(3)]
        shards_b = [InMemoryBackend() for _ in range(3)]
        backend = ReplicatedBackend(
            [ShardedBackend(shards_a), ShardedBackend(shards_b)],
            read_repair=False,
        )
        store = ChunkStore(backend, block_bytes=512)
        snap = _snapshot(1)
        store.save_snapshot("job", snap)
        for shard in shards_a:
            for address in shard.list("ch-"):
                shard.write(address, b"shard rot")
        report = scrub_store(backend, repair=True)
        assert report.repaired == report.chunks_checked > 0
        _, restored, _ = ChunkStore(backend).latest_valid("job")
        assert restored is not None and _bitwise(restored, snap)


class TestScrubLease:
    def test_repairing_scrub_skips_when_lease_held(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend, block_bytes=512)
        store.save_snapshot("job", _snapshot(1))
        journal_store = InMemoryBackend()
        holder = PlacementJournal(journal_store, owner="daemon-1")
        assert holder.acquire_lease("scrub")
        rival = PlacementJournal(journal_store, owner="scrubber-2")
        report = StoreScrubber(backend, repair=True, journal=rival).run()
        assert report.lease_holder == "daemon-1"
        assert not report.clean
        holder.release_lease("scrub")
        report = StoreScrubber(backend, repair=True, journal=rival).run()
        assert report.lease_holder is None

    def test_repaired_manifest_re_pinned(self):
        replica_a, _, store = _replicated_store()
        store.save_snapshot("job", _snapshot(1))
        manifest_name = replica_a.list("job-")[0]
        replica_a.write(manifest_name, b"torn")
        journal = PlacementJournal(InMemoryBackend(), owner="scrubber")
        report = StoreScrubber(
            store.backend, repair=True, journal=journal
        ).run()
        assert report.repaired == 1
        assert manifest_name in journal.pinned_names()

    def test_fsck_never_takes_the_lease(self):
        backend = InMemoryBackend()
        ChunkStore(backend, block_bytes=512).save_snapshot("job", _snapshot(1))
        journal_store = InMemoryBackend()
        holder = PlacementJournal(journal_store, owner="daemon-1")
        assert holder.acquire_lease("scrub")
        rival = PlacementJournal(journal_store, owner="fsck")
        report = StoreScrubber(backend, repair=False, journal=rival).run()
        assert report.clean  # read-only walk proceeds regardless of the lease


class TestFsckProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**16), min_size=1, max_size=4
        ),
        size=st.integers(min_value=8, max_value=512),
        jobs=st.integers(min_value=1, max_value=3),
    )
    def test_healthy_store_has_zero_findings(self, seeds, size, jobs):
        backend = InMemoryBackend()
        store = ChunkStore(backend, block_bytes=256)
        for job in range(jobs):
            for step, seed in enumerate(seeds, start=1):
                store.save_snapshot(
                    f"job{job}", _snapshot(step, size=size, seed=seed)
                )
        report = scrub_store(backend, repair=False)
        assert report.clean
        assert report.findings == []
        assert report.manifests_checked == jobs * len(seeds)
        assert report.chunks_checked > 0


class TestScrubCli:
    def _seed_dirs(self, tmp_path):
        dir_a, dir_b = tmp_path / "replA", tmp_path / "replB"
        replica_a = LocalDirectoryBackend(dir_a)
        replica_b = LocalDirectoryBackend(dir_b)
        store = ChunkStore(
            ReplicatedBackend([replica_a, replica_b], read_repair=False),
            block_bytes=512,
        )
        snap = _snapshot(1)
        store.save_snapshot("job", snap)
        return dir_a, dir_b, replica_a, snap

    def test_fsck_then_scrub_then_fsck(self, tmp_path, capsys):
        dir_a, dir_b, replica_a, _ = self._seed_dirs(tmp_path)
        address = sorted(replica_a.list("ch-"))[0]
        replica_a.write(address, b"cli rot")

        assert qckpt_main(["fsck", str(dir_a), str(dir_b)]) == 1
        assert "corrupt-chunk" in capsys.readouterr().out
        assert qckpt_main(["scrub", str(dir_a), str(dir_b)]) == 0
        assert "repaired" in capsys.readouterr().out
        assert qckpt_main(["fsck", str(dir_a), str(dir_b)]) == 0
        assert (dir_a / f"{QUARANTINE_PREFIX}{address}").exists()

    def test_fsck_healthy_single_dir(self, tmp_path, capsys):
        backend = LocalDirectoryBackend(tmp_path / "store")
        ChunkStore(backend, block_bytes=512).save_snapshot("job", _snapshot(1))
        assert qckpt_main(["fsck", str(tmp_path / "store")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_sharded_layout_detected(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        shards = [
            LocalDirectoryBackend(store_dir / f"shard-{i}") for i in range(2)
        ]
        ChunkStore(ShardedBackend(shards), block_bytes=512).save_snapshot(
            "job", _snapshot(1)
        )
        assert qckpt_main(["fsck", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_monolithic_store_redirected_to_verify(self, tmp_path, capsys):
        from repro.core.store import CheckpointStore

        backend = LocalDirectoryBackend(tmp_path / "mono")
        CheckpointStore(backend).save_full(_snapshot(1))
        assert qckpt_main(["fsck", str(tmp_path / "mono")]) == 2
        assert "qckpt verify" in capsys.readouterr().err
