"""Integration tests: whole-stack scenarios on a real filesystem."""

import numpy as np
import pytest

from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps
from repro.core.recovery import resume_trainer
from repro.core.store import CheckpointStore, RetentionPolicy
from repro.core.writer import AsyncCheckpointWriter
from repro.faults.harness import run_with_failures
from repro.faults.injector import CrashAtStep, PoissonStepFailures
from repro.ml.dataset import make_circles
from repro.ml.models import VariationalClassifier, VQEModel
from repro.ml.optimizers import Adam, RMSProp
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.observables import Hamiltonian
from repro.quantum.templates import hardware_efficient, strongly_entangling
from repro.storage.flaky import FlakyBackend
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend


class TestFilesystemWorkflow:
    def test_full_lifecycle_on_disk(self, tmp_path):
        """Train -> checkpoint to disk -> new process (fresh objects) ->
        resume -> verify bitwise continuation."""
        model = VQEModel(hardware_efficient(3, 2),
                         Hamiltonian.transverse_field_ising(3, 1.0, 0.7))
        config = TrainerConfig(seed=21, capture_statevector=True)

        def make_trainer():
            return Trainer(model, Adam(lr=0.08), config=config)

        reference = make_trainer()
        reference.run(20)

        backend = LocalDirectoryBackend(tmp_path / "ckpts")
        store = CheckpointStore(backend)
        first = make_trainer()
        manager = CheckpointManager(store, EveryKSteps(4), codec="zlib-6")
        first.run(11, hooks=[manager])
        del first, manager, store  # "process exit"

        store2 = CheckpointStore(LocalDirectoryBackend(tmp_path / "ckpts"))
        second = make_trainer()
        record = resume_trainer(second, store2)
        assert record.step == 8
        second.run(20 - second.step_count)
        assert np.array_equal(second.params, reference.params)

    def test_statevector_survives_disk_roundtrip(self, tmp_path):
        model = VQEModel(hardware_efficient(4, 2),
                         Hamiltonian.transverse_field_ising(4, 1.0, 0.9))
        trainer = Trainer(
            model,
            Adam(lr=0.05),
            config=TrainerConfig(seed=5, capture_statevector=True),
        )
        trainer.run(3)
        store = CheckpointStore(LocalDirectoryBackend(tmp_path / "s"))
        store.save_full(trainer.capture())
        loaded = store.load(store.latest().id)
        assert np.array_equal(loaded.statevector, model.statevector(trainer.params))

    def test_retention_and_delta_on_disk(self, tmp_path):
        model = VQEModel(hardware_efficient(3, 1),
                         Hamiltonian.transverse_field_ising(3, 1.0, 0.5))
        trainer = Trainer(model, RMSProp(lr=0.02), config=TrainerConfig(seed=1))
        store = CheckpointStore(LocalDirectoryBackend(tmp_path / "s"))
        manager = CheckpointManager(
            store,
            EveryKSteps(1),
            delta=True,
            full_every=5,
            retention=RetentionPolicy(keep_last=6),
        )
        trainer.run(20, hooks=[manager])
        assert len(store.records()) <= 7  # keep_last + pinned base
        loaded = store.load(store.latest().id)
        assert loaded == trainer.capture()
        # every surviving checkpoint must still restore
        assert all(ok for ok, _ in store.verify_all().values())


class TestCrashConsistency:
    def test_torn_manifest_write_recovers_previous_state(self, tmp_path):
        """A torn manifest would be catastrophic; atomic replace prevents it.
        Here we simulate the non-atomic case via FlakyBackend truncation and
        confirm the atomic LocalDirectoryBackend never produces it."""
        backend = LocalDirectoryBackend(tmp_path / "s")
        store = CheckpointStore(backend)
        from tests.test_snapshot import sample_snapshot

        store.save_full(sample_snapshot(step=1))
        store.save_full(sample_snapshot(step=2))
        # Reopen after every write: manifest always parses.
        reopened = CheckpointStore(LocalDirectoryBackend(tmp_path / "s"))
        assert len(reopened.records()) == 2

    def test_torn_object_write_skipped_by_recovery(self, memory_store):
        from tests.test_snapshot import sample_snapshot

        inner = InMemoryBackend()
        flaky = FlakyBackend(inner)
        store = CheckpointStore(flaky)
        store.save_full(sample_snapshot(step=1))
        # Arm truncation for the next object write (write #1 = payload).
        flaky.arm("truncate", fail_on_write=1, truncate_fraction=0.4)
        store.save_full(sample_snapshot(step=2))  # torn on the inner store
        from repro.core.recovery import RecoveryManager

        report = RecoveryManager(store).latest_valid()
        assert report.recovered
        assert report.record.step == 1
        assert report.skipped  # the torn step-2 object was detected

    def test_bitrot_on_disk_detected_and_skipped(self, tmp_path):
        from tests.test_snapshot import sample_snapshot

        backend = LocalDirectoryBackend(tmp_path / "s")
        store = CheckpointStore(backend)
        store.save_full(sample_snapshot(step=1))
        newest = store.save_full(sample_snapshot(step=2))
        path = tmp_path / "s" / newest.object_name
        blob = bytearray(path.read_bytes())
        blob[100] ^= 0x40
        path.write_bytes(bytes(blob))

        from repro.core.recovery import RecoveryManager

        report = RecoveryManager(CheckpointStore(backend)).latest_valid()
        assert report.recovered and report.record.step == 1


class TestEndToEndScenarios:
    def _classifier_factory(self, tmp_path=None):
        rng = np.random.default_rng(17)
        dataset = make_circles(24, rng, noise=0.05)
        model = VariationalClassifier(strongly_entangling(2, 1))

        def make():
            return Trainer(
                model,
                Adam(lr=0.1),
                dataset,
                TrainerConfig(batch_size=6, seed=9),
            )

        return make

    def test_poisson_failures_with_recovery_reach_target(self, memory_store):
        make = self._classifier_factory()
        result = run_with_failures(
            make,
            memory_store,
            lambda s: CheckpointManager(s, EveryKSteps(3)),
            target_steps=15,
            failure_hooks=[
                PoissonStepFailures(8.0, seed=2, fixed_step_seconds=1.0)
            ],
            max_failures=500,
        )
        assert result.final_step == 15
        reference = make()
        reference.run(15)
        final = memory_store.load(memory_store.latest().id)
        assert np.array_equal(final.params, reference.params)

    def test_checkpointing_wastes_less_than_none(self):
        make = self._classifier_factory()

        def run(strategy):
            store = CheckpointStore(InMemoryBackend())
            return run_with_failures(
                make,
                store,
                strategy,
                target_steps=12,
                failure_hooks=[CrashAtStep([5, 9])],
            )

        with_ckpt = run(lambda s: CheckpointManager(s, EveryKSteps(2)))
        without = run(None)
        assert with_ckpt.wasted_steps < without.wasted_steps

    def test_async_writer_under_crash_recovers_cleanly(self, memory_store):
        make = self._classifier_factory()

        def manager_factory(store):
            return CheckpointManager(
                store,
                EveryKSteps(2),
                writer=AsyncCheckpointWriter(max_pending=2),
            )

        result = run_with_failures(
            make,
            memory_store,
            manager_factory,
            target_steps=10,
            failure_hooks=[CrashAtStep(7)],
        )
        assert result.final_step == 10
        reference = make()
        reference.run(10)
        final = memory_store.load(memory_store.latest().id)
        assert np.array_equal(final.params, reference.params)

    def test_lossy_statevector_does_not_break_exact_params(self, memory_store):
        """Lossy transforms touch only the statevector cache; parameters and
        optimizer state restore bitwise."""
        model = VQEModel(hardware_efficient(4, 2),
                         Hamiltonian.transverse_field_ising(4, 1.0, 0.6))
        config = TrainerConfig(seed=31, capture_statevector=True)
        trainer = Trainer(model, Adam(lr=0.05), config=config)
        trainer.run(5)
        snapshot = trainer.capture()
        record = memory_store.save_full(
            snapshot, transforms={"statevector": "int8-block"}
        )
        loaded = memory_store.load(record.id)
        assert np.array_equal(loaded.params, snapshot.params)
        fid = abs(np.vdot(loaded.statevector, snapshot.statevector)) ** 2
        assert 0.999 < fid < 1.0  # lossy but close

        fresh = Trainer(model, Adam(lr=0.05), config=config)
        fresh.restore(loaded)
        trainer.run(5)
        fresh.run(5)
        assert np.array_equal(fresh.params, trainer.params)
