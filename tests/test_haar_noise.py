"""Unit tests for Haar sampling and stochastic noise channels."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum.circuit import Circuit
from repro.quantum.haar import (
    haar_state,
    haar_unitary,
    random_circuit,
    random_pauli_string,
)
from repro.quantum.noise import (
    NoiseModel,
    amplitude_damping_kraus,
    apply_kraus_channel,
    bit_flip_kraus,
    depolarizing_kraus,
    noisy_expectation,
    phase_flip_kraus,
    run_noisy,
)
from repro.quantum.observables import PauliString
from repro.quantum.statevector import zero_state


class TestHaar:
    def test_unitary_is_unitary(self, rng):
        for dim in (2, 4, 8):
            u = haar_unitary(dim, rng)
            assert np.allclose(u.conj().T @ u, np.eye(dim), atol=1e-10)

    def test_unitary_rejects_bad_dim(self, rng):
        with pytest.raises(CircuitError):
            haar_unitary(0, rng)

    def test_state_normalized(self, rng):
        assert np.isclose(np.linalg.norm(haar_state(5, rng)), 1.0)

    def test_states_differ_across_draws(self, rng):
        a, b = haar_state(3, rng), haar_state(3, rng)
        assert abs(np.vdot(a, b)) < 0.999

    def test_mean_fidelity_matches_haar_average(self):
        # E[|<a|b>|^2] over Haar pairs = 1/d.
        rng = np.random.default_rng(0)
        n, trials = 4, 300
        total = 0.0
        for _ in range(trials):
            total += abs(np.vdot(haar_state(n, rng), haar_state(n, rng))) ** 2
        assert abs(total / trials - 1 / 16) < 0.02

    def test_random_pauli_weight_bounds(self, rng):
        for _ in range(20):
            p = random_pauli_string(5, rng, max_weight=2)
            assert 1 <= len(p.paulis) <= 2

    def test_random_circuit_gate_count(self, rng):
        circuit = random_circuit(3, 25, rng)
        assert len(circuit) == 25

    def test_random_circuit_parametric_executes(self, rng):
        circuit = random_circuit(3, 10, rng, parametric=True)
        from repro.quantum.statevector import apply_circuit

        assert np.isclose(np.linalg.norm(apply_circuit(circuit)), 1.0)


class TestKrausSets:
    @pytest.mark.parametrize(
        "factory,p",
        [
            (bit_flip_kraus, 0.1),
            (phase_flip_kraus, 0.25),
            (depolarizing_kraus, 0.3),
            (amplitude_damping_kraus, 0.4),
        ],
    )
    def test_completeness_relation(self, factory, p):
        kraus = factory(p)
        total = sum(k.conj().T @ k for k in kraus)
        assert np.allclose(total, np.eye(2), atol=1e-12)

    def test_probability_validated(self):
        with pytest.raises(CircuitError):
            bit_flip_kraus(1.5)


class TestChannelApplication:
    def test_preserves_norm(self, rng):
        state = haar_state(3, rng)
        out = apply_kraus_channel(state, depolarizing_kraus(0.5), 1, rng)
        assert np.isclose(np.linalg.norm(out), 1.0)

    def test_bit_flip_p1_flips(self, rng):
        out = apply_kraus_channel(zero_state(1), bit_flip_kraus(1.0), 0, rng)
        assert np.isclose(abs(out[1]), 1.0)

    def test_bit_flip_p0_identity(self, rng):
        out = apply_kraus_channel(zero_state(1), bit_flip_kraus(0.0), 0, rng)
        assert np.isclose(abs(out[0]), 1.0)

    def test_amplitude_damping_keeps_ground_state(self, rng):
        out = apply_kraus_channel(
            zero_state(1), amplitude_damping_kraus(0.9), 0, rng
        )
        assert np.isclose(abs(out[0]), 1.0)

    def test_deterministic_given_seed(self):
        state = haar_state(2, np.random.default_rng(3))
        a = apply_kraus_channel(
            state, depolarizing_kraus(0.5), 0, np.random.default_rng(7)
        )
        b = apply_kraus_channel(
            state, depolarizing_kraus(0.5), 0, np.random.default_rng(7)
        )
        assert np.array_equal(a, b)


class TestNoiseModel:
    def test_trivial_detection(self):
        assert NoiseModel().is_trivial
        assert not NoiseModel(depolarizing=0.01).is_trivial

    def test_channels_only_enabled(self):
        model = NoiseModel(bit_flip=0.1, amplitude_damping=0.2)
        assert len(model.channels()) == 2

    def test_validation(self):
        with pytest.raises(CircuitError):
            NoiseModel(depolarizing=-0.1)

    def test_noiseless_run_matches_exact(self, rng):
        from repro.quantum.statevector import apply_circuit

        circuit = Circuit(2).h(0).cnot(0, 1)
        noisy = run_noisy(circuit, None, NoiseModel(), rng)
        assert np.allclose(noisy, apply_circuit(circuit))

    def test_noisy_run_normalized(self, rng):
        circuit = Circuit(2).h(0).cnot(0, 1).ry(1, 0.4)
        out = run_noisy(circuit, None, NoiseModel(depolarizing=0.05), rng)
        assert np.isclose(np.linalg.norm(out), 1.0)

    def test_depolarizing_degrades_expectation(self):
        # <Z0 Z1> on a Bell state is 1 exactly; strong noise pulls it toward 0.
        circuit = Circuit(2).h(0).cnot(0, 1)
        obs = PauliString.from_label("Z0 Z1")
        noisy = noisy_expectation(
            circuit,
            None,
            obs,
            NoiseModel(depolarizing=0.2),
            np.random.default_rng(5),
            trajectories=200,
        )
        assert noisy < 0.9

    def test_trajectories_validated(self, rng):
        with pytest.raises(CircuitError):
            noisy_expectation(
                Circuit(1).h(0),
                None,
                PauliString.from_label("Z0"),
                NoiseModel(),
                rng,
                trajectories=0,
            )
