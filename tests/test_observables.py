"""Unit tests for Pauli strings, Hamiltonians, and projectors."""

import numpy as np
import pytest

from repro.errors import ObservableError
from repro.quantum.circuit import Circuit
from repro.quantum.haar import haar_state
from repro.quantum.observables import Hamiltonian, PauliString, Projector
from repro.quantum.statevector import apply_circuit, zero_state


class TestPauliStringConstruction:
    def test_from_label(self):
        p = PauliString.from_label("X0 Z2", coeff=0.5)
        assert p.coeff == 0.5
        assert p.paulis == ((0, "X"), (2, "Z"))

    def test_from_label_identity(self):
        assert PauliString.from_label("I").is_identity
        assert PauliString.from_label("").is_identity

    def test_from_label_rejects_garbage(self):
        with pytest.raises(ObservableError):
            PauliString.from_label("Xq")

    def test_paulis_sorted_by_wire(self):
        p = PauliString(1.0, ((3, "Y"), (1, "X")))
        assert p.paulis == ((1, "X"), (3, "Y"))

    def test_identity_letters_dropped(self):
        p = PauliString(1.0, ((0, "I"), (1, "X")))
        assert p.paulis == ((1, "X"),)

    def test_duplicate_wire_rejected(self):
        with pytest.raises(ObservableError):
            PauliString(1.0, ((0, "X"), (0, "Y")))

    def test_bad_letter_rejected(self):
        with pytest.raises(ObservableError):
            PauliString(1.0, ((0, "Q"),))

    def test_negative_wire_rejected(self):
        with pytest.raises(ObservableError):
            PauliString(1.0, ((-1, "X"),))

    def test_label_rendering(self):
        assert PauliString.from_label("Z3 X1").label() == "X1 Z3"
        assert PauliString.identity().label() == "I"


class TestPauliAlgebra:
    def test_scalar_multiplication(self):
        p = 2.0 * PauliString.from_label("X0")
        assert p.coeff == 2.0

    def test_negation(self):
        assert (-PauliString.from_label("X0")).coeff == -1.0

    def test_addition_gives_hamiltonian(self):
        h = PauliString.from_label("X0") + PauliString.from_label("Z0")
        assert isinstance(h, Hamiltonian)
        assert len(h) == 2

    def test_compose_same_letter_gives_identity(self):
        p = PauliString.from_label("X0").compose(PauliString.from_label("X0"))
        assert p.is_identity and p.coeff == 1.0

    def test_compose_disjoint_wires(self):
        p = PauliString.from_label("X0").compose(PauliString.from_label("Z1"))
        assert p.paulis == ((0, "X"), (1, "Z"))

    def test_compose_xy_raises_imaginary(self):
        with pytest.raises(ObservableError, match="imaginary"):
            PauliString.from_label("X0").compose(PauliString.from_label("Y0"))

    def test_compose_xyz_cycle_real(self):
        # (X @ Y) @ Z = iZ @ Z -> i * I : imaginary, but (X@Y)@(Y@X) is real.
        xy_square = PauliString.from_label("X0 Y1").compose(
            PauliString.from_label("X0 Y1")
        )
        assert xy_square.is_identity

    def test_compose_matches_dense(self, rng):
        a = PauliString(0.7, ((0, "X"), (1, "Z")))
        b = PauliString(-1.3, ((1, "Z"), (2, "Y")))
        product = a.compose(b)
        dense = a.matrix(3) @ b.matrix(3)
        assert np.allclose(product.matrix(3), dense)

    def test_commutes_qubitwise(self):
        a = PauliString.from_label("X0 Z1")
        assert a.commutes_qubitwise(PauliString.from_label("X0"))
        assert not a.commutes_qubitwise(PauliString.from_label("Y0"))


class TestPauliEvaluation:
    def test_z_expectation_on_basis_states(self):
        z0 = PauliString.from_label("Z0")
        assert z0.expectation(zero_state(1)) == 1.0
        minus = apply_circuit(Circuit(1).x(0))
        assert z0.expectation(minus) == -1.0

    def test_x_expectation_on_plus(self):
        plus = apply_circuit(Circuit(1).h(0))
        assert np.isclose(PauliString.from_label("X0").expectation(plus), 1.0)

    def test_expectation_matches_dense(self, rng):
        state = haar_state(3, rng)
        p = PauliString(1.7, ((0, "X"), (2, "Y")))
        dense = float(np.real(np.vdot(state, p.matrix(3) @ state)))
        assert np.isclose(p.expectation(state), dense)

    def test_expectation_bounded_by_coeff(self, rng):
        p = PauliString(2.5, ((0, "Z"), (1, "X")))
        for _ in range(5):
            state = haar_state(3, rng)
            assert abs(p.expectation(state)) <= 2.5 + 1e-12

    def test_identity_expectation_is_coeff(self, rng):
        state = haar_state(2, rng)
        assert np.isclose(PauliString.identity(3.5).expectation(state), 3.5)

    def test_apply_out_of_range_wire(self):
        with pytest.raises(ObservableError):
            PauliString.from_label("Z5").apply(zero_state(2))

    def test_json_roundtrip(self):
        p = PauliString(0.25, ((1, "Y"), (4, "Z")))
        assert PauliString.from_json(p.to_json()) == p

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ObservableError):
            PauliString.from_json({"coeff": 1.0})


class TestHamiltonian:
    def test_from_terms(self):
        h = Hamiltonian.from_terms({"Z0": 1.0, "X0 X1": -0.5})
        assert len(h) == 2

    def test_expectation_is_sum_of_terms(self, rng):
        state = haar_state(2, rng)
        h = Hamiltonian.from_terms({"Z0": 0.3, "X1": -0.2})
        expected = 0.3 * PauliString.from_label("Z0").expectation(state) - (
            0.2 * PauliString.from_label("X1").expectation(state)
        )
        assert np.isclose(h.expectation(state), expected)

    def test_matrix_matches_term_sum(self):
        h = Hamiltonian.from_terms({"Z0": 1.0, "X0": 2.0})
        expected = PauliString.from_label("Z0").matrix(1) + 2 * PauliString.from_label(
            "X0"
        ).matrix(1)
        assert np.allclose(h.matrix(1), expected)

    def test_simplify_merges_duplicates(self):
        h = Hamiltonian(
            [PauliString.from_label("Z0", 1.0), PauliString.from_label("Z0", 2.0)]
        )
        simplified = h.simplify()
        assert len(simplified) == 1
        assert simplified.terms[0].coeff == 3.0

    def test_simplify_drops_cancelled_terms(self):
        h = Hamiltonian(
            [PauliString.from_label("X0", 1.0), PauliString.from_label("X0", -1.0)]
        )
        assert len(h.simplify()) == 0

    def test_algebra(self):
        h = Hamiltonian.from_terms({"Z0": 1.0})
        doubled = 2.0 * h
        assert doubled.terms[0].coeff == 2.0
        combined = h + PauliString.from_label("X0")
        assert len(combined) == 2

    def test_tfim_ground_energy_known_small_case(self):
        # Single qubit TFIM: H = -h X, ground energy = -h.
        h = Hamiltonian.transverse_field_ising(1, coupling=1.0, field=0.7)
        assert np.isclose(h.ground_energy(1), -0.7)

    def test_tfim_two_qubits_exact(self):
        # H = -ZZ - h(X1+X2): ground energy -sqrt(1 + 4h^2 + ...) checked densely.
        h = Hamiltonian.transverse_field_ising(2, 1.0, 1.0)
        eigs = np.linalg.eigvalsh(h.matrix(2))
        assert np.isclose(h.ground_energy(2), eigs[0])

    def test_heisenberg_term_count(self):
        h = Hamiltonian.heisenberg_chain(4)
        assert len(h) == 9  # 3 bonds * 3 letters

    def test_h2_minimal_ground_energy(self):
        h2 = Hamiltonian.h2_minimal()
        assert np.isclose(h2.ground_energy(2), -1.85727503, atol=1e-6)

    def test_qubitwise_commuting_groups_cover_all_terms(self):
        h = Hamiltonian.transverse_field_ising(4, 1.0, 0.5)
        groups = h.qubitwise_commuting_groups()
        assert sum(len(g) for g in groups) == len(h)
        # ZZ terms pairwise commute qubit-wise; X terms form their own group.
        assert len(groups) == 2

    def test_json_roundtrip(self):
        h = Hamiltonian.transverse_field_ising(3, 1.0, 0.5)
        restored = Hamiltonian.from_json(h.to_json())
        assert [t.paulis for t in restored] == [t.paulis for t in h]

    def test_ground_energy_via_expectation_bound(self, rng):
        h = Hamiltonian.transverse_field_ising(3, 1.0, 0.8)
        ground = h.ground_energy(3)
        for _ in range(5):
            assert h.expectation(haar_state(3, rng)) >= ground - 1e-10

    def test_repr_preview(self):
        text = repr(Hamiltonian.transverse_field_ising(6, 1.0, 1.0))
        assert "..." in text


class TestProjector:
    def test_expectation_is_fidelity(self, rng):
        target = haar_state(3, rng)
        other = haar_state(3, rng)
        projector = Projector(target)
        assert np.isclose(projector.expectation(target), 1.0)
        fid = abs(np.vdot(target, other)) ** 2
        assert np.isclose(projector.expectation(other), fid)

    def test_apply(self, rng):
        target = haar_state(2, rng)
        state = haar_state(2, rng)
        out = Projector(target).apply(state)
        assert np.allclose(out, np.vdot(target, state) * target)

    def test_normalizes_target(self):
        projector = Projector(np.array([2.0, 0.0], dtype=complex))
        assert np.isclose(np.linalg.norm(projector.target), 1.0)

    def test_rejects_zero_target(self):
        with pytest.raises(ObservableError):
            Projector(np.zeros(4, dtype=complex))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ObservableError):
            Projector(haar_state(2, rng)).expectation(haar_state(3, rng))
