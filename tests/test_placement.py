"""Placement journal: durable pins, cross-process coordination, leases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.snapshot import TrainingSnapshot
from repro.errors import ConfigError, StorageError
from repro.service.chunkstore import ChunkStore
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.placement import (
    LEASE_REBALANCE,
    PlacementJournal,
)
from repro.storage.tiered import TieredBackend


def _journal(backend, owner, **kwargs):
    kwargs.setdefault("refresh_seconds", 0.0)
    return PlacementJournal(backend, owner, **kwargs)


def _snapshot(step: int, elems: int = 512) -> TrainingSnapshot:
    rng = np.random.default_rng(1000 + step)
    return TrainingSnapshot(
        step=step,
        params=rng.standard_normal(32),
        optimizer_state={"name": "adam", "t": step},
        rng_state={"bit_generator": "PCG64", "state": {"state": step}},
        model_fingerprint="placement-test",
        statevector=rng.standard_normal(elems) + 1j * rng.standard_normal(elems),
    )


# ---------------------------------------------------------------------------
# Journal semantics
# ---------------------------------------------------------------------------


class TestJournalBasics:
    def test_pins_visible_across_instances(self):
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        b = _journal(backend, "b")
        a.pin("obj-1")
        assert b.is_pinned("obj-1")
        b.unpin("obj-1")
        assert not a.is_pinned("obj-1")

    def test_pins_survive_reopen(self):
        backend = InMemoryBackend()
        _journal(backend, "a").pin("obj-1")
        reopened = _journal(backend, "later")
        assert reopened.pinned_names() == {"obj-1"}

    def test_last_op_wins_across_owners(self):
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        b = _journal(backend, "b")
        a.pin("x")
        b.unpin("x")
        a.refresh()
        assert not a.is_pinned("x")
        a.pin("x")
        b.refresh()
        assert b.is_pinned("x")

    def test_idempotent_pin_appends_one_record(self):
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        a.pin("x")
        n = len(a.records())
        a.pin("x")
        assert len(a.records()) == n

    def test_bad_owner_rejected(self):
        with pytest.raises(StorageError):
            PlacementJournal(InMemoryBackend(), "bad/owner")
        with pytest.raises(ConfigError):
            PlacementJournal(InMemoryBackend(), "")

    def test_damaged_record_skipped(self):
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        a.pin("x")
        backend.write("plj-99999999-rot.json", b"\xff not json")
        reopened = _journal(backend, "b")
        assert reopened.pinned_names() == {"x"}


class TestLeases:
    def test_single_holder(self):
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        b = _journal(backend, "b")
        assert a.acquire_lease(LEASE_REBALANCE)
        assert not b.acquire_lease(LEASE_REBALANCE)
        assert b.lease_holder(LEASE_REBALANCE) == "a"
        a.release_lease(LEASE_REBALANCE)
        assert b.acquire_lease(LEASE_REBALANCE)
        assert a.lease_holder(LEASE_REBALANCE) == "b"

    def test_renewal_by_holder(self):
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        assert a.acquire_lease(LEASE_REBALANCE)
        assert a.acquire_lease(LEASE_REBALANCE)  # renew
        assert a.holds_lease(LEASE_REBALANCE)

    def test_expiry_allows_takeover(self):
        backend = InMemoryBackend()
        now = [1000.0]
        a = _journal(backend, "a", clock=lambda: now[0], lease_seconds=5.0)
        b = _journal(backend, "b", clock=lambda: now[0], lease_seconds=5.0)
        assert a.acquire_lease(LEASE_REBALANCE)
        assert not b.acquire_lease(LEASE_REBALANCE)
        now[0] += 10.0  # a's lease expires
        assert b.acquire_lease(LEASE_REBALANCE)
        assert a.lease_holder(LEASE_REBALANCE) == "b"

    def test_concurrent_claims_agree_on_one_winner(self):
        """Both claimants write, then both read back the same winner."""
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        b = _journal(backend, "b")
        # Simulate the race: both write their claim record before either
        # re-reads (bypassing the early-out check in acquire_lease).
        a._append({"op": "lease", "role": "r", "expires": a._clock() + 30})
        b._append({"op": "lease", "role": "r", "expires": b._clock() + 30})
        a.refresh()
        b.refresh()
        assert a.lease_holder("r") == b.lease_holder("r")
        holders = {a.holds_lease("r"), b.holds_lease("r")}
        assert holders == {True, False}


class TestCompaction:
    def test_compact_preserves_state_and_shrinks_log(self):
        backend = InMemoryBackend()
        a = _journal(backend, "a")
        for i in range(10):
            a.pin(f"obj-{i}")
        for i in range(0, 10, 2):
            a.unpin(f"obj-{i}")
        before = set(a.pinned_names())
        assert a.compact() > 0
        assert a.pinned_names() == before
        reopened = _journal(backend, "b")
        assert reopened.pinned_names() == before
        # One snapshot + the compact-lease release is all that remains.
        assert len(reopened.records()) <= 3


# ---------------------------------------------------------------------------
# TieredBackend integration: durable + cross-process pins
# ---------------------------------------------------------------------------


def _fill(tier: TieredBackend, prefix: str, count: int, size: int) -> None:
    for i in range(count):
        tier.write(f"{prefix}-{i:03d}", bytes([i % 251]) * size)


class TestDurablePins:
    def test_pin_lost_without_journal_after_reopen(self):
        """The bug: a reopened tier has forgotten its pins and evicts."""
        slow = InMemoryBackend()
        tier = TieredBackend(InMemoryBackend(), slow, fast_capacity_bytes=4096)
        tier.write("manifest", b"m" * 512)
        tier.pin("manifest")
        # Crash: the process dies; a new tier opens over the same slow store.
        reopened = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=4096
        )
        reopened.read("manifest")  # promoted, but no longer pinned
        _fill(reopened, "churn", 12, 512)  # eviction pressure
        assert "manifest" not in reopened.resident_objects()

    def test_journal_pin_survives_reopen_and_eviction(self):
        """The fix: journal pins are re-adopted and honoured after a crash."""
        slow = InMemoryBackend()
        journal_store = InMemoryBackend()
        journal = _journal(journal_store, "proc-1")
        tier = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=4096, journal=journal
        )
        tier.write("manifest", b"m" * 512)
        tier.pin("manifest")
        # Crash + reopen under a different process identity.
        journal2 = _journal(journal_store, "proc-2")
        reopened = TieredBackend(
            InMemoryBackend(),
            slow,
            fast_capacity_bytes=4096,
            journal=journal2,
        )
        # Adopted pins put the manifest back on the fast tier immediately.
        assert "manifest" in reopened.resident_objects()
        _fill(reopened, "churn", 12, 512)
        assert "manifest" in reopened.resident_objects()
        assert reopened.read("manifest") == b"m" * 512

    def test_chunkstore_manifest_restorable_after_crash_reopen_evict(self):
        """Regression: crash, reopen, evict — the job's newest manifest
        stays pinned (via the journal) and the checkpoint restores."""
        slow = InMemoryBackend()
        journal_store = InMemoryBackend()
        journal = _journal(journal_store, "daemon-a")
        tier = TieredBackend(
            InMemoryBackend(),
            slow,
            fast_capacity_bytes=1 << 16,
            journal=journal,
        )
        store = ChunkStore(tier, block_bytes=1024, placement_journal=journal)
        snapshot = _snapshot(3)
        store.save_snapshot("jobA", _snapshot(1))
        store.save_snapshot("jobA", snapshot)
        manifest = store.manifest_names("jobA")[-1]
        assert journal.is_pinned(manifest)

        # Crash: fast tier (memory) is gone; only slow store + journal live.
        journal2 = _journal(journal_store, "daemon-b")
        tier2 = TieredBackend(
            InMemoryBackend(),
            slow,
            fast_capacity_bytes=1 << 16,
            journal=journal2,
        )
        # The raw tier honours the pin before any ChunkStore adoption runs
        # (the window where the old code would evict the manifest).
        assert manifest in tier2.resident_objects()
        _fill(tier2, "churn", 40, 2048)
        assert manifest in tier2.resident_objects()

        store2 = ChunkStore(tier2, block_bytes=1024, placement_journal=journal2)
        restored = store2.load_snapshot("jobA")
        assert restored == snapshot

    def test_delete_clears_journal_pin(self):
        slow = InMemoryBackend()
        journal = _journal(InMemoryBackend(), "a")
        tier = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=4096, journal=journal
        )
        tier.write("manifest", b"m" * 100)
        tier.pin("manifest")
        tier.delete("manifest")
        assert not journal.is_pinned("manifest")


class TestCrossProcessPins:
    def test_other_process_pin_blocks_demote_and_eviction(self):
        slow = InMemoryBackend()
        journal_store = InMemoryBackend()
        ja = _journal(journal_store, "a")
        jb = _journal(journal_store, "b")
        ta = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=4096, journal=ja
        )
        tb = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=4096, journal=jb
        )
        ta.write("hot", b"h" * 256)
        ta.pin("hot")
        tb.read("hot")  # resident in B's fast tier too
        assert not tb.demote("hot"), "B must honour A's pin"
        _fill(tb, "churn", 20, 400)
        assert "hot" in tb.resident_objects()

    def test_two_process_pin_property(self, rng):
        """Two backends sharing one store never violate a journal pin.

        Random interleaving of pins, unpins, promotes, demotes, reads and
        eviction-pressure writes from two processes; after every operation,
        any journal-pinned name that was resident in a tier must still be
        resident there (residency may only end via an explicit unpin).
        """
        slow = InMemoryBackend()
        journal_store = InMemoryBackend()
        journals = {
            "a": _journal(journal_store, "a"),
            "b": _journal(journal_store, "b"),
        }
        tiers = {
            key: TieredBackend(
                InMemoryBackend(),
                slow,
                fast_capacity_bytes=4096,
                journal=journals[key],
            )
            for key in journals
        }
        names = [f"obj-{i:02d}" for i in range(12)]
        for i, name in enumerate(names):
            slow.write(name, bytes([i]) * 300)
        pinned: set = set()
        resident_pinned = {key: set() for key in tiers}

        for step in range(300):
            key = ("a", "b")[int(rng.integers(0, 2))]
            tier = tiers[key]
            name = names[int(rng.integers(0, len(names)))]
            op = int(rng.integers(0, 6))
            if op == 0 and len(pinned) < 8:
                try:
                    tier.pin(name)
                    pinned.add(name)
                except StorageError:
                    pass
            elif op == 1 and pinned:
                victim = sorted(pinned)[int(rng.integers(0, len(pinned)))]
                tier.unpin(victim)
                pinned.discard(victim)
                for tracked in resident_pinned.values():
                    tracked.discard(victim)
            elif op == 2:
                tier.promote(name)
            elif op == 3:
                demoted = tier.demote(name)
                assert not (demoted and name in pinned), (
                    f"{key} demoted pinned {name} at step {step}"
                )
            elif op == 4:
                tier.write(f"churn-{step}", b"c" * 600)
            else:
                tier.read(name)
            # The invariant: pinned + resident stays resident.
            for tier_key, tracked in resident_pinned.items():
                current = set(tiers[tier_key].resident_objects())
                for pinned_name in tracked:
                    assert pinned_name in current, (
                        f"pin violated: {pinned_name} evicted from "
                        f"{tier_key} at step {step}"
                    )
                resident_pinned[tier_key] = {
                    n for n in pinned if n in current
                }


class TestRebalanceLease:
    def test_rebalance_requires_lease(self, tmp_path):
        slow = LocalDirectoryBackend(tmp_path / "slow")
        journal_store = LocalDirectoryBackend(tmp_path / "journal")
        ja = _journal(journal_store, "daemon-a")
        jb = _journal(journal_store, "daemon-b")
        store_a = ChunkStore(
            TieredBackend(
                InMemoryBackend(), slow, fast_capacity_bytes=1 << 20, journal=ja
            ),
            block_bytes=1024,
            placement_journal=ja,
        )
        store_b = ChunkStore(
            TieredBackend(
                InMemoryBackend(), slow, fast_capacity_bytes=1 << 20, journal=jb
            ),
            block_bytes=1024,
            placement_journal=jb,
        )
        store_a.save_snapshot("j1", _snapshot(1))
        store_a.save_snapshot("j1", _snapshot(2))
        # Daemon A holds the lease: B's sweep must refuse and name A.
        assert ja.acquire_lease(LEASE_REBALANCE)
        moves = store_b.rebalance_tiers()
        assert moves["promoted"] == 0 and moves["demoted"] == 0
        assert moves["lease_holder"] == "daemon-a"
        # A releases; B's sweep now runs (and leaves the lease free after).
        ja.release_lease(LEASE_REBALANCE)
        moves = store_b.rebalance_tiers()
        assert "lease_holder" not in moves
        assert jb.lease_holder(LEASE_REBALANCE) is None
