"""Unit tests for recovery and the checkpoint manager hook."""

import numpy as np
import pytest

from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps, FixedTimeInterval
from repro.core.recovery import RecoveryManager, resume_trainer
from repro.core.store import CheckpointStore, RetentionPolicy
from repro.core.writer import AsyncCheckpointWriter
from repro.errors import (
    CheckpointNotFoundError,
    ConfigError,
    IncompatibleCheckpointError,
)
from repro.faults.injector import SimulatedClock
from repro.storage.memory import InMemoryBackend
from tests.test_snapshot import sample_snapshot
from tests.test_trainer import make_classifier_trainer, make_vqe_trainer


def _corrupt(store, record):
    data = bytearray(store.backend.read(record.object_name))
    data[len(data) // 2] ^= 0xFF
    store.backend.write(record.object_name, bytes(data))


class TestRecoveryManager:
    def test_latest_valid_simple(self, memory_store):
        memory_store.save_full(sample_snapshot(step=1))
        newest = memory_store.save_full(sample_snapshot(step=2))
        report = RecoveryManager(memory_store).latest_valid()
        assert report.recovered
        assert report.record.id == newest.id
        assert report.skipped == []

    def test_falls_back_over_damaged_newest(self, memory_store):
        memory_store.save_full(sample_snapshot(step=1))
        newest = memory_store.save_full(sample_snapshot(step=2))
        _corrupt(memory_store, newest)
        report = RecoveryManager(memory_store).latest_valid()
        assert report.recovered
        assert report.record.step == 1
        assert report.skipped[0][0] == newest.id

    def test_all_damaged_reports_everything(self, memory_store):
        for step in (1, 2):
            record = memory_store.save_full(sample_snapshot(step=step))
            _corrupt(memory_store, record)
        report = RecoveryManager(memory_store).latest_valid()
        assert not report.recovered
        assert len(report.skipped) == 2

    def test_empty_store(self, memory_store):
        report = RecoveryManager(memory_store).latest_valid()
        assert not report.recovered

    def test_damaged_delta_base_skips_chain(self, memory_store):
        base_snapshot = sample_snapshot(step=1)
        base = memory_store.save_full(base_snapshot)
        nxt = base_snapshot.copy()
        nxt.step = 2
        memory_store.save_delta(nxt, base.id)
        independent = memory_store.save_full(sample_snapshot(step=0))
        _corrupt(memory_store, base)
        report = RecoveryManager(memory_store).latest_valid()
        # both chain members are now unreadable; only the independent survives
        assert report.recovered
        assert report.record.id == independent.id
        assert len(report.skipped) == 2


class TestResumeTrainer:
    def test_resume_restores_progress(self, memory_store):
        trainer = make_vqe_trainer()
        trainer.run(6)
        memory_store.save_full(trainer.capture())

        fresh = make_vqe_trainer()
        record = resume_trainer(fresh, memory_store)
        assert record is not None
        assert fresh.step_count == 6
        assert np.array_equal(fresh.params, trainer.params)

    def test_resume_empty_store_returns_none(self, memory_store):
        assert resume_trainer(make_vqe_trainer(), memory_store) is None

    def test_resume_required_raises(self, memory_store):
        with pytest.raises(CheckpointNotFoundError):
            resume_trainer(make_vqe_trainer(), memory_store, required=True)

    def test_resume_wrong_model_raises(self, memory_store):
        vqe = make_vqe_trainer()
        vqe.run(2)
        memory_store.save_full(vqe.capture())
        with pytest.raises(IncompatibleCheckpointError):
            resume_trainer(make_classifier_trainer(), memory_store)


class TestCheckpointManager:
    def test_policy_drives_saves(self, memory_store):
        trainer = make_vqe_trainer()
        manager = CheckpointManager(memory_store, EveryKSteps(4))
        trainer.run(12, hooks=[manager])
        assert [r.step for r in memory_store.records()] == [4, 8, 12]

    def test_stats_accounting(self, memory_store):
        trainer = make_vqe_trainer()
        manager = CheckpointManager(memory_store, EveryKSteps(5))
        trainer.run(10, hooks=[manager])
        assert manager.stats.full_saves == 2
        assert manager.stats.delta_saves == 0
        assert manager.stats.bytes_written == memory_store.total_bytes()
        assert manager.stats.saves == 2
        assert manager.stats.mean_save_seconds >= 0

    def test_delta_cadence(self, memory_store):
        trainer = make_vqe_trainer()
        manager = CheckpointManager(
            memory_store, EveryKSteps(1), delta=True, full_every=4
        )
        trainer.run(8, hooks=[manager])
        kinds = [r.kind for r in memory_store.records()]
        assert kinds == [
            "full", "delta", "delta", "delta",
            "full", "delta", "delta", "delta",
        ]

    def test_delta_checkpoints_restore_exactly(self, memory_store):
        trainer = make_vqe_trainer()
        manager = CheckpointManager(
            memory_store, EveryKSteps(1), delta=True, full_every=3
        )
        trainer.run(7, hooks=[manager])
        loaded = memory_store.load(memory_store.latest().id)
        assert loaded == trainer.capture()

    def test_retention_applied_after_save(self, memory_store):
        trainer = make_vqe_trainer()
        manager = CheckpointManager(
            memory_store,
            EveryKSteps(1),
            retention=RetentionPolicy(keep_last=2),
        )
        trainer.run(6, hooks=[manager])
        assert len(memory_store.records()) == 2

    def test_lossy_delta_combination_rejected(self, memory_store):
        with pytest.raises(ConfigError, match="lossless"):
            CheckpointManager(
                memory_store,
                delta=True,
                transforms={"statevector": "f16-pair"},
            )

    def test_full_every_validated(self, memory_store):
        with pytest.raises(ConfigError):
            CheckpointManager(memory_store, full_every=0)

    def test_async_writer_integration(self, memory_store):
        trainer = make_vqe_trainer()
        writer = AsyncCheckpointWriter(max_pending=2)
        manager = CheckpointManager(
            memory_store, EveryKSteps(2), writer=writer
        )
        trainer.run(8, hooks=[manager])  # on_run_end drains
        manager.close()
        assert [r.step for r in memory_store.records()] == [2, 4, 6, 8]
        loaded = memory_store.load(memory_store.latest().id)
        assert np.array_equal(loaded.params, trainer.params)

    def test_time_based_policy_with_fake_clock(self, memory_store):
        clock = SimulatedClock()
        trainer = make_vqe_trainer()
        policy = FixedTimeInterval(10.0, clock=clock)
        manager = CheckpointManager(memory_store, policy, clock=clock)

        class Ticker:
            def on_step_end(self, trainer, info):
                clock.advance(3.0)

        trainer.run(10, hooks=[Ticker(), manager])
        # 10 steps x 3s = 30s; interval 10s -> roughly 3 saves
        assert 2 <= len(memory_store.records()) <= 4

    def test_manual_save(self, memory_store):
        trainer = make_vqe_trainer()
        trainer.run(3)
        manager = CheckpointManager(memory_store)
        manager.save(trainer.capture())
        assert memory_store.latest().step == 3

    def test_snapshot_isolated_from_later_training(self, memory_store):
        trainer = make_vqe_trainer()
        manager = CheckpointManager(memory_store, EveryKSteps(2))
        trainer.run(2, hooks=[manager])
        saved_params = memory_store.load(memory_store.latest().id).params.copy()
        trainer.run(4)
        assert np.array_equal(
            memory_store.load(memory_store.latest().id).params, saved_params
        )
