"""Unit tests for the trainer: determinism, capture/restore, hooks."""

import numpy as np
import pytest

from repro.errors import ConfigError, IncompatibleCheckpointError
from repro.ml.dataset import make_moons
from repro.ml.models import VariationalClassifier, VQEModel
from repro.ml.optimizers import Adam, SGD
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.observables import Hamiltonian
from repro.quantum.templates import hardware_efficient


def make_classifier_trainer(seed=11, shots=None, lr=0.05):
    rng = np.random.default_rng(7)
    dataset = make_moons(24, rng, noise=0.1)
    model = VariationalClassifier(hardware_efficient(2, 1))
    config = TrainerConfig(batch_size=6, seed=seed, shots=shots)
    return Trainer(model, Adam(lr=lr), dataset, config)


def make_vqe_trainer(seed=3, capture_statevector=False):
    model = VQEModel(hardware_efficient(2, 2), Hamiltonian.h2_minimal())
    config = TrainerConfig(seed=seed, capture_statevector=capture_statevector)
    return Trainer(model, Adam(lr=0.1), config=config)


class RecordingHook:
    def __init__(self):
        self.events = []

    def on_run_start(self, trainer):
        self.events.append(("start", trainer.step_count))

    def on_step_end(self, trainer, info):
        self.events.append(("step", info.step))

    def on_run_end(self, trainer):
        self.events.append(("end", trainer.step_count))


class ExplodingHook:
    def on_step_end(self, trainer, info):
        raise RuntimeError("boom")


class TestBasics:
    def test_run_advances_steps(self):
        trainer = make_vqe_trainer()
        reports = trainer.run(5)
        assert trainer.step_count == 5
        assert [r.step for r in reports] == [1, 2, 3, 4, 5]

    def test_loss_history_grows(self):
        trainer = make_vqe_trainer()
        trainer.run(4)
        assert len(trainer.loss_history) == 4
        assert trainer.last_loss == trainer.loss_history[-1]

    def test_last_loss_none_before_training(self):
        assert make_vqe_trainer().last_loss is None

    def test_vqe_loss_decreases(self):
        trainer = make_vqe_trainer()
        trainer.run(60)
        assert trainer.loss_history[-1] < trainer.loss_history[0]

    def test_classifier_trains(self):
        trainer = make_classifier_trainer()
        trainer.run(10)
        assert len(trainer.loss_history) == 10

    def test_deterministic_given_seed(self):
        a = make_classifier_trainer()
        b = make_classifier_trainer()
        a.run(6)
        b.run(6)
        assert np.array_equal(a.params, b.params)

    def test_different_seed_differs(self):
        a = make_classifier_trainer(seed=1)
        b = make_classifier_trainer(seed=2)
        a.run(4)
        b.run(4)
        assert not np.array_equal(a.params, b.params)

    def test_wall_time_accumulates(self):
        trainer = make_vqe_trainer()
        trainer.run(3)
        assert trainer.wall_time > 0

    def test_explicit_params_respected(self):
        model = VQEModel(hardware_efficient(2, 1), Hamiltonian.h2_minimal())
        params = np.full(model.n_params, 0.25)
        trainer = Trainer(model, SGD(lr=0.1), params=params)
        assert np.array_equal(trainer.params, params)
        params[0] = 99.0  # caller's array must not alias
        assert trainer.params[0] == 0.25

    def test_params_shape_validated(self):
        model = VQEModel(hardware_efficient(2, 1), Hamiltonian.h2_minimal())
        with pytest.raises(ConfigError):
            Trainer(model, SGD(), params=np.zeros(3))

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ConfigError):
            TrainerConfig(shots=0)

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigError):
            make_vqe_trainer().run(-1)


class TestHooks:
    def test_hook_lifecycle(self):
        trainer = make_vqe_trainer()
        hook = RecordingHook()
        trainer.run(3, hooks=[hook])
        assert hook.events[0] == ("start", 0)
        assert hook.events[-1] == ("end", 3)
        assert [e for e in hook.events if e[0] == "step"] == [
            ("step", 1),
            ("step", 2),
            ("step", 3),
        ]

    def test_hook_exception_propagates_but_run_end_fires(self):
        trainer = make_vqe_trainer()
        recorder = RecordingHook()
        with pytest.raises(RuntimeError, match="boom"):
            trainer.run(5, hooks=[ExplodingHook(), recorder])
        assert ("end", 1) in recorder.events

    def test_partial_hooks_allowed(self):
        class OnlyStep:
            def __init__(self):
                self.count = 0

            def on_step_end(self, trainer, info):
                self.count += 1

        hook = OnlyStep()
        make_vqe_trainer().run(2, hooks=[hook])
        assert hook.count == 2


class TestCaptureRestore:
    @pytest.mark.parametrize("shots", [None, 128])
    def test_bitwise_resume_classifier(self, shots):
        reference = make_classifier_trainer(shots=shots)
        reference.run(10)

        first = make_classifier_trainer(shots=shots)
        first.run(4)
        snapshot = first.capture()

        second = make_classifier_trainer(shots=shots)
        second.restore(snapshot)
        second.run(6)
        assert np.array_equal(second.params, reference.params)
        assert second.loss_history == reference.loss_history

    def test_bitwise_resume_vqe(self):
        reference = make_vqe_trainer()
        reference.run(12)
        first = make_vqe_trainer()
        first.run(5)
        snapshot = first.capture()
        second = make_vqe_trainer()
        second.restore(snapshot)
        second.run(7)
        assert np.array_equal(second.params, reference.params)

    def test_capture_is_deep_copy(self):
        trainer = make_vqe_trainer()
        trainer.run(2)
        snapshot = trainer.capture()
        trainer.run(2)
        assert snapshot.step == 2
        assert len(snapshot.loss_history) == 2

    def test_capture_includes_statevector_when_configured(self):
        trainer = make_vqe_trainer(capture_statevector=True)
        trainer.run(1)
        assert trainer.capture().statevector is not None

    def test_capture_omits_statevector_by_default(self):
        trainer = make_vqe_trainer()
        trainer.run(1)
        assert trainer.capture().statevector is None

    def test_restore_rejects_other_model(self):
        vqe = make_vqe_trainer()
        vqe.run(2)
        classifier = make_classifier_trainer()
        with pytest.raises(IncompatibleCheckpointError):
            classifier.restore(vqe.capture())

    def test_restore_rejects_sampler_state_without_dataset(self):
        classifier = make_classifier_trainer()
        classifier.run(2)
        snapshot = classifier.capture()
        model = classifier.model
        bare = Trainer(model, Adam(lr=0.05), config=TrainerConfig(seed=11))
        with pytest.raises(ConfigError):
            bare.restore(snapshot)

    def test_restore_resets_step_count(self):
        trainer = make_vqe_trainer()
        trainer.run(6)
        snapshot = trainer.capture()
        trainer.run(4)
        trainer.restore(snapshot)
        assert trainer.step_count == 6
        assert len(trainer.loss_history) == 6

    def test_wall_time_restored(self):
        trainer = make_vqe_trainer()
        trainer.run(3)
        snapshot = trainer.capture()
        fresh = make_vqe_trainer()
        fresh.restore(snapshot)
        assert fresh.wall_time == snapshot.wall_time
