"""Engine tiers, gradient sharding, and storage fast paths.

The load-bearing property here is *bitwise determinism*: a sharded gradient
must equal the single-process gradient bit for bit, on every tier, for every
shift rule — otherwise checkpoint/resume equivalence (the repo's core
contract) would depend on the fan-out knob.  The compiled tier's own bitwise
parity against numpy is enforced by its load-time self-test; these tests
cover the seams above it.
"""

import os

import numpy as np
import pytest

from repro.autodiff import finite_difference_gradient, parameter_shift_gradient
from repro.core import delta as _delta
from repro.core import hashing as _hashing
from repro.core.restore import content_address
from repro.errors import ConfigError
from repro.quantum import engines, kernels
from repro.quantum.circuit import Circuit
from repro.quantum.engines import compiled, sharding
from repro.quantum.observables import Hamiltonian
from repro.quantum.templates import hardware_efficient, initial_parameters

TFIM4 = Hamiltonian.transverse_field_ising(4, 1.0, 0.7)

COMPILED_AVAILABLE = compiled.available()
TIERS = ["numpy"] + (["compiled"] if COMPILED_AVAILABLE else [])


@pytest.fixture(autouse=True)
def _engine_hygiene(monkeypatch):
    """Isolate engine/env/pool state: every test starts from a clean ladder."""
    monkeypatch.delenv(engines.ENGINE_ENV, raising=False)
    monkeypatch.delenv(engines.WORKERS_ENV, raising=False)
    engines.reset_engine()
    yield
    sharding.shutdown_default()
    engines.reset_engine()


def _use_tier(monkeypatch, tier):
    """Pin a tier and rebuild the default worker pool under it."""
    monkeypatch.setenv(engines.ENGINE_ENV, tier)
    engines.reset_engine()
    sharding.shutdown_default()


def _cases():
    rng = np.random.default_rng(7)
    hea = hardware_efficient(4, 2)
    ctrl = Circuit(4)
    ctrl.h(0).crx(0, 1, ctrl.new_param()).cry(1, 2, ctrl.new_param())
    ctrl.crz(2, 3, ctrl.new_param()).crz(3, 0, ctrl.new_param())
    ctrl.rx(1, ctrl.new_param()).rz(2, ctrl.new_param())
    return [
        ("hea-two-term", hea, initial_parameters(hea, rng, 0.8), TFIM4),
        (
            "controlled-four-term",
            ctrl,
            rng.uniform(0, np.pi, ctrl.n_params),
            TFIM4,
        ),
    ]


class TestEngineSelection:
    def test_auto_prefers_compiled_when_available(self):
        tier = engines.select_engine("auto")
        expected = "compiled" if COMPILED_AVAILABLE else "numpy"
        assert tier == expected
        assert engines.active_engine() == expected

    def test_env_ladder_pins_numpy(self, monkeypatch):
        monkeypatch.setenv(engines.ENGINE_ENV, "numpy")
        engines.reset_engine()
        assert engines.active_engine() == "numpy"
        assert kernels._COMPILED is None

    def test_invalid_request_rejected(self):
        with pytest.raises(ConfigError):
            engines.select_engine("fortran")

    def test_explicit_compiled_on_unavailable_host_raises(self, monkeypatch):
        monkeypatch.setattr(compiled, "_probed", True)
        monkeypatch.setattr(compiled, "_library", None)
        monkeypatch.setattr(compiled, "_reason", "forced unavailable (test)")
        with pytest.raises(ConfigError, match="forced unavailable"):
            engines.select_engine("compiled")
        # auto on the same host silently lands on numpy
        assert engines.select_engine("auto") == "numpy"

    def test_engine_info_bundle(self):
        info = engines.engine_info()
        assert info["active"] in ("numpy", "compiled")
        assert info["compiled_available"] == COMPILED_AVAILABLE
        assert isinstance(info["compiled_reason"], str)
        assert info["shard_workers"] == 0

    def test_selection_is_counted(self):
        engines.select_engine("numpy")
        snapshot = engines.metrics_snapshot()
        selected = [
            record
            for record in snapshot["series"]
            if record["name"] == "engine.selected"
            and record.get("labels", {}).get("tier") == "numpy"
        ]
        assert selected and selected[0]["value"] >= 1

    def test_direct_kernel_path_resolves_engine(self):
        # The adjoint sweep calls apply_matrix_inplace directly, bypassing
        # the batch entry points.  It must resolve the tier ladder itself —
        # otherwise gradient bits would depend on whether a batch entry
        # point happened to run first in the process (the engine would bind
        # mid-run and the same params would grade differently before/after).
        assert not kernels._engine_resolved
        state = np.zeros(4, dtype=np.complex128)
        state[0] = 1.0
        h = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
        kernels.apply_matrix_inplace(state, h, (0,), 2)
        assert kernels._engine_resolved

    def test_adjoint_gradient_is_resolution_order_invariant(self):
        from repro.autodiff import adjoint_gradient
        from repro.quantum.statevector import apply_circuit

        name, circuit, params, obs = _cases()[0]
        engines.reset_engine()
        cold = adjoint_gradient(circuit, params, obs)
        engines.reset_engine()
        apply_circuit(circuit, params + 0.371)  # batch entry binds the tier
        warm = adjoint_gradient(circuit, params, obs)
        assert np.array_equal(cold, warm)

    def test_storage_library_honors_numpy_pin(self, monkeypatch):
        monkeypatch.setenv(engines.ENGINE_ENV, "numpy")
        assert engines.storage_library() is None
        monkeypatch.delenv(engines.ENGINE_ENV)
        lib = engines.storage_library()
        assert (lib is not None) == COMPILED_AVAILABLE


class TestScopeResolution:
    def test_explicit_beats_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(engines.WORKERS_ENV, "5")
        assert engines.resolve_shard_workers(None) == 5
        with engines.execution_scope(shard_workers=3):
            assert engines.resolve_shard_workers(None) == 3
            assert engines.resolve_shard_workers(2) == 2
            with engines.execution_scope(shard_workers=0):
                assert engines.resolve_shard_workers(None) == 0
        assert engines.resolve_shard_workers(None) == 5

    def test_none_scope_inherits(self):
        with engines.execution_scope(shard_workers=4):
            with engines.execution_scope(shard_workers=None):
                assert engines.resolve_shard_workers(None) == 4

    def test_negative_scope_rejected(self):
        with pytest.raises(ConfigError):
            with engines.execution_scope(shard_workers=-1):
                pass

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv(engines.WORKERS_ENV, "lots")
        with pytest.raises(ConfigError):
            engines.resolve_shard_workers(None)


class TestShardBounds:
    def test_contiguous_cover(self):
        bounds = sharding.shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_min_shard_width(self):
        # 5 evaluations over 4 workers: only 2 shards of width >= 2
        assert sharding.shard_bounds(5, 4) == [(0, 3), (3, 5)]
        assert sharding.shard_bounds(2, 8) == [(0, 2)]


class TestShardParity:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("name,circuit,params,obs", _cases())
    def test_parameter_shift_bitwise(
        self, monkeypatch, tier, name, circuit, params, obs
    ):
        _use_tier(monkeypatch, tier)
        single = parameter_shift_gradient(circuit, params, obs)
        for workers in (2, 3):
            sharded = parameter_shift_gradient(
                circuit, params, obs, shard_workers=workers
            )
            assert np.array_equal(single, sharded), (name, tier, workers)

    @pytest.mark.parametrize("tier", TIERS)
    def test_finite_difference_bitwise(self, monkeypatch, tier):
        _use_tier(monkeypatch, tier)
        _, circuit, params, obs = _cases()[0]
        for scheme in ("central", "forward"):
            single = finite_difference_gradient(
                circuit, params, obs, scheme=scheme
            )
            sharded = finite_difference_gradient(
                circuit, params, obs, scheme=scheme, shard_workers=2
            )
            assert np.array_equal(single, sharded), (tier, scheme)

    def test_ambient_scope_shards_bitwise(self):
        name, circuit, params, obs = _cases()[0]
        single = parameter_shift_gradient(circuit, params, obs)
        with engines.execution_scope(shard_workers=2):
            sharded = parameter_shift_gradient(circuit, params, obs)
        assert np.array_equal(single, sharded)
        shifts = [
            r
            for r in engines.metrics_snapshot()["series"]
            if r["name"] == "shard.shifts"
        ]
        assert shifts and shifts[0]["value"] >= len(params) * 2

    @pytest.mark.skipif(
        not COMPILED_AVAILABLE, reason="no compiled tier on this host"
    )
    def test_cross_tier_agreement(self, monkeypatch):
        grads = {}
        for tier in ("numpy", "compiled"):
            _use_tier(monkeypatch, tier)
            name, circuit, params, obs = _cases()[1]
            grads[tier] = parameter_shift_gradient(
                circuit, params, obs, shard_workers=2
            )
        assert np.allclose(grads["numpy"], grads["compiled"], atol=1e-12)


class TestShardRecovery:
    def test_worker_crash_mid_gradient_recovers_bitwise(self):
        name, circuit, params, obs = _cases()[0]
        single = parameter_shift_gradient(circuit, params, obs)
        executor = sharding.get_executor(3)
        before = engines.METRICS.counter("shard.worker_crashes").value
        executor.inject_worker_crash(1)
        sharded = parameter_shift_gradient(
            circuit, params, obs, shard_workers=3
        )
        assert np.array_equal(single, sharded)
        assert (
            engines.METRICS.counter("shard.worker_crashes").value == before + 1
        )
        # the pool healed: all workers answer and a clean run still matches
        assert len(executor.ping()) == 3
        again = parameter_shift_gradient(circuit, params, obs, shard_workers=3)
        assert np.array_equal(single, again)


class TestWorkerCaches:
    def test_prime_and_inspect_all_workers(self):
        name, circuit, params, obs = _cases()[0]
        sharding.prime_worker_caches(circuit, params, workers=2)
        info = kernels.cache_info(all_workers=True)
        assert len(info["workers"]) == 2
        for worker in info["workers"]:
            assert worker["pid"] > 0
            assert worker["matrix"]["currsize"] > 0
        kernels.clear_caches(all_workers=True)
        info = kernels.cache_info(all_workers=True)
        for worker in info["workers"]:
            assert worker["matrix"]["currsize"] == 0

    def test_cache_info_without_pool_has_no_workers_key(self):
        info = kernels.cache_info()
        assert "workers" not in info


class TestTrainerFleetOptIn:
    def _trainer(self, shard_workers):
        from repro.ml.models import VQEModel
        from repro.ml.optimizers import Adam
        from repro.ml.trainer import Trainer, TrainerConfig

        model = VQEModel(
            hardware_efficient(4, 2), TFIM4, gradient_method="parameter-shift"
        )
        return Trainer(
            model,
            Adam(lr=0.05),
            config=TrainerConfig(seed=5, shard_workers=shard_workers),
        )

    def test_sharded_training_is_bitwise_identical(self):
        baseline = self._trainer(None)
        sharded = self._trainer(2)
        for _ in range(2):
            baseline.train_step()
            sharded.train_step()
        assert np.array_equal(baseline.params, sharded.params)
        assert baseline.loss_history == sharded.loss_history

    def test_fleet_spec_validates_and_carries_knob(self):
        from repro.service.fleet import FleetJobSpec

        spec = FleetJobSpec(
            job_id="j1",
            trainer_factory=lambda: None,
            target_steps=1,
            shard_workers=2,
        )
        assert spec.shard_workers == 2
        with pytest.raises(ConfigError):
            FleetJobSpec(
                job_id="j2",
                trainer_factory=lambda: None,
                target_steps=1,
                shard_workers=-1,
            )


class TestHashing:
    def test_block_addresses_match_hashlib_oracle(self):
        rng = np.random.default_rng(3)
        raw = rng.integers(0, 256, size=10_007, dtype=np.uint8).tobytes()
        for block in (64, 1000, 4096, 20_000):
            pairs = _hashing.block_addresses(raw, block, "zlib")
            starts = range(0, len(raw), block)
            assert [a for _, a in pairs] == [
                content_address(raw[s : s + block], "zlib") for s in starts
            ]
            for i, (view, _) in enumerate(pairs):
                assert bytes(view) == raw[i * block : (i + 1) * block]

    def test_empty_stream_is_one_empty_block(self):
        pairs = _hashing.block_addresses(b"", 4096, "none")
        assert len(pairs) == 1
        assert pairs[0][1] == content_address(b"", "none")
        assert bytes(pairs[0][0]) == b""

    def test_fast_digest_matches_python_oracle(self):
        rng = np.random.default_rng(4)
        for n in (0, 1, 63, 64, 257, 8192):
            data = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
            assert _hashing.fast_digest(data) == _hashing._fast_digest_python(
                memoryview(data)
            )

    def test_fast_digest_known_vector(self):
        # FNV-1a 64 of b"a" per the published constants
        assert _hashing.fast_digest(b"a") == 0xAF63DC4C8601EC8C

    def test_fast_digest_accepts_views_and_arrays(self):
        arr = np.arange(32, dtype=np.float64)
        as_bytes = _hashing.fast_digest(arr.tobytes())
        assert _hashing.fast_digest(arr) == as_bytes
        assert _hashing.fast_digest(memoryview(arr.tobytes())) == as_bytes


class TestDeltaXor:
    def test_xor_hook_matches_numpy(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal(4097)
        b = a.copy()
        b[::11] += 1e-12
        got = _delta._xor_arrays(a, b)
        want = np.bitwise_xor(
            a.view(np.uint8).reshape(-1), b.view(np.uint8).reshape(-1)
        )
        assert np.array_equal(got, want)

    def test_roundtrip_under_numpy_pin(self, monkeypatch):
        monkeypatch.setenv(engines.ENGINE_ENV, "numpy")
        rng = np.random.default_rng(6)
        base = {"t": rng.standard_normal(513)}
        curr = {"t": base["t"] + rng.standard_normal(513) * 1e-3}
        tensors, meta = _delta.encode_delta(base, curr)
        back = _delta.apply_delta(base, tensors, meta)
        assert np.array_equal(
            back["t"].view(np.uint8), curr["t"].view(np.uint8)
        )


def _snapshot(step, params):
    from repro.core.snapshot import TrainingSnapshot

    return TrainingSnapshot(
        step=step,
        params=params,
        optimizer_state={"name": "sgd", "lr": 0.1},
        rng_state={"bit_generator": "PCG64", "state": {"state": 1, "inc": 2}},
        model_fingerprint="fp",
    )


class TestChunkStorePipeline:
    def test_speculative_compress_counters_and_roundtrip(self):
        from repro.service.chunkstore import ChunkStore
        from repro.storage.memory import InMemoryBackend

        store = ChunkStore(InMemoryBackend(), codec="zlib-6", block_bytes=256)
        rng = np.random.default_rng(8)
        params = rng.standard_normal(400)
        record = store.save_snapshot("job-a", _snapshot(1, params))
        assert record.n_blocks >= 2
        speculated = store.metrics.counter("save.pipeline.speculated").value
        assert speculated >= 1
        # identical content re-saved: every block dedups, speculation that
        # did run is counted wasted, stored bytes stay put
        record2 = store.save_snapshot("job-a", _snapshot(2, params))
        assert record2.n_new_blocks == 0
        loaded = store.load_snapshot("job-a", record.ckpt_id)
        assert np.array_equal(
            loaded.params.view(np.uint8), params.view(np.uint8)
        )

    def test_none_codec_never_aliases_tensor_memory(self):
        from repro.service.chunkstore import ChunkStore
        from repro.storage.memory import InMemoryBackend

        store = ChunkStore(InMemoryBackend(), codec="none", block_bytes=256)
        params = np.zeros(64)
        record = store.save_snapshot("job-b", _snapshot(1, params))
        params += 1.0  # mutate after save; stored chunks must not move
        loaded = store.load_snapshot("job-b", record.ckpt_id)
        assert np.array_equal(loaded.params, np.zeros(64))
