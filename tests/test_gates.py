"""Unit tests for the gate library: matrices, derivatives, shift rules."""

import math

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum import gates as G


class TestFixedGates:
    def test_registry_contains_expected_gates(self):
        for name in ["i", "x", "y", "z", "h", "s", "t", "cnot", "cz", "swap",
                     "toffoli", "rx", "ry", "rz", "rot", "crx", "zz"]:
            assert name in G.REGISTRY

    @pytest.mark.parametrize("name", sorted(G.REGISTRY))
    def test_every_gate_is_unitary(self, name):
        spec = G.REGISTRY[name]
        params = tuple(0.3 + 0.1 * k for k in range(spec.n_params))
        assert G.is_unitary(G.matrix_for(name, params))

    def test_pauli_x_flips_basis(self):
        assert np.allclose(G.PAULI_X @ np.array([1, 0]), np.array([0, 1]))

    def test_hadamard_creates_superposition(self):
        out = G.HADAMARD @ np.array([1, 0])
        assert np.allclose(out, np.array([1, 1]) / math.sqrt(2))

    def test_s_squared_is_z(self):
        assert np.allclose(G.S_GATE @ G.S_GATE, G.PAULI_Z)

    def test_t_squared_is_s(self):
        assert np.allclose(G.T_GATE @ G.T_GATE, G.S_GATE)

    def test_sx_squared_is_x(self):
        assert np.allclose(G.SX_GATE @ G.SX_GATE, G.PAULI_X)

    def test_sdg_is_s_inverse(self):
        assert np.allclose(G.S_GATE @ G.SDG_GATE, np.eye(2))

    def test_cnot_control_on_first_wire(self):
        # |10> -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        out = G.CNOT @ state
        assert out[3] == 1.0

    def test_cnot_identity_when_control_zero(self):
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(G.CNOT @ state, state)

    def test_swap_swaps(self):
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        out = G.SWAP @ state
        assert out[2] == 1.0  # |10>

    def test_toffoli_flips_only_when_both_controls_set(self):
        state = np.zeros(8)
        state[6] = 1.0  # |110>
        assert (G.TOFFOLI @ state)[7] == 1.0
        state = np.zeros(8)
        state[4] = 1.0  # |100>
        assert np.allclose(G.TOFFOLI @ state, state)

    def test_fredkin_swaps_targets_when_control_set(self):
        state = np.zeros(8)
        state[5] = 1.0  # |101>
        assert (G.FREDKIN @ state)[6] == 1.0  # |110>

    def test_controlled_helper_matches_cnot(self):
        assert np.allclose(G.controlled(G.PAULI_X), G.CNOT)

    def test_is_unitary_rejects_non_unitary(self):
        assert not G.is_unitary(np.array([[1, 1], [0, 1]], dtype=complex))


class TestParametricGates:
    def test_rx_at_zero_is_identity(self):
        assert np.allclose(G.rx(0.0), np.eye(2))

    def test_rx_at_pi_is_minus_i_x(self):
        assert np.allclose(G.rx(math.pi), -1j * G.PAULI_X)

    def test_ry_at_pi_is_minus_i_y(self):
        assert np.allclose(G.ry(math.pi), -1j * G.PAULI_Y)

    def test_rz_at_pi_is_minus_i_z(self):
        assert np.allclose(G.rz(math.pi), -1j * G.PAULI_Z)

    def test_rot_composition(self):
        phi, theta, omega = 0.2, 0.5, 1.1
        assert np.allclose(
            G.rot(phi, theta, omega), G.rz(omega) @ G.ry(theta) @ G.rz(phi)
        )

    def test_phase_shift_diag(self):
        m = G.phase_shift(0.7)
        assert m[0, 0] == 1.0
        assert np.isclose(m[1, 1], np.exp(0.7j))

    def test_controlled_rotations_block_structure(self):
        theta = 0.9
        m = G.crx(theta)
        assert np.allclose(m[:2, :2], np.eye(2))
        assert np.allclose(m[2:, 2:], G.rx(theta))

    def test_ising_zz_is_diagonal(self):
        m = G.ising_zz(0.4)
        off_diag = m - np.diag(np.diag(m))
        assert np.allclose(off_diag, 0)

    def test_ising_xx_at_zero_identity(self):
        assert np.allclose(G.ising_xx(0.0), np.eye(4))

    def test_rotation_composition_law(self):
        # R(a) @ R(b) == R(a + b) for exponential-form rotations.
        for fn in (G.rx, G.ry, G.rz, G.ising_zz):
            assert np.allclose(fn(0.3) @ fn(0.4), fn(0.7))


class TestDerivatives:
    @pytest.mark.parametrize(
        "name", [n for n, s in G.REGISTRY.items() if s.n_params > 0]
    )
    def test_analytic_derivative_matches_numerical(self, name):
        spec = G.REGISTRY[name]
        params = [0.37 + 0.21 * k for k in range(spec.n_params)]
        eps = 1e-7
        for k in range(spec.n_params):
            analytic = G.derivative_for(name, params, k)
            bumped_up = list(params)
            bumped_up[k] += eps
            bumped_dn = list(params)
            bumped_dn[k] -= eps
            numerical = (
                G.matrix_for(name, bumped_up) - G.matrix_for(name, bumped_dn)
            ) / (2 * eps)
            assert np.allclose(analytic, numerical, atol=1e-6), (name, k)

    def test_derivative_errors_on_fixed_gate(self):
        with pytest.raises(CircuitError):
            G.derivative_for("h", (), 0)

    def test_derivative_errors_on_bad_index(self):
        with pytest.raises(CircuitError):
            G.derivative_for("rx", (0.1,), 1)


class TestRegistryAccess:
    def test_spec_for_is_case_insensitive(self):
        assert G.spec_for("CNOT").name == "cnot"

    def test_spec_for_unknown_gate(self):
        with pytest.raises(CircuitError, match="unknown gate"):
            G.spec_for("frobnicate")

    def test_matrix_for_wrong_param_count(self):
        with pytest.raises(CircuitError, match="parameter"):
            G.matrix_for("rx", (0.1, 0.2))

    def test_shift_rule_classification(self):
        assert G.REGISTRY["rx"].shift_rule == G.TWO_TERM
        assert G.REGISTRY["crx"].shift_rule == G.FOUR_TERM
        assert G.REGISTRY["cphase"].shift_rule == G.TWO_TERM
        assert G.REGISTRY["h"].shift_rule is None

    def test_four_term_coefficients(self):
        c1, c2 = G.FOUR_TERM_COEFFS
        sqrt2 = math.sqrt(2)
        assert np.isclose(c1, (sqrt2 + 1) / (4 * sqrt2))
        assert np.isclose(c2, (sqrt2 - 1) / (4 * sqrt2))

    def test_fixed_gate_matrices_are_readonly(self):
        matrix = G.matrix_for("h")
        with pytest.raises(ValueError):
            matrix[0, 0] = 5.0
