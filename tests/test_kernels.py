"""Property tests: the fast execution engine against the reference kernel.

The tensor-contraction :func:`repro.quantum.statevector.apply_gate` is the
machine-precision oracle.  These tests drive the fast in-place kernels,
single-qubit fusion, matrix caching, and the batched execution paths across
every registered gate, random circuits, random wire orders (including
reversed-wire two-qubit gates), and both gradient engines.
"""

import numpy as np
import pytest

from repro.autodiff.finite_difference import finite_difference_gradient
from repro.autodiff.parameter_shift import parameter_shift_gradient
from repro.quantum import gates as G
from repro.quantum import kernels
from repro.quantum.circuit import Circuit
from repro.quantum.haar import haar_state, random_circuit
from repro.quantum.observables import Hamiltonian, PauliString, Projector
from repro.quantum.statevector import apply_gate, zero_state
from repro.quantum.templates import hardware_efficient, qaoa_maxcut

ATOL = 1e-12


def reference_run(circuit, params=None, initial_state=None):
    """Per-gate tensordot execution (the seed path)."""
    values = np.zeros(circuit.n_params) if params is None else np.asarray(params)
    state = (
        zero_state(circuit.n_qubits)
        if initial_state is None
        else np.array(initial_state, dtype=np.complex128, copy=True)
    )
    for op in circuit.ops:
        state = apply_gate(state, op.matrix(values), op.wires, circuit.n_qubits)
    return state


def random_params(spec, rng):
    return tuple(float(x) for x in rng.uniform(0, 2 * np.pi, spec.n_params))


class TestKernelsMatchReference:
    @pytest.mark.parametrize("gate", sorted(G.REGISTRY))
    def test_every_registered_gate(self, gate, rng):
        """Each gate on random wires of random states matches the oracle."""
        spec = G.REGISTRY[gate]
        for n in range(spec.n_wires, spec.n_wires + 3):
            for _ in range(3):
                wires = tuple(
                    int(w) for w in rng.choice(n, spec.n_wires, replace=False)
                )
                params = random_params(spec, rng)
                circuit = Circuit(n).append(gate, wires, params)
                initial = haar_state(n, rng)
                fast = kernels.run(circuit, initial_state=initial)
                ref = reference_run(circuit, initial_state=initial)
                assert np.allclose(fast, ref, atol=ATOL), (gate, n, wires)

    def test_reversed_wire_two_qubit_gates(self, rng):
        """(b, a) wire order must transpose the kernel's quarter views."""
        for gate in ["cnot", "cz", "swap", "iswap", "crx", "cry", "crz", "xx"]:
            spec = G.REGISTRY[gate]
            circuit = Circuit(3)
            circuit.append(gate, (2, 0), random_params(spec, rng))
            initial = haar_state(3, rng)
            fast = kernels.run(circuit, initial_state=initial)
            ref = reference_run(circuit, initial_state=initial)
            assert np.allclose(fast, ref, atol=ATOL), gate

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits(self, seed):
        """Random 1-8 qubit circuits, fused and unfused, match the oracle."""
        rng = np.random.default_rng(seed)
        n = 1 + seed % 8
        circuit = random_circuit(n, 25, rng, parametric=bool(seed % 2))
        initial = haar_state(n, rng)
        ref = reference_run(circuit, initial_state=initial)
        fused = kernels.run(circuit, initial_state=initial, fuse=True)
        unfused = kernels.run(circuit, initial_state=initial, fuse=False)
        assert np.allclose(fused, ref, atol=ATOL)
        assert np.allclose(unfused, ref, atol=ATOL)

    def test_three_qubit_gates(self, rng):
        """Toffoli/Fredkin exercise the specialized 3-qubit permutation kernel."""
        circuit = Circuit(4)
        circuit.h(0).toffoli(0, 1, 3).append("fredkin", (3, 0, 2))
        initial = haar_state(4, rng)
        fast = kernels.run(circuit, initial_state=initial)
        ref = reference_run(circuit, initial_state=initial)
        assert np.allclose(fast, ref, atol=ATOL)

    @pytest.mark.parametrize("gate", ["toffoli", "fredkin"])
    def test_three_qubit_kernel_every_wire_order(self, gate, rng):
        """All 3! orderings of 3 wires on 3-5 qubits match the oracle."""
        from itertools import permutations

        for n in (3, 4, 5):
            base = tuple(int(w) for w in rng.choice(n, 3, replace=False))
            for wires in permutations(base):
                circuit = Circuit(n).append(gate, wires, ())
                initial = haar_state(n, rng)
                fast = kernels.run(circuit, initial_state=initial)
                ref = reference_run(circuit, initial_state=initial)
                assert np.allclose(fast, ref, atol=ATOL), (gate, n, wires)

    def test_three_qubit_dense_kernel_matches_reference(self, rng):
        """Random dense, diagonal, and batched 8x8 matrices match the oracle."""
        n = 5
        z = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        unitary, _ = np.linalg.qr(z)
        diagonal = np.diag(np.exp(1j * rng.uniform(0, 2 * np.pi, 8)))
        for matrix in (unitary, diagonal):
            for wires in ((0, 2, 4), (4, 1, 3), (3, 4, 0)):
                initial = haar_state(n, rng)
                fast = initial.copy()
                kernels.apply_matrix_inplace(fast, matrix, wires, n)
                ref = apply_gate(initial, matrix, wires, n)
                assert np.allclose(fast, ref, atol=ATOL), wires
        # Per-column (B, 8, 8) stacks on an amplitude-major batch.
        batch = 4
        stacks = np.stack(
            [np.linalg.qr(rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8)))[0]
             for _ in range(batch)]
        )
        states = np.stack([haar_state(n, rng) for _ in range(batch)], axis=1)
        fast = states.copy()
        wires = (4, 0, 2)
        kernels.apply_matrix_inplace(fast, stacks, wires, n, tail=batch)
        for b in range(batch):
            ref = apply_gate(np.ascontiguousarray(states[:, b]), stacks[b], wires, n)
            assert np.allclose(fast[:, b], ref, atol=ATOL), b

    def test_fusion_across_interleaved_entanglers(self, rng):
        """Pending 1q products must flush correctly at 2q barriers."""
        circuit = Circuit(3)
        t = circuit.new_param()
        circuit.rx(0, 0.3).rz(0, 0.7).ry(1, t).h(2)
        circuit.cnot(0, 1).rz(0, 1.1).s(1).cz(1, 2).rx(2, t).t(2)
        params = [0.9]
        fast = kernels.run(circuit, params)
        ref = reference_run(circuit, params)
        assert np.allclose(fast, ref, atol=ATOL)

    def test_run_with_overrides_matches_reference(self, rng):
        circuit = hardware_efficient(3, 2)
        params = rng.uniform(0, np.pi, circuit.n_params)
        overrides = {0: [(0, 2.2)], 5: [(0, -0.4)]}
        fast = kernels.run(circuit, params, overrides=overrides)
        bound = Circuit(circuit.n_qubits)
        for position, op in enumerate(circuit.ops):
            resolved = list(op.resolve(params))
            for slot, value in overrides.get(position, ()):
                resolved[slot] = value
            bound.append(op.gate, op.wires, tuple(resolved))
        assert np.allclose(fast, reference_run(bound), atol=ATOL)


class TestBatchedExecution:
    def test_run_batch_matches_individual_runs(self, rng):
        circuit = hardware_efficient(4, 2)
        params_batch = rng.uniform(0, np.pi, (7, circuit.n_params))
        states = kernels.run_batch(circuit, params_batch)
        assert states.shape == (7, 2**4)
        for row, params in zip(states, params_batch):
            assert np.allclose(row, reference_run(circuit, params), atol=ATOL)

    def test_run_batch_column_layout(self, rng):
        circuit = hardware_efficient(3, 1)
        params_batch = rng.uniform(0, np.pi, (5, circuit.n_params))
        rows = kernels.run_batch(circuit, params_batch)
        cols = kernels.run_batch(circuit, params_batch, columns=True)
        assert cols.shape == (2**3, 5)
        assert np.allclose(cols.T, rows, atol=ATOL)

    def test_run_batch_with_initial_state(self, rng):
        circuit = hardware_efficient(3, 1)
        params_batch = rng.uniform(0, np.pi, (4, circuit.n_params))
        initial = haar_state(3, rng)
        states = kernels.run_batch(circuit, params_batch, initial_state=initial)
        for row, params in zip(states, params_batch):
            expected = reference_run(circuit, params, initial_state=initial)
            assert np.allclose(row, expected, atol=ATOL)

    def test_run_shifted_batch_matches_per_element_runs(self, rng):
        """Base-plus-column-correction equals direct substitution."""
        circuit = hardware_efficient(4, 2)
        params = rng.uniform(0, np.pi, circuit.n_params)
        trainable = [pos for pos, _ in circuit.trainable_ops]
        batch = []
        for pos in trainable[:10]:
            batch.append({pos: [(0, float(rng.uniform(0, np.pi)))]})
        states = kernels.run_shifted_batch(circuit, params, batch)
        for element, row in zip(batch, states):
            direct = kernels.run(circuit, params, overrides=element)
            assert np.allclose(row, direct, atol=ATOL)

    def test_shifted_batch_multi_position_overrides(self, rng):
        """One element overriding several ops (the FD shape) stays exact."""
        circuit = qaoa_maxcut(4, [(0, 1), (1, 2), (2, 3)], 2)
        params = rng.uniform(0, np.pi, circuit.n_params)
        shared_positions = [
            pos
            for pos, op in circuit.trainable_ops
            if op.params[0].index == 0
        ]
        element = {pos: [(0, 1.234)] for pos in shared_positions}
        states = kernels.run_shifted_batch(circuit, params, [element, {}])
        direct = kernels.run(circuit, params, overrides=element)
        plain = kernels.run(circuit, params)
        assert np.allclose(states[0], direct, atol=ATOL)
        assert np.allclose(states[1], plain, atol=ATOL)

    def test_empty_batches(self):
        circuit = hardware_efficient(2, 1)
        assert kernels.run_shifted_batch(circuit, np.zeros(circuit.n_params), []).shape == (0, 4)
        assert kernels.run_batch(circuit, np.zeros((0, circuit.n_params))).shape == (0, 4)


class TestBatchedExpectations:
    def test_pauli_and_hamiltonian_batch_layouts(self, rng):
        h = Hamiltonian.transverse_field_ising(4, 1.0, 0.7)
        states = np.stack([haar_state(4, rng) for _ in range(5)])
        per_state = np.array([h.expectation(s) for s in states])
        assert np.allclose(h.expectation_batch(states), per_state, atol=ATOL)
        cols = np.ascontiguousarray(states.T)
        assert np.allclose(
            h.expectation_batch(cols, columns=True), per_state, atol=ATOL
        )

    def test_identity_term_batch(self, rng):
        obs = PauliString.identity(2.5)
        states = np.stack([haar_state(3, rng) for _ in range(4)])
        assert np.allclose(obs.expectation_batch(states), 2.5, atol=ATOL)

    def test_projector_batch_layouts(self, rng):
        target = haar_state(3, rng)
        proj = Projector(target, coeff=1.5)
        states = np.stack([haar_state(3, rng) for _ in range(4)])
        per_state = np.array([proj.expectation(s) for s in states])
        assert np.allclose(proj.expectation_batch(states), per_state, atol=ATOL)
        cols = np.ascontiguousarray(states.T)
        assert np.allclose(
            proj.expectation_batch(cols, columns=True), per_state, atol=ATOL
        )


class TestGradientParity:
    def _cases(self):
        rng = np.random.default_rng(17)
        hea = hardware_efficient(4, 2)
        qaoa = qaoa_maxcut(4, [(0, 1), (1, 2), (2, 3), (0, 3)], 2)
        ctrl = Circuit(3)
        ctrl.h(0).crx(0, 1, ctrl.new_param()).cry(1, 2, ctrl.new_param())
        ctrl.crz(2, 0, ctrl.new_param())
        tfim = Hamiltonian.transverse_field_ising(3, 1.0, 0.6)
        tfim4 = Hamiltonian.transverse_field_ising(4, 1.0, 0.6)
        return [
            ("hea", hea, rng.uniform(0, np.pi, hea.n_params), tfim4),
            ("qaoa-shared", qaoa, rng.uniform(0, np.pi, qaoa.n_params), tfim4),
            ("four-term", ctrl, rng.uniform(0, np.pi, ctrl.n_params), tfim),
        ]

    def test_batched_shift_rule_matches_reference_engine(self):
        for name, circuit, params, obs in self._cases():
            fast = parameter_shift_gradient(circuit, params, obs)
            ref = parameter_shift_gradient(circuit, params, obs, engine="reference")
            assert np.allclose(fast, ref, atol=ATOL), name

    def test_batched_finite_difference_matches_reference_engine(self):
        for name, circuit, params, obs in self._cases():
            fast = finite_difference_gradient(circuit, params, obs)
            ref = finite_difference_gradient(
                circuit, params, obs, engine="reference"
            )
            assert np.allclose(fast, ref, atol=1e-7), name

    def test_batched_shift_rule_with_initial_state(self, rng):
        circuit = hardware_efficient(3, 1)
        params = rng.uniform(0, np.pi, circuit.n_params)
        initial = haar_state(3, rng)
        obs = Hamiltonian.transverse_field_ising(3, 1.0, 0.6)
        fast = parameter_shift_gradient(circuit, params, obs, initial_state=initial)
        ref = parameter_shift_gradient(
            circuit, params, obs, initial_state=initial, engine="reference"
        )
        assert np.allclose(fast, ref, atol=ATOL)

    def test_shot_based_batched_gradient_is_reproducible(self):
        circuit = hardware_efficient(2, 1)
        params = np.linspace(0.1, 0.9, circuit.n_params)
        obs = PauliString.from_label("Z0")
        a = parameter_shift_gradient(
            circuit, params, obs, shots=256, rng=np.random.default_rng(3)
        )
        b = parameter_shift_gradient(
            circuit, params, obs, shots=256, rng=np.random.default_rng(3)
        )
        assert np.array_equal(a, b)

    def test_shot_based_batched_gradient_converges(self):
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        theta = 0.9
        grads = parameter_shift_gradient(
            circuit,
            [theta],
            PauliString.from_label("Z0"),
            shots=40000,
            rng=np.random.default_rng(11),
        )
        assert abs(grads[0] + np.sin(theta)) < 0.03


class TestMatrixCache:
    def test_cache_returns_frozen_shared_matrices(self):
        kernels.clear_caches()
        a = kernels.cached_matrix("rx", (0.5,))
        b = kernels.cached_matrix("rx", (0.5,))
        assert a is b
        assert not a.flags.writeable
        info = kernels.cache_info()
        assert info["matrix"]["hits"] >= 1

    def test_prime_circuit_cache(self):
        kernels.clear_caches()
        circuit = hardware_efficient(3, 1)
        kernels.prime_circuit_cache(circuit, np.zeros(circuit.n_params))
        assert kernels.cache_info()["matrix"]["currsize"] == len(
            set((op.gate, op.resolve(np.zeros(circuit.n_params))) for op in circuit.ops)
        )

    def test_cached_derivative_matches_gates_module(self):
        d_cached = kernels.cached_derivative("ry", (0.7,), 0)
        d_direct = G.derivative_for("ry", (0.7,), 0)
        assert np.allclose(d_cached, d_direct, atol=0)
