"""Unit tests for the statevector engine, validated against dense algebra."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum import gates as G
from repro.quantum.circuit import Circuit
from repro.quantum.haar import haar_state, random_circuit
from repro.quantum.statevector import (
    StatevectorSimulator,
    apply_circuit,
    apply_gate,
    basis_state,
    fidelity,
    iter_states,
    n_qubits_of,
    normalize,
    probabilities,
    statevector_nbytes,
    zero_state,
)


def dense_circuit_matrix(circuit: Circuit, params=None) -> np.ndarray:
    """Oracle: build the full 2^n unitary by Kronecker products."""
    values = np.zeros(circuit.n_params) if params is None else np.asarray(params)
    n = circuit.n_qubits
    total = np.eye(2**n, dtype=complex)
    for op in circuit.ops:
        gate = op.matrix(values)
        expanded = _embed(gate, op.wires, n)
        total = expanded @ total
    return total


def _embed(gate: np.ndarray, wires, n: int) -> np.ndarray:
    k = len(wires)
    dim = 2**n
    out = np.zeros((dim, dim), dtype=complex)
    gate_tensor = gate.reshape((2,) * (2 * k))
    for row in range(dim):
        row_bits = [(row >> (n - 1 - q)) & 1 for q in range(n)]
        for local_in in range(2**k):
            in_bits = [(local_in >> (k - 1 - j)) & 1 for j in range(k)]
            col_bits = list(row_bits)
            for j, wire in enumerate(wires):
                col_bits[wire] = in_bits[j]
            col = sum(bit << (n - 1 - q) for q, bit in enumerate(col_bits))
            out_index = tuple(row_bits[w] for w in wires)
            amplitude = gate_tensor[out_index + tuple(in_bits)]
            out[row, col] += amplitude
    return out


class TestStates:
    def test_zero_state(self):
        state = zero_state(3)
        assert state[0] == 1.0 and np.count_nonzero(state) == 1

    def test_zero_state_rejects_bad_count(self):
        with pytest.raises(CircuitError):
            zero_state(0)

    def test_basis_state(self):
        state = basis_state(2, 3)
        assert state[3] == 1.0

    def test_basis_state_range(self):
        with pytest.raises(CircuitError):
            basis_state(2, 4)

    def test_n_qubits_of(self):
        assert n_qubits_of(zero_state(5)) == 5

    def test_n_qubits_of_rejects_non_power(self):
        with pytest.raises(CircuitError):
            n_qubits_of(np.zeros(3, dtype=complex))

    def test_normalize(self):
        state = normalize(np.array([3.0, 4.0], dtype=complex))
        assert np.isclose(np.linalg.norm(state), 1.0)

    def test_normalize_zero_rejected(self):
        with pytest.raises(CircuitError):
            normalize(np.zeros(2, dtype=complex))

    def test_fidelity_self_is_one(self, rng):
        state = haar_state(4, rng)
        assert np.isclose(fidelity(state, state), 1.0)

    def test_fidelity_orthogonal_is_zero(self):
        assert fidelity(basis_state(2, 0), basis_state(2, 1)) == 0.0

    def test_statevector_nbytes(self):
        assert statevector_nbytes(10) == 1024 * 16
        assert statevector_nbytes(10, np.complex64) == 1024 * 8


class TestApplyGate:
    def test_x_on_wire0_most_significant(self):
        state = apply_gate(zero_state(2), G.PAULI_X, (0,))
        assert state[2] == 1.0  # |10>

    def test_x_on_wire1(self):
        state = apply_gate(zero_state(2), G.PAULI_X, (1,))
        assert state[1] == 1.0  # |01>

    def test_cnot_wire_order(self):
        # control=1, target=0 : |01> -> |11>
        state = apply_gate(basis_state(2, 1), G.CNOT, (1, 0))
        assert state[3] == 1.0

    def test_shape_validation(self):
        with pytest.raises(CircuitError):
            apply_gate(zero_state(2), G.CNOT, (0,))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_circuit_matches_dense_oracle(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(3, 12, rng, parametric=bool(seed % 2))
        via_engine = apply_circuit(circuit)
        via_dense = dense_circuit_matrix(circuit) @ zero_state(3)
        assert np.allclose(via_engine, via_dense, atol=1e-12)

    def test_norm_preserved_by_long_random_circuit(self, rng):
        circuit = random_circuit(4, 60, rng, parametric=True)
        state = apply_circuit(circuit)
        assert np.isclose(np.linalg.norm(state), 1.0, atol=1e-10)


class TestApplyCircuit:
    def test_bell_state(self):
        state = apply_circuit(Circuit(2).h(0).cnot(0, 1))
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_ghz_state(self):
        state = apply_circuit(Circuit(3).h(0).cnot(0, 1).cnot(1, 2))
        assert np.isclose(abs(state[0]) ** 2, 0.5)
        assert np.isclose(abs(state[7]) ** 2, 0.5)

    def test_initial_state_is_not_mutated(self, rng):
        initial = haar_state(2, rng)
        before = initial.copy()
        apply_circuit(Circuit(2).x(0), initial_state=initial)
        assert np.array_equal(initial, before)

    def test_initial_state_dimension_checked(self):
        with pytest.raises(CircuitError):
            apply_circuit(Circuit(2).h(0), initial_state=zero_state(3))

    def test_param_underflow_rejected(self):
        c = Circuit(1)
        c.rx(0, c.new_param())
        with pytest.raises(CircuitError):
            apply_circuit(c, params=[])

    def test_iter_states_yields_per_op(self):
        c = Circuit(1).h(0).z(0)
        states = list(iter_states(c))
        assert len(states) == 3
        assert np.allclose(states[0], zero_state(1))
        assert np.allclose(states[2], np.array([1, -1]) / np.sqrt(2))


class TestProbabilities:
    def test_full_distribution_sums_to_one(self, rng):
        probs = probabilities(haar_state(5, rng))
        assert np.isclose(probs.sum(), 1.0)

    def test_marginal_single_wire(self):
        state = apply_circuit(Circuit(2).h(0))
        probs = probabilities(state, wires=(0,))
        assert np.allclose(probs, [0.5, 0.5])

    def test_marginal_other_wire_deterministic(self):
        state = apply_circuit(Circuit(2).h(0))
        probs = probabilities(state, wires=(1,))
        assert np.allclose(probs, [1.0, 0.0])

    def test_marginal_wire_order_respected(self):
        state = apply_circuit(Circuit(3).x(2))
        probs = probabilities(state, wires=(2, 0))
        # wire2=1, wire0=0 -> bitstring "10" -> index 2
        assert probs[2] == 1.0

    def test_marginal_of_bell_state_is_correlated(self):
        state = apply_circuit(Circuit(2).h(0).cnot(0, 1))
        probs = probabilities(state, wires=(0, 1))
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_duplicate_wires_rejected(self, rng):
        with pytest.raises(CircuitError):
            probabilities(haar_state(2, rng), wires=(0, 0))

    def test_wire_out_of_range_rejected(self, rng):
        with pytest.raises(CircuitError):
            probabilities(haar_state(2, rng), wires=(2,))


class TestSimulator:
    def test_run_equals_apply_circuit(self):
        c = Circuit(2).h(0).cnot(0, 1)
        assert np.allclose(StatevectorSimulator().run(c), apply_circuit(c))

    def test_expectation(self):
        from repro.quantum.observables import PauliString

        sim = StatevectorSimulator()
        value = sim.expectation(Circuit(1).h(0), None, PauliString.from_label("X0"))
        assert np.isclose(value, 1.0)

    def test_expectations_batch(self):
        from repro.quantum.observables import PauliString

        sim = StatevectorSimulator()
        values = sim.expectations(
            Circuit(1).h(0),
            None,
            [PauliString.from_label("X0"), PauliString.from_label("Z0")],
        )
        assert np.allclose(values, [1.0, 0.0], atol=1e-12)

    def test_probabilities_shortcut(self):
        sim = StatevectorSimulator()
        probs = sim.probabilities(Circuit(1).h(0))
        assert np.allclose(probs, [0.5, 0.5])
