"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.store import CheckpointStore
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; reseeded per test."""
    return np.random.default_rng(20260610)


@pytest.fixture
def memory_store() -> CheckpointStore:
    """Checkpoint store over an in-memory backend."""
    return CheckpointStore(InMemoryBackend())


@pytest.fixture
def local_backend(tmp_path) -> LocalDirectoryBackend:
    """Filesystem backend rooted in a temp directory."""
    return LocalDirectoryBackend(tmp_path / "store")


@pytest.fixture
def local_store(local_backend) -> CheckpointStore:
    """Checkpoint store over a temp filesystem backend."""
    return CheckpointStore(local_backend)
