"""Unit tests for the circuit IR: construction, serialization, fingerprints."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum.circuit import Circuit, Operation, Param, concat


class TestOperation:
    def test_normalizes_gate_name(self):
        op = Operation("CNOT", (0, 1))
        assert op.gate == "cnot"

    def test_rejects_wrong_wire_count(self):
        with pytest.raises(CircuitError, match="wire"):
            Operation("cnot", (0,))

    def test_rejects_duplicate_wires(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Operation("cnot", (1, 1))

    def test_rejects_wrong_param_count(self):
        with pytest.raises(CircuitError, match="parameter"):
            Operation("rx", (0,), ())

    def test_rejects_bad_param_type(self):
        with pytest.raises(CircuitError, match="invalid parameter"):
            Operation("rx", (0,), ("oops",))

    def test_resolve_mixes_constants_and_params(self):
        op = Operation("rot", (0,), (0.5, Param(1), Param(0)))
        assert op.resolve([10.0, 20.0]) == (0.5, 20.0, 10.0)

    def test_is_trainable(self):
        assert Operation("rx", (0,), (Param(0),)).is_trainable
        assert not Operation("rx", (0,), (0.3,)).is_trainable

    def test_param_negative_index_rejected(self):
        with pytest.raises(CircuitError):
            Param(-1)


class TestCircuitConstruction:
    def test_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_append_validates_wire_range(self):
        with pytest.raises(CircuitError, match="out of range"):
            Circuit(2).h(2)

    def test_chaining(self):
        c = Circuit(2).h(0).cnot(0, 1).rx(1, 0.5)
        assert len(c) == 3

    def test_new_param_allocates_sequentially(self):
        c = Circuit(1)
        p0, p1 = c.new_param(), c.new_param()
        assert (p0.index, p1.index) == (0, 1)
        assert c.n_params == 2

    def test_new_params_bulk(self):
        c = Circuit(1)
        params = c.new_params(3)
        assert [p.index for p in params] == [0, 1, 2]

    def test_n_params_tracks_explicit_param_indices(self):
        c = Circuit(1)
        c.rx(0, Param(4))
        assert c.n_params == 5

    def test_single_int_wire_accepted(self):
        c = Circuit(1)
        c.append("h", 0)
        assert c.ops[0].wires == (0,)

    def test_all_convenience_builders(self):
        c = Circuit(3)
        p = c.new_param()
        c.h(0).x(1).y(2).z(0).s(1).t(2)
        c.cnot(0, 1).cz(1, 2).swap(0, 2).toffoli(0, 1, 2)
        c.rx(0, p).ry(1, 0.1).rz(2, 0.2).phase(0, 0.3)
        c.rot(1, 0.1, 0.2, 0.3)
        c.crx(0, 1, 0.4).cry(1, 2, 0.5).crz(0, 2, 0.6).cphase(0, 1, 0.7)
        c.xx(0, 1, 0.8).yy(1, 2, 0.9).zz(0, 2, 1.0)
        assert len(c) == 22


class TestCircuitInspection:
    def test_depth_parallel_gates(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert c.depth() == 1

    def test_depth_serial_chain(self):
        c = Circuit(2).h(0).cnot(0, 1).h(1)
        assert c.depth() == 3

    def test_depth_empty(self):
        assert Circuit(3).depth() == 0

    def test_gate_counts(self):
        c = Circuit(2).h(0).h(1).cnot(0, 1)
        assert c.gate_counts() == {"h": 2, "cnot": 1}

    def test_trainable_ops(self):
        c = Circuit(2)
        c.h(0).rx(0, c.new_param()).ry(1, 0.5)
        positions = [pos for pos, _ in c.trainable_ops]
        assert positions == [1]

    def test_repr_mentions_size(self):
        text = repr(Circuit(3).h(0))
        assert "n_qubits=3" in text and "n_ops=1" in text


class TestCircuitComposition:
    def test_extend_preserves_param_indices(self):
        a = Circuit(2)
        a.rx(0, a.new_param())
        b = Circuit(2)
        b.ry(1, Param(5))
        a.extend(b)
        assert a.n_params == 6

    def test_extend_rejects_width_mismatch(self):
        with pytest.raises(CircuitError):
            Circuit(2).extend(Circuit(3))

    def test_copy_is_independent(self):
        a = Circuit(2).h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1 and len(b) == 2

    def test_concat(self):
        a = Circuit(2).h(0)
        b = Circuit(2).x(1)
        merged = concat([a, b])
        assert len(merged) == 2
        assert len(a) == 1  # inputs untouched

    def test_concat_empty_errors(self):
        with pytest.raises(CircuitError):
            concat([])

    def test_bind_replaces_params(self):
        c = Circuit(1)
        c.rx(0, c.new_param())
        bound = c.bind([0.7])
        assert bound.ops[0].params == (0.7,)
        assert not bound.ops[0].is_trainable

    def test_bind_checks_shape(self):
        c = Circuit(1)
        c.rx(0, c.new_param())
        with pytest.raises(CircuitError):
            c.bind([0.1, 0.2])


class TestAdjoint:
    def test_adjoint_inverts_fixed_circuit(self):
        from repro.quantum.statevector import apply_circuit, zero_state

        c = Circuit(2).h(0).cnot(0, 1).s(1).t(0)
        roundtrip = c.copy().extend(c.adjoint())
        state = apply_circuit(roundtrip)
        assert np.allclose(state, zero_state(2))

    def test_adjoint_inverts_parametric_constants(self):
        from repro.quantum.statevector import apply_circuit, zero_state

        c = Circuit(2).rx(0, 0.3).zz(0, 1, 0.8).cry(0, 1, 1.2)
        roundtrip = c.copy().extend(c.adjoint())
        assert np.allclose(apply_circuit(roundtrip), zero_state(2))

    def test_adjoint_maps_s_to_sdg(self):
        inv = Circuit(1).s(0).adjoint()
        assert inv.ops[0].gate == "sdg"

    def test_adjoint_rejects_unbound_params(self):
        c = Circuit(1)
        c.rx(0, c.new_param())
        with pytest.raises(CircuitError, match="unbound"):
            c.adjoint()

    def test_adjoint_rejects_uninvertible_gate(self):
        with pytest.raises(CircuitError, match="inverse"):
            Circuit(1).append("sx", 0).adjoint()


class TestSerialization:
    def _sample(self) -> Circuit:
        c = Circuit(3)
        c.h(0).cnot(0, 1)
        c.rx(2, c.new_param())
        c.rot(1, 0.1, c.new_param(), 0.3)
        return c

    def test_json_roundtrip(self):
        original = self._sample()
        restored = Circuit.from_json(original.to_json())
        assert restored == original

    def test_json_roundtrip_preserves_n_params(self):
        original = self._sample()
        assert Circuit.from_json(original.to_json()).n_params == original.n_params

    def test_from_json_rejects_garbage(self):
        with pytest.raises(CircuitError, match="malformed"):
            Circuit.from_json({"ops": "nope"})

    def test_fingerprint_is_stable(self):
        assert self._sample().fingerprint() == self._sample().fingerprint()

    def test_fingerprint_changes_with_structure(self):
        a = self._sample()
        b = self._sample()
        b.x(0)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_changes_with_constants(self):
        a = Circuit(1).rx(0, 0.1)
        b = Circuit(1).rx(0, 0.2)
        assert a.fingerprint() != b.fingerprint()

    def test_equality(self):
        assert self._sample() == self._sample()
        assert self._sample() != Circuit(3)
        assert Circuit(2) != "not a circuit"
