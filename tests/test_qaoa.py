"""Tests for the QAOA MaxCut model (shared-parameter workload)."""

import networkx as nx
import numpy as np
import pytest

from repro.autodiff.finite_difference import finite_difference_gradient
from repro.autodiff.parameter_shift import parameter_shift_gradient
from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps
from repro.core.recovery import resume_trainer
from repro.errors import ConfigError
from repro.ml.models import QAOAMaxCutModel
from repro.ml.optimizers import Adam
from repro.ml.trainer import Trainer, TrainerConfig

TRIANGLE = [(0, 1), (1, 2), (0, 2)]


class TestConstruction:
    def test_edge_normalization_orders_and_sorts(self):
        a = QAOAMaxCutModel(3, [(2, 1), (1, 0), (2, 0)])
        b = QAOAMaxCutModel(3, [(0, 1), (0, 2), (1, 2)])
        assert a.edges == b.edges
        assert a.fingerprint() == b.fingerprint()

    def test_weighted_edges(self):
        model = QAOAMaxCutModel(2, [(0, 1, 2.5)])
        assert model.cut_value([0, 1]) == 2.5
        assert model.max_cut_brute_force() == 2.5

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigError):
            QAOAMaxCutModel(2, [(1, 1)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ConfigError):
            QAOAMaxCutModel(2, [(0, 2)])

    def test_rejects_empty_graph(self):
        with pytest.raises(ConfigError):
            QAOAMaxCutModel(3, [])

    def test_rejects_bad_edge_arity(self):
        with pytest.raises(ConfigError):
            QAOAMaxCutModel(3, [(0, 1, 1.0, 2.0)])

    def test_rejects_zero_layers(self):
        with pytest.raises(ConfigError):
            QAOAMaxCutModel(3, TRIANGLE, n_layers=0)

    def test_parameter_count_is_two_per_layer(self):
        model = QAOAMaxCutModel(5, [(0, 1), (2, 3)], n_layers=4)
        assert model.n_params == 8

    def test_from_networkx_with_weights(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=3.0)
        graph.add_edge("b", "c")
        model = QAOAMaxCutModel.from_networkx(graph, n_layers=1)
        assert model.n_qubits == 3
        assert model.max_cut_brute_force() == 4.0

    def test_fingerprint_depends_on_weights(self):
        a = QAOAMaxCutModel(2, [(0, 1, 1.0)])
        b = QAOAMaxCutModel(2, [(0, 1, 2.0)])
        assert a.fingerprint() != b.fingerprint()


class TestCutSemantics:
    def test_cut_value_triangle(self):
        model = QAOAMaxCutModel(3, TRIANGLE)
        assert model.cut_value([0, 0, 0]) == 0.0
        assert model.cut_value([0, 1, 1]) == 2.0
        assert model.cut_value([0, 1, 0]) == 2.0

    def test_cut_value_length_check(self):
        model = QAOAMaxCutModel(3, TRIANGLE)
        with pytest.raises(ConfigError):
            model.cut_value([0, 1])

    def test_brute_force_triangle(self):
        assert QAOAMaxCutModel(3, TRIANGLE).max_cut_brute_force() == 2.0

    def test_brute_force_bipartite_cuts_everything(self):
        model = QAOAMaxCutModel.from_networkx(nx.complete_bipartite_graph(2, 3))
        assert model.max_cut_brute_force() == 6.0

    def test_hamiltonian_minimum_is_negative_maxcut(self):
        model = QAOAMaxCutModel(3, TRIANGLE)
        ground = model.hamiltonian.ground_energy(3)
        assert ground == pytest.approx(-model.max_cut_brute_force(), abs=1e-9)

    def test_expected_cut_is_negated_energy(self, rng):
        model = QAOAMaxCutModel(3, TRIANGLE, n_layers=2)
        params = model.init_params(rng)
        assert model.expected_cut(params) == pytest.approx(
            -model.energy(params), abs=1e-12
        )


class TestGradients:
    def test_adjoint_matches_finite_difference(self, rng):
        model = QAOAMaxCutModel(4, [(0, 1), (1, 2), (2, 3), (3, 0)], n_layers=2)
        params = 0.4 * rng.standard_normal(model.n_params)
        _, grads = model.loss_and_grad(params)
        numeric = finite_difference_gradient(
            model.ansatz, params, model.hamiltonian
        )
        np.testing.assert_allclose(grads, numeric, atol=1e-6)

    def test_shared_parameters_shift_rule(self, rng):
        # gamma/beta feed many gates; the shift rule must sum occurrences.
        model = QAOAMaxCutModel(3, TRIANGLE, n_layers=1)
        params = 0.4 * rng.standard_normal(model.n_params)
        shift = parameter_shift_gradient(model.ansatz, params, model.hamiltonian)
        _, adjoint = model.loss_and_grad(params)
        np.testing.assert_allclose(shift, adjoint, atol=1e-10)

    def test_shot_mode_requires_rng(self, rng):
        model = QAOAMaxCutModel(3, TRIANGLE)
        with pytest.raises(ConfigError):
            model.loss_and_grad(model.init_params(rng), shots=64)

    def test_shot_gradient_is_unbiased_estimate(self, rng):
        model = QAOAMaxCutModel(3, TRIANGLE, n_layers=1)
        params = 0.4 * rng.standard_normal(model.n_params)
        loss, grads = model.loss_and_grad(params, shots=4096, rng=rng)
        exact_loss, exact_grads = model.loss_and_grad(params)
        assert loss == pytest.approx(exact_loss, abs=0.2)
        np.testing.assert_allclose(grads, exact_grads, atol=0.5)


class TestTraining:
    def test_training_approaches_optimum(self):
        model = QAOAMaxCutModel.from_networkx(nx.cycle_graph(6), n_layers=3)
        trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=3))
        trainer.run(60)
        ratio = model.expected_cut(trainer.params) / model.max_cut_brute_force()
        assert ratio > 0.9

    def test_sample_cut_finds_optimum_after_training(self, rng):
        model = QAOAMaxCutModel.from_networkx(nx.cycle_graph(6), n_layers=3)
        trainer = Trainer(model, Adam(lr=0.1), config=TrainerConfig(seed=3))
        trainer.run(60)
        bits, value = model.sample_cut(trainer.params, shots=256, rng=rng)
        assert value == model.max_cut_brute_force()
        assert model.cut_value(bits) == value

    def test_exact_resume(self, memory_store):
        model = QAOAMaxCutModel(4, [(0, 1), (1, 2), (2, 3)], n_layers=2)
        config = TrainerConfig(seed=5)
        reference = Trainer(model, Adam(lr=0.1), config=config)
        reference.run(12)

        trainer = Trainer(model, Adam(lr=0.1), config=config)
        manager = CheckpointManager(memory_store, EveryKSteps(4))
        trainer.run(8, hooks=[manager])
        manager.close()

        resumed = Trainer(model, Adam(lr=0.1), config=config)
        record = resume_trainer(resumed, memory_store)
        assert record is not None and record.step == 8
        resumed.run(4)
        np.testing.assert_array_equal(resumed.params, reference.params)

    def test_statevector_provider_for_checkpointing(self, rng):
        model = QAOAMaxCutModel(3, TRIANGLE)
        params = model.init_params(rng)
        state = model.statevector(params)
        assert state.shape == (8,)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-12)
