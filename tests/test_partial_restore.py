"""Tests for ranged reads and tensor-selective (partial) checkpoint restore."""

import numpy as np
import pytest

from repro.core.serialize import pack_payload, read_header_ranged, unpack_partial
from repro.core.store import CheckpointStore
from repro.errors import (
    ConfigError,
    IntegrityError,
    SerializationError,
    StorageError,
)
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.simulated import SimulatedRemoteBackend, TransferCostModel
from repro.bench.workloads import vqe_trainer


def _reader_over(data: bytes):
    return lambda start, length: data[start : start + length]


@pytest.fixture
def payload(rng):
    tensors = {
        "params": rng.standard_normal(32),
        "statevector": (
            rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        ),
        "history": rng.standard_normal(100),
    }
    data = pack_payload({"kind": "full", "snapshot": {"step": 9}}, tensors)
    return data, tensors


# ---------------------------------------------------------------------------
# Backend ranged reads
# ---------------------------------------------------------------------------


class TestReadRange:
    def test_memory_backend(self):
        backend = InMemoryBackend()
        backend.write("obj", b"0123456789")
        assert backend.read_range("obj", 2, 4) == b"2345"
        assert backend.read_range("obj", 8, 10) == b"89"  # short read
        assert backend.read_range("obj", 20, 4) == b""

    def test_memory_backend_accounts_only_transferred_bytes(self):
        backend = InMemoryBackend()
        backend.write("obj", b"x" * 1000)
        backend.reset_counters()
        backend.read_range("obj", 0, 10)
        assert backend.bytes_read == 10

    def test_local_backend(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path)
        backend.write("obj", b"0123456789")
        assert backend.read_range("obj", 3, 3) == b"345"
        assert backend.read_range("obj", 9, 5) == b"9"

    def test_local_backend_missing_object(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path)
        with pytest.raises(StorageError):
            backend.read_range("ghost", 0, 1)

    def test_negative_range_rejected(self, tmp_path):
        for backend in (InMemoryBackend(), LocalDirectoryBackend(tmp_path)):
            backend.write("obj", b"abc")
            with pytest.raises(StorageError):
                backend.read_range("obj", -1, 2)
            with pytest.raises(StorageError):
                backend.read_range("obj", 0, -2)

    def test_simulated_backend_accounts_ranged_cost(self):
        model = TransferCostModel(bandwidth_bytes_per_s=1e6, rtt_seconds=0.01)
        backend = SimulatedRemoteBackend(model)
        backend.write("obj", b"x" * 1_000_000)
        backend.reset_accounting()
        backend.read_range("obj", 0, 1000)
        # 1000 bytes at 1 MB/s + 10 ms RTT, not the 1 s a full read costs.
        assert backend.last_transfer_seconds == pytest.approx(0.011)

    def test_base_class_fallback_slices_full_read(self):
        from repro.storage.backend import StorageBackend

        class MinimalBackend(StorageBackend):
            """Implements only the abstract surface; no ranged-read support."""

            def __init__(self):
                self.objects = {}

            def write(self, name, data):
                self.objects[name] = bytes(data)

            def read(self, name):
                return self.objects[name]

            def exists(self, name):
                return name in self.objects

            def delete(self, name):
                self.objects.pop(name, None)

            def list(self, prefix=""):
                return sorted(n for n in self.objects if n.startswith(prefix))

        backend = MinimalBackend()
        backend.write("obj", b"0123456789")
        assert backend.read_range("obj", 2, 3) == b"234"
        with pytest.raises(StorageError):
            backend.read_range("obj", -1, 1)


# ---------------------------------------------------------------------------
# unpack_partial
# ---------------------------------------------------------------------------


class TestUnpackPartial:
    def test_selects_named_tensors(self, payload):
        data, tensors = payload
        meta, out = unpack_partial(_reader_over(data), ("params",))
        assert set(out) == {"params"}
        np.testing.assert_array_equal(out["params"], tensors["params"])
        assert meta["snapshot"]["step"] == 9

    def test_none_selects_everything(self, payload):
        data, tensors = payload
        _, out = unpack_partial(_reader_over(data), None)
        assert set(out) == set(tensors)

    def test_missing_name_raises(self, payload):
        data, _ = payload
        with pytest.raises(SerializationError, match="not in this checkpoint"):
            unpack_partial(_reader_over(data), ("ghost",))

    def test_missing_name_skipped_when_lenient(self, payload):
        data, _ = payload
        _, out = unpack_partial(
            _reader_over(data), ("params", "ghost"), require_all=False
        )
        assert set(out) == {"params"}

    def test_corrupt_chunk_detected(self, payload):
        data, _ = payload
        header, payload_offset = read_header_ranged(_reader_over(data))
        entry = next(e for e in header["tensors"] if e["name"] == "params")
        position = payload_offset + entry["offset"] + 3
        corrupted = bytearray(data)
        corrupted[position] ^= 0xFF
        with pytest.raises(IntegrityError, match="CRC32"):
            unpack_partial(_reader_over(bytes(corrupted)), ("params",))

    def test_corrupt_other_chunk_not_read(self, payload):
        data, tensors = payload
        header, payload_offset = read_header_ranged(_reader_over(data))
        entry = next(e for e in header["tensors"] if e["name"] == "statevector")
        corrupted = bytearray(data)
        corrupted[payload_offset + entry["offset"] + 1] ^= 0xFF
        # Damage to an unselected tensor is invisible to a partial read.
        _, out = unpack_partial(_reader_over(bytes(corrupted)), ("params",))
        np.testing.assert_array_equal(out["params"], tensors["params"])

    def test_bad_magic(self):
        with pytest.raises(IntegrityError, match="magic"):
            unpack_partial(_reader_over(b"NOTQCKPT" + b"\0" * 64), ("x",))

    def test_truncated_header(self, payload):
        data, _ = payload
        with pytest.raises(IntegrityError):
            unpack_partial(_reader_over(data[:40]), ("params",))


# ---------------------------------------------------------------------------
# Store-level partial restore
# ---------------------------------------------------------------------------


class TestLoadPartial:
    def _populated(self, n_qubits=10, deltas=2):
        backend = InMemoryBackend()
        store = CheckpointStore(backend)
        trainer = vqe_trainer(n_qubits=n_qubits, seed=3)
        trainer.run(1)
        record = store.save_full(trainer.capture())
        for _ in range(deltas):
            trainer.run(1)
            record = store.save_delta(trainer.capture(), record.id)
        return backend, store, trainer, record

    def test_full_checkpoint_partial(self):
        _, store, trainer, _ = self._populated(deltas=0)
        first = store.records()[0]
        meta, tensors = store.load_partial(first.id, ["params"])
        full = store.load(first.id)
        np.testing.assert_array_equal(tensors["params"], full.params)
        assert meta["step"] == full.step

    def test_delta_chain_partial(self):
        _, store, trainer, record = self._populated(deltas=2)
        _, tensors = store.load_partial(record.id, ["params", "statevector"])
        full = store.load(record.id)
        np.testing.assert_array_equal(tensors["params"], full.params)
        np.testing.assert_array_equal(tensors["statevector"], full.statevector)

    def test_partial_transfers_far_fewer_bytes(self):
        backend, store, _, record = self._populated(n_qubits=12, deltas=1)
        backend.reset_counters()
        store.load_partial(record.id, ["params"])
        partial_bytes = backend.bytes_read
        backend.reset_counters()
        store.load(record.id)
        full_bytes = backend.bytes_read
        assert partial_bytes < full_bytes / 10

    def test_growing_history_resolves_through_append_deltas(self):
        _, store, trainer, record = self._populated(deltas=3)
        _, tensors = store.load_partial(record.id, ["loss_history"])
        np.testing.assert_array_equal(
            tensors["loss_history"],
            np.asarray(trainer.loss_history, dtype=np.float64),
        )

    def test_missing_tensor_raises(self):
        _, store, _, record = self._populated(deltas=0)
        with pytest.raises(SerializationError, match="not present"):
            store.load_partial(record.id, ["ghost"])

    def test_empty_selection_rejected(self):
        _, store, _, record = self._populated(deltas=0)
        with pytest.raises(ConfigError):
            store.load_partial(record.id, [])

    def test_duplicate_names_deduplicated(self):
        _, store, _, record = self._populated(deltas=0)
        _, tensors = store.load_partial(record.id, ["params", "params"])
        assert list(tensors) == ["params"]
