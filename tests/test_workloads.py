"""Tests for the benchmark workload generators (repro.bench.workloads)."""

import numpy as np
import pytest

from repro.bench.workloads import (
    classifier_trainer,
    classifier_workload,
    footprint_breakdown,
    hea_param_count,
    sparse_excitation_state,
    synthetic_snapshot,
    vqe_trainer,
)
from repro.mps.entanglement import schmidt_rank


class TestSparseExcitationState:
    def test_normalized(self, rng):
        state = sparse_excitation_state(8, rng)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-12)

    def test_support_is_low_excitation_subspace(self, rng):
        n = 7
        state = sparse_excitation_state(n, rng)
        support = np.nonzero(state)[0]
        assert len(support) == n + 1
        for index in support:
            assert bin(int(index)).count("1") <= 1

    def test_mostly_exact_zeros(self, rng):
        state = sparse_excitation_state(10, rng)
        assert np.count_nonzero(state == 0) == 2**10 - 11

    def test_low_schmidt_rank(self, rng):
        # One excitation shared across a cut gives Schmidt rank <= 2.
        state = sparse_excitation_state(6, rng)
        assert schmidt_rank(state, 3) <= 2

    def test_deterministic_for_seed(self):
        a = sparse_excitation_state(6, np.random.default_rng(4))
        b = sparse_excitation_state(6, np.random.default_rng(4))
        np.testing.assert_array_equal(a, b)


class TestSyntheticSnapshot:
    @pytest.mark.parametrize("kind", ["haar", "ansatz", "sparse"])
    def test_statevector_kinds_are_normalized(self, kind):
        snapshot = synthetic_snapshot(8, statevector_kind=kind)
        assert snapshot.statevector is not None
        assert np.linalg.norm(snapshot.statevector) == pytest.approx(
            1.0, abs=1e-9
        )
        assert snapshot.statevector.shape == (256,)

    def test_none_kind_omits_statevector(self):
        snapshot = synthetic_snapshot(8, statevector_kind="none")
        assert snapshot.statevector is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            synthetic_snapshot(8, statevector_kind="ghz")

    def test_deterministic_for_seed(self):
        a = synthetic_snapshot(6, seed=9)
        b = synthetic_snapshot(6, seed=9)
        assert a == b

    def test_snapshot_roundtrips_through_qckpt(self):
        from repro.core.serialize import pack_snapshot, unpack_snapshot

        snapshot = synthetic_snapshot(6, statevector_kind="sparse")
        assert unpack_snapshot(pack_snapshot(snapshot)) == snapshot


class TestFootprint:
    def test_breakdown_consistency(self):
        row = footprint_breakdown(10)
        assert row["total_bytes"] == (
            row["params_bytes"] + row["optimizer_bytes"] + row["statevector_bytes"]
        )
        assert row["statevector_bytes"] == 2**10 * 16

    def test_param_count_matches_template(self):
        assert footprint_breakdown(6)["n_params"] == hea_param_count(6)


class TestTrainerFactories:
    def test_classifier_trainer_deterministic(self):
        a = classifier_trainer(n_qubits=4, n_samples=16, seed=3)
        b = classifier_trainer(n_qubits=4, n_samples=16, seed=3)
        a.run(3)
        b.run(3)
        np.testing.assert_array_equal(a.params, b.params)

    def test_classifier_workload_shapes(self):
        model, dataset = classifier_workload(n_qubits=4, n_samples=20)
        assert len(dataset) == 20
        assert model.n_qubits == 4

    def test_vqe_trainer_captures_statevector(self):
        trainer = vqe_trainer(n_qubits=4, seed=2)
        trainer.run(1)
        snapshot = trainer.capture()
        assert snapshot.statevector is not None
        assert snapshot.statevector.shape == (16,)

    def test_vqe_trainer_loss_decreases(self):
        trainer = vqe_trainer(n_qubits=4, seed=2)
        reports = trainer.run(12)
        assert reports[-1].loss < reports[0].loss
