"""Property-based tests (hypothesis) on core invariants.

Targets: the QCKPT container, tree splitting, XOR deltas, byte codecs,
simulator unitarity, and optimizer state round-trips — the invariants the
checkpoint layer's exactness guarantee rests on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.codecs import get_codec, get_transform
from repro.core.delta import apply_delta, encode_delta, xor_bytes
from repro.core.serialize import pack_payload, unpack_payload
from repro.core.snapshot import join_tree, split_tree, tree_equal
from repro.quantum.haar import random_circuit
from repro.quantum.statevector import apply_circuit

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int8, np.uint8, np.complex128]
)


def _arrays(dtype):
    return hnp.arrays(
        dtype=dtype,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=16),
        elements=hnp.from_dtype(
            np.dtype(dtype), allow_nan=False, allow_infinity=False
        ),
    )


_TENSOR_DICTS = st.dictionaries(
    keys=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=8,
    ),
    values=_DTYPES.flatmap(_arrays),
    max_size=5,
)

_JSON_LEAVES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

_TREES = st.recursive(
    _JSON_LEAVES,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)),
                min_size=1,
                max_size=6,
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


class TestSerializeProperties:
    @_SETTINGS
    @given(tensors=_TENSOR_DICTS)
    def test_payload_roundtrip_arbitrary_tensors(self, tensors):
        data = pack_payload({"p": 1}, tensors, codec="zlib-1")
        meta, restored = unpack_payload(data)
        assert meta == {"p": 1}
        assert set(restored) == set(tensors)
        for name in tensors:
            assert restored[name].dtype == tensors[name].dtype
            assert np.array_equal(restored[name], tensors[name])

    @_SETTINGS
    @given(tensors=_TENSOR_DICTS, position=st.floats(min_value=0.0, max_value=0.999))
    def test_any_single_bitflip_detected(self, tensors, position):
        from repro.errors import CheckpointError

        data = bytearray(pack_payload({"p": 1}, tensors, codec="none"))
        offset = int(len(data) * position)
        data[offset] ^= 0x01
        with pytest.raises(CheckpointError):
            unpack_payload(bytes(data))

    @_SETTINGS
    @given(tree=st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",)),
            min_size=1,
            max_size=6,
        ),
        _TREES,
        max_size=4,
    ))
    def test_tree_split_join_roundtrip(self, tree):
        json_tree, tensors = split_tree(tree)
        assert tree_equal(join_tree(json_tree, tensors), tree)


class TestCodecProperties:
    @_SETTINGS
    @given(data=st.binary(max_size=4096), name=st.sampled_from(
        ["none", "zlib-1", "zlib-6", "zlib-9", "lzma", "bz2"]
    ))
    def test_codec_roundtrip(self, data, name):
        codec = get_codec(name)
        assert codec.decode(codec.encode(data)) == data

    @_SETTINGS
    @given(
        amplitudes=hnp.arrays(
            np.complex128,
            shape=st.integers(min_value=2, max_value=64).map(lambda n: 2 * n),
            elements=st.complex_numbers(
                max_magnitude=10.0, allow_nan=False, allow_infinity=False
            ),
        ).filter(lambda a: np.linalg.norm(a) > 1e-6)
    )
    def test_lossy_transform_outputs_valid_state(self, amplitudes):
        state = amplitudes / np.linalg.norm(amplitudes)
        for name in ("c64", "f16-pair", "int8-block"):
            transform = get_transform(name)
            encoded, meta = transform.encode(state)
            restored = transform.decode(encoded, meta)
            assert restored.shape == state.shape
            norm = np.linalg.norm(restored)
            assert norm == pytest.approx(1.0, abs=1e-6) or norm == 0.0


class TestDeltaProperties:
    @_SETTINGS
    @given(a=st.binary(min_size=1, max_size=512), flip=st.binary(max_size=512))
    def test_xor_self_inverse(self, a, flip):
        b = bytes(
            x ^ y for x, y in zip(a, flip.ljust(len(a), b"\x00")[: len(a)])
        )
        delta = xor_bytes(a, b)
        assert xor_bytes(a, delta) == b

    @_SETTINGS
    @given(base=_TENSOR_DICTS, current=_TENSOR_DICTS)
    def test_delta_roundtrip_arbitrary_directories(self, base, current):
        delta_tensors, meta = encode_delta(base, current)
        rebuilt = apply_delta(base, delta_tensors, meta)
        assert set(rebuilt) == set(current)
        for name in current:
            assert np.array_equal(rebuilt[name], current[name])
            assert rebuilt[name].dtype == current[name].dtype


class TestQuantumProperties:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_circuits_preserve_norm(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(3, 15, rng, parametric=True)
        state = apply_circuit(circuit)
        assert np.isclose(np.linalg.norm(state), 1.0, atol=1e-9)

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_probabilities_always_sum_to_one(self, seed):
        from repro.quantum.statevector import probabilities

        rng = np.random.default_rng(seed)
        circuit = random_circuit(3, 10, rng)
        probs = probabilities(apply_circuit(circuit))
        assert np.isclose(probs.sum(), 1.0, atol=1e-9)
        assert np.all(probs >= -1e-12)

    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        coeff=st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_pauli_expectation_bounded_by_coeff(self, seed, coeff):
        from repro.quantum.haar import haar_state, random_pauli_string

        rng = np.random.default_rng(seed)
        pauli = random_pauli_string(3, rng) * 0.0  # normalize weight then scale
        pauli = type(pauli)(coeff, pauli.paulis)
        state = haar_state(3, rng)
        assert abs(pauli.expectation(state)) <= abs(coeff) + 1e-9


class TestOptimizerProperties:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        split=st.integers(min_value=1, max_value=14),
    )
    def test_adam_resume_any_split_point(self, seed, split):
        from repro.ml.optimizers import Adam

        rng = np.random.default_rng(seed)
        grads = [rng.standard_normal(3) for _ in range(15)]

        reference, params_ref = Adam(lr=0.1), np.zeros(3)
        for g in grads:
            params_ref = reference.step(params_ref, g)

        first, params = Adam(lr=0.1), np.zeros(3)
        for g in grads[:split]:
            params = first.step(params, g)
        second = Adam(lr=0.1)
        second.load_state_dict(first.state_dict())
        for g in grads[split:]:
            params = second.step(params, g)
        assert np.array_equal(params, params_ref)
