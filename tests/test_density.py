"""Tests for the density-matrix engine, noisy gradients, and NoisyVQEModel."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.autodiff.density_shift import (
    density_parameter_shift_gradient,
    execute_density_with_overrides,
)
from repro.errors import CircuitError, ConfigError, GradientError
from repro.ml.models import NoisyVQEModel, VQEModel
from repro.ml.optimizers import Adam
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.circuit import Circuit
from repro.quantum.density import (
    DensityMatrixSimulator,
    apply_circuit_density,
    apply_gate_density,
    apply_kraus_density,
    density_from_statevector,
    density_nbytes,
    expectation_density,
    fidelity_density,
    is_density_matrix,
    maximally_mixed,
    n_qubits_of_density,
    partial_trace,
    probabilities_density,
    purity,
    von_neumann_entropy,
    zero_density,
)
from repro.quantum.gates import CNOT, HADAMARD, PAULI_X
from repro.quantum.haar import haar_state
from repro.quantum.noise import NoiseModel, depolarizing_kraus, run_noisy
from repro.quantum.observables import Hamiltonian, PauliString, Projector
from repro.quantum.statevector import apply_circuit, probabilities, zero_state
from repro.quantum.templates import hardware_efficient

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_circuit_state(n: int, layers: int, seed: int):
    rng = np.random.default_rng(seed)
    circuit = hardware_efficient(n, layers)
    params = 0.3 * rng.standard_normal(circuit.n_params)
    return circuit, params


# ---------------------------------------------------------------------------
# Construction / validation
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_zero_density(self):
        rho = zero_density(3)
        assert rho.shape == (8, 8)
        assert rho[0, 0] == 1.0
        assert np.trace(rho) == pytest.approx(1.0)

    def test_zero_density_rejects_bad_width(self):
        with pytest.raises(CircuitError):
            zero_density(0)

    def test_density_from_statevector(self, rng):
        psi = haar_state(3, rng)
        rho = density_from_statevector(psi)
        assert is_density_matrix(rho)
        assert purity(rho) == pytest.approx(1.0, abs=1e-12)

    def test_maximally_mixed(self):
        rho = maximally_mixed(3)
        assert purity(rho) == pytest.approx(1.0 / 8.0, abs=1e-12)
        assert von_neumann_entropy(rho) == pytest.approx(3.0, abs=1e-10)

    def test_n_qubits_of_density_validation(self):
        with pytest.raises(CircuitError):
            n_qubits_of_density(np.zeros((4, 2), dtype=np.complex128))
        with pytest.raises(CircuitError):
            n_qubits_of_density(np.zeros((3, 3), dtype=np.complex128))
        with pytest.raises(CircuitError):
            n_qubits_of_density(np.zeros(4, dtype=np.complex128))

    def test_is_density_matrix_rejects_non_hermitian(self):
        rho = zero_density(2)
        rho[0, 1] = 1.0
        assert not is_density_matrix(rho)

    def test_is_density_matrix_rejects_wrong_trace(self):
        assert not is_density_matrix(2.0 * zero_density(2))

    def test_is_density_matrix_rejects_negative(self):
        rho = np.diag([1.5, -0.5, 0.0, 0.0]).astype(np.complex128)
        assert not is_density_matrix(rho)

    def test_density_nbytes_scaling(self):
        assert density_nbytes(10) == 4**10 * 16
        assert density_nbytes(11) == 4 * density_nbytes(10)


# ---------------------------------------------------------------------------
# Unitary evolution agrees with the statevector engine
# ---------------------------------------------------------------------------


class TestUnitaryEvolution:
    def test_single_gate(self):
        rho = apply_gate_density(zero_density(1), HADAMARD, (0,))
        assert rho[0, 0] == pytest.approx(0.5)
        assert rho[0, 1] == pytest.approx(0.5)

    def test_gate_shape_validation(self):
        with pytest.raises(CircuitError):
            apply_gate_density(zero_density(2), HADAMARD, (0, 1))

    def test_circuit_matches_statevector(self):
        circuit, params = _random_circuit_state(4, 2, seed=9)
        psi = apply_circuit(circuit, params)
        rho = apply_circuit_density(circuit, params)
        np.testing.assert_allclose(
            rho, density_from_statevector(psi), atol=1e-12
        )

    def test_entangling_gate_on_noncontiguous_wires(self):
        circuit = Circuit(3).h(0).cnot(0, 2)
        psi = apply_circuit(circuit)
        rho = apply_circuit_density(circuit)
        np.testing.assert_allclose(
            rho, density_from_statevector(psi), atol=1e-12
        )

    def test_initial_state_width_check(self):
        circuit = Circuit(3).h(0)
        with pytest.raises(CircuitError):
            apply_circuit_density(circuit, initial=zero_density(2))

    def test_probabilities_match_statevector(self):
        circuit, params = _random_circuit_state(3, 2, seed=4)
        psi = apply_circuit(circuit, params)
        rho = apply_circuit_density(circuit, params)
        np.testing.assert_allclose(
            probabilities_density(rho), probabilities(psi), atol=1e-12
        )
        np.testing.assert_allclose(
            probabilities_density(rho, wires=(2, 0)),
            probabilities(psi, wires=(2, 0)),
            atol=1e-12,
        )

    def test_probabilities_wire_validation(self):
        rho = zero_density(2)
        with pytest.raises(CircuitError):
            probabilities_density(rho, wires=(0, 0))
        with pytest.raises(CircuitError):
            probabilities_density(rho, wires=(5,))


# ---------------------------------------------------------------------------
# Kraus channels
# ---------------------------------------------------------------------------


class TestKrausChannels:
    def test_trace_preserved(self):
        rho = apply_gate_density(zero_density(2), HADAMARD, (0,))
        out = apply_kraus_density(rho, depolarizing_kraus(0.3), (0,))
        assert np.trace(out).real == pytest.approx(1.0, abs=1e-12)
        assert is_density_matrix(out)

    def test_full_depolarizing_reaches_maximally_mixed(self):
        rho = zero_density(1)
        out = apply_kraus_density(rho, depolarizing_kraus(0.75), (0,))
        np.testing.assert_allclose(out, maximally_mixed(1), atol=1e-12)

    def test_empty_kraus_rejected(self):
        with pytest.raises(CircuitError):
            apply_kraus_density(zero_density(1), [], (0,))

    def test_noise_reduces_purity(self):
        circuit, params = _random_circuit_state(3, 1, seed=2)
        clean = apply_circuit_density(circuit, params)
        noisy = apply_circuit_density(
            circuit, params, noise=NoiseModel(depolarizing=0.1)
        )
        assert purity(noisy) < purity(clean)

    def test_trivial_noise_model_is_identity(self):
        circuit, params = _random_circuit_state(3, 1, seed=2)
        clean = apply_circuit_density(circuit, params)
        trivial = apply_circuit_density(circuit, params, noise=NoiseModel())
        np.testing.assert_allclose(clean, trivial, atol=1e-14)

    def test_trajectory_average_converges_to_exact(self):
        circuit, params = _random_circuit_state(2, 1, seed=6)
        noise = NoiseModel(depolarizing=0.1)
        hamiltonian = Hamiltonian.transverse_field_ising(2, 1.0, 0.8)
        exact = expectation_density(
            apply_circuit_density(circuit, params, noise=noise), hamiltonian
        )
        rng = np.random.default_rng(123)
        samples = [
            float(hamiltonian.expectation(run_noisy(circuit, params, noise, rng)))
            for _ in range(3000)
        ]
        error = abs(np.mean(samples) - exact)
        tolerance = 5 * np.std(samples) / np.sqrt(len(samples))
        assert error < tolerance


# ---------------------------------------------------------------------------
# Expectations
# ---------------------------------------------------------------------------


class TestExpectations:
    def test_pauli_expectation_matches_pure(self, rng):
        circuit, params = _random_circuit_state(3, 2, seed=7)
        psi = apply_circuit(circuit, params)
        rho = density_from_statevector(psi)
        for label in ("Z0", "X1 Z2", "Y0 X1 Z2"):
            observable = PauliString.from_label(label, coeff=0.7)
            assert expectation_density(rho, observable) == pytest.approx(
                observable.expectation(psi), abs=1e-10
            )

    def test_hamiltonian_expectation_matches_pure(self):
        circuit, params = _random_circuit_state(4, 2, seed=8)
        psi = apply_circuit(circuit, params)
        rho = density_from_statevector(psi)
        hamiltonian = Hamiltonian.heisenberg_chain(4, 1.0)
        assert expectation_density(rho, hamiltonian) == pytest.approx(
            hamiltonian.expectation(psi), abs=1e-10
        )

    def test_projector_expectation(self, rng):
        psi = haar_state(3, rng)
        rho = density_from_statevector(psi)
        assert expectation_density(rho, Projector(psi)) == pytest.approx(
            1.0, abs=1e-10
        )
        other = haar_state(3, rng)
        assert expectation_density(rho, Projector(other)) == pytest.approx(
            float(abs(np.vdot(other, psi)) ** 2), abs=1e-10
        )

    def test_identity_pauli_string(self):
        rho = maximally_mixed(2)
        assert expectation_density(rho, PauliString.identity(3.0)) == (
            pytest.approx(3.0, abs=1e-12)
        )


# ---------------------------------------------------------------------------
# Partial trace / fidelity / entropy
# ---------------------------------------------------------------------------


class TestReduction:
    def test_bell_state_reduction_is_mixed(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        rho = apply_circuit_density(circuit)
        reduced = partial_trace(rho, [0])
        np.testing.assert_allclose(reduced, maximally_mixed(1), atol=1e-12)

    def test_product_state_reduction_is_pure(self):
        circuit = Circuit(2).h(0)
        rho = apply_circuit_density(circuit)
        assert purity(partial_trace(rho, [0])) == pytest.approx(1.0, abs=1e-12)

    def test_partial_trace_wire_order(self, rng):
        psi = haar_state(3, rng)
        rho = density_from_statevector(psi)
        ab = partial_trace(rho, [0, 1])
        ba = partial_trace(rho, [1, 0])
        # Swapping the kept wires permutes the reduced matrix via SWAP.
        from repro.quantum.gates import SWAP

        np.testing.assert_allclose(SWAP @ ab @ SWAP, ba, atol=1e-12)

    def test_partial_trace_validation(self):
        rho = zero_density(2)
        with pytest.raises(CircuitError):
            partial_trace(rho, [])
        with pytest.raises(CircuitError):
            partial_trace(rho, [0, 0])
        with pytest.raises(CircuitError):
            partial_trace(rho, [3])

    def test_uhlmann_fidelity_pure_states(self, rng):
        a, b = haar_state(3, rng), haar_state(3, rng)
        expected = float(abs(np.vdot(a, b)) ** 2)
        assert fidelity_density(
            density_from_statevector(a), density_from_statevector(b)
        ) == pytest.approx(expected, abs=1e-7)

    def test_fidelity_mixed_vs_pure(self):
        rho = maximally_mixed(2)
        sigma = zero_density(2)
        assert fidelity_density(rho, sigma) == pytest.approx(0.25, abs=1e-10)

    def test_fidelity_shape_mismatch(self):
        with pytest.raises(CircuitError):
            fidelity_density(zero_density(2), zero_density(3))

    def test_entropy_pure_state_is_zero(self, rng):
        rho = density_from_statevector(haar_state(3, rng))
        assert von_neumann_entropy(rho) == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------------------
# Simulator facade
# ---------------------------------------------------------------------------


class TestDensityMatrixSimulator:
    def test_noiseless_matches_statevector_sim(self):
        circuit, params = _random_circuit_state(3, 2, seed=5)
        hamiltonian = Hamiltonian.transverse_field_ising(3, 1.0, 0.8)
        dm = DensityMatrixSimulator()
        assert dm.expectation(circuit, params, hamiltonian) == pytest.approx(
            hamiltonian.expectation(apply_circuit(circuit, params)), abs=1e-10
        )

    def test_noise_model_fixed_at_construction(self):
        circuit, params = _random_circuit_state(2, 1, seed=5)
        noisy = DensityMatrixSimulator(NoiseModel(depolarizing=0.2))
        clean = DensityMatrixSimulator()
        observable = PauliString.from_label("Z0")
        assert abs(noisy.expectation(circuit, params, observable)) < abs(
            clean.expectation(circuit, params, observable)
        ) + 1e-12

    def test_expectations_batch(self):
        circuit, params = _random_circuit_state(2, 1, seed=5)
        dm = DensityMatrixSimulator()
        observables = [PauliString.from_label("Z0"), PauliString.from_label("Z1")]
        batch = dm.expectations(circuit, params, observables)
        singles = [dm.expectation(circuit, params, o) for o in observables]
        np.testing.assert_allclose(batch, singles, atol=1e-12)

    def test_probabilities_sum_to_one(self):
        circuit, params = _random_circuit_state(3, 1, seed=5)
        dm = DensityMatrixSimulator(NoiseModel(amplitude_damping=0.1))
        probs = dm.probabilities(circuit, params)
        assert probs.sum() == pytest.approx(1.0, abs=1e-10)
        assert (probs >= -1e-12).all()


# ---------------------------------------------------------------------------
# Noisy gradients
# ---------------------------------------------------------------------------


class TestDensityShiftGradient:
    def _finite_difference(self, model, params, eps=1e-6):
        grads = np.zeros_like(params)
        for i in range(params.size):
            shift = np.zeros_like(params)
            shift[i] = eps
            grads[i] = (model.energy(params + shift) - model.energy(params - shift)) / (
                2 * eps
            )
        return grads

    def test_matches_finite_difference(self):
        model = NoisyVQEModel(
            hardware_efficient(3, 1),
            Hamiltonian.transverse_field_ising(3, 1.0, 0.8),
            NoiseModel(depolarizing=0.05, amplitude_damping=0.02),
        )
        params = model.init_params(np.random.default_rng(2))
        _, grads = model.loss_and_grad(params)
        np.testing.assert_allclose(
            grads, self._finite_difference(model, params), atol=1e-7
        )

    def test_noiseless_matches_statevector_shift(self, rng):
        circuit, params = _random_circuit_state(3, 1, seed=3)
        hamiltonian = Hamiltonian.transverse_field_ising(3, 1.0, 0.8)
        from repro.autodiff.parameter_shift import parameter_shift_gradient

        dense = density_parameter_shift_gradient(circuit, params, hamiltonian)
        pure = parameter_shift_gradient(circuit, params, hamiltonian)
        np.testing.assert_allclose(dense, pure, atol=1e-10)

    def test_four_term_rule_under_noise(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.crx(0, 1, circuit.new_param())
        observable = PauliString.from_label("Z1")
        noise = NoiseModel(phase_flip=0.05)
        params = np.array([0.7])

        def energy(values):
            return execute_density_with_overrides(
                circuit, values, observable, noise=noise
            )

        eps = 1e-6
        expected = (energy(params + eps) - energy(params - eps)) / (2 * eps)
        grads = density_parameter_shift_gradient(
            circuit, params, observable, noise=noise
        )
        assert grads[0] == pytest.approx(expected, abs=1e-7)

    def test_initial_density_width_check(self):
        circuit = Circuit(2).h(0)
        with pytest.raises(GradientError):
            execute_density_with_overrides(
                circuit,
                np.zeros(0),
                PauliString.from_label("Z0"),
                initial=zero_density(3),
            )


# ---------------------------------------------------------------------------
# NoisyVQEModel + trainer integration
# ---------------------------------------------------------------------------


class TestNoisyVQEModel:
    def _model(self, depolarizing=0.03):
        return NoisyVQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
            NoiseModel(depolarizing=depolarizing),
        )

    def test_rejects_wide_hamiltonian(self):
        with pytest.raises(ConfigError):
            NoisyVQEModel(
                hardware_efficient(2, 1),
                Hamiltonian.transverse_field_ising(3, 1.0, 0.8),
                NoiseModel(),
            )

    def test_rejects_shot_mode(self):
        model = self._model()
        with pytest.raises(ConfigError):
            model.loss_and_grad(np.zeros(model.n_params), shots=100)

    def test_fingerprint_depends_on_noise(self):
        assert self._model(0.03).fingerprint() != self._model(0.05).fingerprint()

    def test_noisy_energy_above_noiseless_ground(self):
        model = self._model(depolarizing=0.1)
        clean = VQEModel(model.ansatz, model.hamiltonian)
        rng = np.random.default_rng(0)
        params = model.init_params(rng)
        # Depolarizing noise pulls expectations toward 0, so the noisy energy
        # cannot undercut the true ground energy.
        ground = model.hamiltonian.ground_energy(2)
        assert model.energy(params) >= ground - 1e-9
        assert clean.energy(params) >= ground - 1e-9

    def test_training_reduces_energy(self):
        model = self._model()
        trainer = Trainer(
            model,
            Adam(lr=0.1),
            config=TrainerConfig(seed=11, capture_statevector=True),
        )
        first = trainer.train_step().loss
        for _ in range(14):
            last = trainer.train_step().loss
        assert last < first

    def test_snapshot_carries_density_matrix(self):
        model = self._model()
        trainer = Trainer(
            model,
            Adam(lr=0.1),
            config=TrainerConfig(seed=11, capture_statevector=True),
        )
        trainer.train_step()
        snapshot = trainer.capture()
        assert snapshot.statevector is None
        rho = snapshot.extra["density_matrix"]
        assert rho.shape == (4, 4)
        assert is_density_matrix(rho)

    def test_exact_resume(self, memory_store):
        from repro.core.manager import CheckpointManager
        from repro.core.policy import EveryKSteps
        from repro.core.recovery import resume_trainer

        model = self._model()
        config = TrainerConfig(seed=21)
        trainer = Trainer(model, Adam(lr=0.1), config=config)
        manager = CheckpointManager(memory_store, EveryKSteps(2))
        trainer.run(4, hooks=[manager])
        manager.close()
        trainer.run(3)

        resumed = Trainer(self._model(), Adam(lr=0.1), config=config)
        record = resume_trainer(resumed, memory_store)
        assert record is not None and record.step == 4
        resumed.run(3)
        np.testing.assert_array_equal(resumed.params, trainer.params)


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------


@_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    p=st.floats(min_value=0.0, max_value=0.5),
)
def test_property_channels_preserve_trace_and_positivity(seed, p):
    circuit, params = _random_circuit_state(2, 1, seed=seed)
    rho = apply_circuit_density(
        circuit, params, noise=NoiseModel(depolarizing=p, amplitude_damping=p / 2)
    )
    assert np.trace(rho).real == pytest.approx(1.0, abs=1e-9)
    assert is_density_matrix(rho, atol=1e-8)


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_purity_bounds(seed):
    circuit, params = _random_circuit_state(2, 1, seed=seed)
    rho = apply_circuit_density(circuit, params, noise=NoiseModel(depolarizing=0.2))
    value = purity(rho)
    assert 1.0 / 4.0 - 1e-9 <= value <= 1.0 + 1e-9
