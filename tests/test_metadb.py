"""Differential recovery-oracle tests for the SQLite metadata index.

The invariant under test, stated by the index design itself: the JSON files
are the durable truth and the index is a cache, so for ANY reachable store
state the indexed view must equal what a fresh, index-less reader folds
from the files — after every op batch, after deleting the index mid-run,
after reopening with a stale high-water mark, and after crash-shaped
half-states (those live in the chaos sweep; here the oracle is exercised
through randomized op sequences and process-level contention).

Behavioral parity: ``QCKPT_METADB=0`` runs this whole suite with the index
disabled (every ``_db`` helper returns ``None``), ``QCKPT_METADB=1`` (the
default here) with it enabled — CI runs both and both must pass, proving
the index changes performance, never behavior.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.snapshot import TrainingSnapshot
from repro.service.chunkstore import ChunkStore
from repro.service.scrub import scrub_store
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.metadb import (
    DB_FILENAME,
    MetaDB,
    metadb_enabled,
    parse_record_name,
)
from repro.storage.placement import PlacementJournal
from repro.storage.replicated import ReplicatedBackend

#: The CI parity job flips this via QCKPT_METADB; default-on in this suite.
USE_INDEX = metadb_enabled(None, default=True)

_oracle_ids = itertools.count()


def _db(path):
    """Index over ``path`` — or ``None`` when the parity job disabled it."""
    return MetaDB(path) if USE_INDEX else None


def _snap(step: int) -> TrainingSnapshot:
    rng = np.random.default_rng(step)
    return TrainingSnapshot(
        step=step,
        params=rng.normal(size=24),
        optimizer_state={"lr": 0.01},
        rng_state={"seed": step},
        model_fingerprint="metadb-model",
    )


def _journal_state(journal: PlacementJournal):
    """Comparable placement state of one journal's current fold."""
    journal.refresh()
    return (
        set(journal._pins),
        dict(journal._pin_owner),
        {
            role: (slot.holder, slot.expires)
            for role, slot in journal._leases.items()
        },
    )


def _oracle_state(backend):
    """The recovery oracle: a fresh, index-less fold of the journal files."""
    oracle = PlacementJournal(
        backend, owner=f"oracle-{next(_oracle_ids)}", refresh_seconds=0.0
    )
    return _journal_state(oracle)


class TestJournalDifferentialOracle:
    def test_two_writer_randomized_ops(self, tmp_path, rng):
        """Random pin/unpin/lease/release/compact from two writers sharing
        one index file: after every batch, both writers' indexed folds must
        equal the file-journal oracle byte for byte."""
        backend = InMemoryBackend()
        db_path = tmp_path / DB_FILENAME
        writers = [
            PlacementJournal(
                backend,
                owner=f"writer-{i}",
                refresh_seconds=0.0,
                lease_seconds=1000.0,
                metadb=_db(db_path),
            )
            for i in range(2)
        ]
        names = [f"job-demo-ckpt-{i:06d}.json" for i in range(6)]
        roles = ["rebalance", "compact", "scrub"]
        for step in range(120):
            writer = writers[int(rng.integers(2))]
            op = int(rng.integers(6))
            if op <= 1:
                writer.pin(names[int(rng.integers(len(names)))])
            elif op == 2:
                writer.unpin(names[int(rng.integers(len(names)))])
            elif op == 3:
                writer.acquire_lease(
                    roles[int(rng.integers(len(roles)))], ttl=1000.0
                )
            elif op == 4:
                writer.release_lease(roles[int(rng.integers(len(roles)))])
            elif int(rng.integers(4)) == 0:
                writer.compact()
            if step % 10 == 9:
                expect = _oracle_state(backend)
                for each in writers:
                    assert _journal_state(each) == expect, f"step {step}"

    def test_index_deletion_mid_run_loses_nothing(self, tmp_path, rng):
        """Deleting the .db mid-run must lose no metadata: the next indexed
        open rebuilds the whole fold from the journal files."""
        backend = InMemoryBackend()
        db_path = tmp_path / DB_FILENAME
        journal = PlacementJournal(
            backend, owner="first", refresh_seconds=0.0, metadb=_db(db_path)
        )
        for i in range(8):
            journal.pin(f"job-a-ckpt-{i:06d}.json")
        journal.unpin("job-a-ckpt-000003.json")
        assert journal.acquire_lease("rebalance", ttl=1000.0)
        journal.compact()
        journal.pin("job-a-ckpt-000099.json")
        expect = _oracle_state(backend)
        for suffix in ("", "-wal", "-shm"):
            target = Path(str(db_path) + suffix)
            if target.exists():
                target.unlink()
        reborn = PlacementJournal(
            backend, owner="reborn", refresh_seconds=0.0, metadb=_db(db_path)
        )
        assert _journal_state(reborn) == expect
        if USE_INDEX:
            state = reborn._db.placement_state()
            assert state.pins == expect[0]
            assert state.hwm > (0, "")

    def test_stale_hwm_reopen_catches_up_from_suffix(self, tmp_path):
        """An index left behind by further journal writes catches up by
        folding only the suffix past its high-water mark — no rebuild."""
        backend = InMemoryBackend()
        writer_db = tmp_path / "writer.db"
        stale_db = tmp_path / "stale.db"
        writer = PlacementJournal(
            backend, owner="writer", refresh_seconds=0.0, metadb=_db(writer_db)
        )
        writer.pin("job-x-ckpt-000001.json")
        writer.pin("job-x-ckpt-000002.json")
        observer = PlacementJournal(
            backend, owner="observer", refresh_seconds=0.0, metadb=_db(stale_db)
        )
        assert _journal_state(observer) == _oracle_state(backend)
        if USE_INDEX:
            observer._db.close()
        # The observer's index now goes stale.
        writer.unpin("job-x-ckpt-000001.json")
        writer.pin("job-x-ckpt-000003.json")
        assert writer.acquire_lease("rebalance", ttl=1000.0)
        reopened = PlacementJournal(
            backend, owner="observer-2", refresh_seconds=0.0,
            metadb=_db(stale_db),
        )
        assert _journal_state(reopened) == _oracle_state(backend)
        if USE_INDEX:
            metrics = reopened._db.metrics
            assert metrics.counter("metadb.full_folds").value == 0
            assert metrics.counter("metadb.catchup_records").value > 0

    def test_out_of_order_record_forces_full_refold(self, tmp_path):
        """A record sorting at-or-below the high-water mark that the base
        does not cover must invalidate the incremental state — the file
        fold is the oracle and wins."""
        if not USE_INDEX:
            pytest.skip("exercises index-internal invalidation")
        backend = InMemoryBackend()
        first = PlacementJournal(backend, owner="zz", refresh_seconds=0.0)
        first.pin("job-a-ckpt-000001.json")
        indexed = PlacementJournal(
            backend,
            owner="reader",
            refresh_seconds=0.0,
            metadb=MetaDB(tmp_path / DB_FILENAME),
        )
        assert indexed._base_hwm == (1, "zz")
        # A concurrent writer that allocated the same sequence number with
        # a lexicographically smaller owner sorts *before* the mark.
        rogue = {
            "version": 1,
            "seq": 1,
            "owner": "aa",
            "ts": 0.0,
            "op": "pin",
            "name": "job-rogue-ckpt-000001.json",
        }
        backend.write(
            "plj-00000001-aa.json",
            json.dumps(rogue, sort_keys=True).encode("utf-8"),
        )
        assert parse_record_name("plj-00000001-aa.json") == (1, "aa")
        indexed.refresh()
        assert _journal_state(indexed) == _oracle_state(backend)
        assert "job-rogue-ckpt-000001.json" in indexed.pinned_names()
        assert indexed._db.metrics.counter("metadb.full_folds").value >= 1

    def test_corrupt_index_discarded_never_trusted(self, tmp_path):
        if not USE_INDEX:
            pytest.skip("exercises index-file corruption handling")
        backend = InMemoryBackend()
        db_path = tmp_path / DB_FILENAME
        journal = PlacementJournal(
            backend, owner="writer", refresh_seconds=0.0,
            metadb=MetaDB(db_path),
        )
        journal.pin("job-a-ckpt-000001.json")
        journal._db.close()
        db_path.write_bytes(b"this is not a sqlite database")
        reopened_db = MetaDB(db_path)
        assert reopened_db.discarded_previous
        reopened = PlacementJournal(
            backend, owner="reader", refresh_seconds=0.0, metadb=reopened_db
        )
        assert _journal_state(reopened) == _oracle_state(backend)

    def test_schema_version_mismatch_rebuilds(self, tmp_path):
        if not USE_INDEX:
            pytest.skip("exercises index schema versioning")
        db_path = tmp_path / DB_FILENAME
        db = MetaDB(db_path)
        db.upsert_daemon_job("j1", "d1", "running", 1, 0.0)
        db._conn.execute(
            "UPDATE meta SET value='9999' WHERE key='schema_version'"
        )
        db._conn.commit()
        db.close()
        reopened = MetaDB(db_path)
        assert reopened.discarded_previous
        assert reopened.count_daemon_jobs() == 0


class TestChunkStoreDifferential:
    def test_randomized_ops_match_scan(self, tmp_path, rng):
        """save/delete/gc through the indexed store: discovery and the
        dedup index must match an index-less store scanning the files."""
        backend = InMemoryBackend()
        db_path = tmp_path / "manifest.db"
        store = ChunkStore(backend, metadb=_db(db_path))
        jobs = ["alpha", "beta"]
        for step in range(14):
            op = int(rng.integers(5))
            job = jobs[int(rng.integers(len(jobs)))]
            if op <= 2:
                store.save_snapshot(job, _snap(int(rng.integers(1000))))
            elif op == 3:
                latest = store.latest(job)
                if latest is not None:
                    store.delete_checkpoint(job, latest)
            else:
                store.gc(keep_last_per_job=2)
            oracle = ChunkStore(backend)  # fresh index-less scan
            assert store.jobs() == oracle.jobs(), f"step {step}"
            for job_id in jobs:
                assert store.manifest_names(job_id) == oracle.manifest_names(
                    job_id
                ), f"step {step}"
                assert store.latest(job_id) == oracle.latest(job_id)
                assert store.has_checkpoints(job_id) == bool(
                    oracle.manifest_names(job_id)
                )
        # Reopening against the same index reconciles to the same state.
        reopened = ChunkStore(backend, metadb=_db(db_path))
        oracle = ChunkStore(backend)
        assert reopened.jobs() == oracle.jobs()
        assert reopened._known == oracle._known
        for job_id in oracle.jobs():
            indexed_ckpt, indexed_snap, _ = reopened.latest_valid(job_id)
            oracle_ckpt, oracle_snap, _ = oracle.latest_valid(job_id)
            assert indexed_ckpt == oracle_ckpt
            if oracle_snap is not None:
                assert (
                    indexed_snap.params.tobytes()
                    == oracle_snap.params.tobytes()
                )

    def test_gc_liveness_by_query_matches_manifest_walk(self, tmp_path):
        backend = InMemoryBackend()
        store = ChunkStore(backend, metadb=_db(tmp_path / "gc.db"))
        for step in range(4):
            store.save_snapshot("gcjob", _snap(step))
        before = set(backend.list("ch-"))
        result = store.gc(keep_last_per_job=1)
        assert result["manifests"] == 3
        oracle = ChunkStore(backend)
        assert oracle.manifest_names("gcjob") == store.manifest_names("gcjob")
        # Every surviving chunk is referenced by the surviving manifest;
        # the swept ones are gone from backend and dedup index alike.
        _, snap, _ = oracle.latest_valid("gcjob")
        assert snap is not None and snap.step == 3
        swept = before - set(backend.list("ch-"))
        assert result["chunks"] == len(swept)
        assert not (swept & set(store._known))


class TestScrubIndexCoherence:
    def test_chunk_repair_keeps_indexed_latest_valid_bitwise(self, tmp_path):
        """Corrupt chunk → scrub repair → latest_valid through the index
        still restores bitwise (the satellite regression)."""
        replica_a, replica_b = InMemoryBackend(), InMemoryBackend()
        backend = ReplicatedBackend([replica_a, replica_b], read_repair=False)
        db = _db(tmp_path / "scrub.db")
        store = ChunkStore(backend, metadb=db)
        snap = _snap(7)
        store.save_snapshot("repairjob", snap)
        address = sorted(replica_a.list("ch-"))[0]
        replica_a.write(address, b"bit-rot")
        report = scrub_store(backend, repair=True, metadb=db)
        assert report.repaired >= 1
        reopened = ChunkStore(backend, metadb=db)
        ckpt_id, restored, skipped = reopened.latest_valid("repairjob")
        assert ckpt_id == "ckpt-000001"
        assert restored is not None and not skipped
        assert restored.params.tobytes() == snap.params.tobytes()

    def test_unrestorable_manifest_quarantine_invalidates_row(self, tmp_path):
        replica_a, replica_b = InMemoryBackend(), InMemoryBackend()
        backend = ReplicatedBackend([replica_a, replica_b], read_repair=False)
        db = _db(tmp_path / "scrub2.db")
        store = ChunkStore(backend, metadb=db)
        keep = _snap(1)
        store.save_snapshot("quarjob", keep)
        store.save_snapshot("quarjob", _snap(2))
        doomed = store.manifest_names("quarjob")[-1]
        for replica in (replica_a, replica_b):
            replica.write(doomed, b"not json at all")  # no good copy left
        scrub_store(backend, repair=True, metadb=db)
        if USE_INDEX:
            assert doomed not in db.manifest_objects()
        reopened = ChunkStore(backend, metadb=db)
        ckpt_id, restored, _ = reopened.latest_valid("quarjob")
        assert ckpt_id == "ckpt-000001"
        assert restored.params.tobytes() == keep.params.tobytes()


def _contention_worker(root, db_path, owner, seed, steps):
    """One process of the two-process contention test (fork target)."""
    backend = LocalDirectoryBackend(root, fsync=False)
    db = MetaDB(db_path) if db_path else None
    journal = PlacementJournal(
        backend,
        owner=owner,
        refresh_seconds=0.0,
        lease_seconds=30.0,
        metadb=db,
    )
    rng = np.random.default_rng(seed)
    names = [f"job-shared-ckpt-{i:06d}.json" for i in range(4)]
    for _ in range(steps):
        op = int(rng.integers(4))
        if op == 0:
            journal.pin(names[int(rng.integers(len(names)))])
        elif op == 1:
            journal.unpin(names[int(rng.integers(len(names)))])
        elif op == 2:
            journal.acquire_lease("rebalance", ttl=30.0)
        else:
            journal.release_lease("rebalance")
    if db is not None:
        db.close()


class TestTwoProcessContention:
    def test_pin_lease_contention_through_shared_index(self, tmp_path):
        """Two real processes hammering one journal + one index file: the
        indexed fold must equal the oracle fold, so last-op-wins pins and
        claim-then-verify leases are semantically unchanged (the process
        analog of tests/test_placement.py's two-process property test)."""
        root = tmp_path / "journal"
        root.mkdir()
        db_path = str(tmp_path / DB_FILENAME) if USE_INDEX else None
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_contention_worker,
                args=(str(root), db_path, f"proc-{i}", 1000 + i, 40),
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        backend = LocalDirectoryBackend(root, fsync=False)
        expect = _oracle_state(backend)
        indexed = PlacementJournal(
            backend,
            owner="verify",
            refresh_seconds=0.0,
            metadb=_db(tmp_path / DB_FILENAME),
        )
        assert _journal_state(indexed) == expect
        # Lease safety: however the race resolved, at most one holder, and
        # the indexed reader and the oracle agree on who it is.
        holders = expect[2]
        assert len(holders) <= 1
        for role in holders:
            assert indexed.lease_holder(role) == holders[role][0]


class TestIndexInvisibleToBackend:
    def test_sidecar_is_not_a_backend_object(self, tmp_path):
        """The .db sidecar must never leak into the store's namespace."""
        if not USE_INDEX:
            pytest.skip("no sidecar when the index is disabled")
        root = tmp_path / "store"
        backend = LocalDirectoryBackend(root, fsync=False)
        db = MetaDB(root / DB_FILENAME)
        store = ChunkStore(backend, metadb=db)
        store.save_snapshot("leakjob", _snap(1))
        assert os.path.exists(root / DB_FILENAME)
        listed = backend.list("")
        assert not any(name.startswith(".") for name in listed)
        assert DB_FILENAME not in listed
