"""Unit tests for the snapshot data model and tree splitting."""

import numpy as np
import pytest

from repro.core.snapshot import (
    TrainingSnapshot,
    join_tree,
    split_tree,
    tree_equal,
)
from repro.errors import IncompatibleCheckpointError, SerializationError
from repro.ml.optimizers import Adam
from repro.ml.rng import capture_rng_state


def sample_snapshot(step=7, with_statevector=True) -> TrainingSnapshot:
    rng = np.random.default_rng(step)
    params = rng.standard_normal(12)
    optimizer = Adam(lr=0.05)
    optimizer.step(params, rng.standard_normal(12))
    statevector = None
    if with_statevector:
        vec = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        statevector = vec / np.linalg.norm(vec)
    return TrainingSnapshot(
        step=step,
        params=params,
        optimizer_state=optimizer.state_dict(),
        rng_state=capture_rng_state(rng),
        model_fingerprint="fp-test",
        sampler_state={
            "epoch": 1,
            "cursor": 3,
            "permutation": np.arange(10),
            "rng_state": capture_rng_state(np.random.default_rng(1)),
            "n_items": 10,
            "batch_size": 4,
        },
        loss_history=np.array([1.0, 0.8, 0.5]),
        statevector=statevector,
        wall_time=12.5,
        extra={"note": "unit-test"},
    )


class TestSplitJoinTree:
    def test_roundtrip_nested(self):
        tree = {
            "a": 1,
            "b": {"c": np.arange(4), "d": [1.5, {"e": np.ones(2)}]},
            "f": None,
            "g": True,
            "h": "text",
        }
        json_tree, tensors = split_tree(tree)
        assert set(tensors) == {"b/c", "b/d/1/e"}
        rebuilt = join_tree(json_tree, tensors)
        assert tree_equal(tree, rebuilt)

    def test_numpy_scalars_converted(self):
        tree = {"i": np.int64(5), "f": np.float64(2.5), "b": np.bool_(True)}
        json_tree, _ = split_tree(tree)
        assert json_tree == {"i": 5, "f": 2.5, "b": True}
        assert isinstance(json_tree["i"], int)

    def test_rejects_non_string_keys(self):
        with pytest.raises(SerializationError):
            split_tree({1: "x"})

    def test_rejects_slash_in_keys(self):
        with pytest.raises(SerializationError):
            split_tree({"a/b": 1})

    def test_rejects_unsupported_leaf(self):
        with pytest.raises(SerializationError):
            split_tree({"fn": lambda: None})

    def test_join_missing_tensor_rejected(self):
        json_tree, tensors = split_tree({"x": np.ones(2)})
        with pytest.raises(SerializationError):
            join_tree(json_tree, {})

    def test_tuple_becomes_list(self):
        json_tree, _ = split_tree({"t": (1, 2)})
        assert json_tree["t"] == [1, 2]

    def test_tree_equal_array_mismatch(self):
        assert not tree_equal({"a": np.ones(2)}, {"a": np.zeros(2)})
        assert not tree_equal({"a": np.ones(2)}, {"a": 1.0})
        assert not tree_equal(
            {"a": np.ones(2)}, {"a": np.ones(2, dtype=np.float32)}
        )

    def test_tree_equal_dict_keys(self):
        assert not tree_equal({"a": 1}, {"b": 1})


class TestTrainingSnapshot:
    def test_payload_roundtrip(self):
        snapshot = sample_snapshot()
        meta, tensors = snapshot.to_payload()
        rebuilt = TrainingSnapshot.from_payload(meta, tensors)
        assert rebuilt == snapshot

    def test_payload_roundtrip_without_optional_fields(self):
        snapshot = TrainingSnapshot(
            step=0,
            params=np.zeros(3),
            optimizer_state={"kind": "sgd", "hyper": {}, "slots": {"t": 0}},
            rng_state={"bit_generator": "PCG64"},
            model_fingerprint="fp",
        )
        meta, tensors = snapshot.to_payload()
        assert TrainingSnapshot.from_payload(meta, tensors) == snapshot

    def test_meta_is_json_serializable(self):
        import json

        meta, _ = sample_snapshot().to_payload()
        json.dumps(meta)

    def test_from_payload_missing_field(self):
        with pytest.raises(SerializationError):
            TrainingSnapshot.from_payload({"schema": 1}, {})

    def test_from_payload_wrong_schema(self):
        meta, tensors = sample_snapshot().to_payload()
        meta = dict(meta)
        meta["schema"] = 99
        with pytest.raises(SerializationError):
            TrainingSnapshot.from_payload(meta, tensors)

    def test_copy_is_independent(self):
        snapshot = sample_snapshot()
        dup = snapshot.copy()
        dup.params[0] = 1e9
        dup.optimizer_state["slots"]["t"] = 999
        assert snapshot.params[0] != 1e9
        assert snapshot.optimizer_state["slots"]["t"] != 999

    def test_copy_equal(self):
        snapshot = sample_snapshot()
        assert snapshot.copy() == snapshot

    def test_equality_detects_param_change(self):
        a, b = sample_snapshot(), sample_snapshot()
        b.params = b.params + 1e-12
        assert a != b

    def test_check_compatible(self):
        snapshot = sample_snapshot()
        snapshot.check_compatible("fp-test")
        with pytest.raises(IncompatibleCheckpointError):
            snapshot.check_compatible("other")

    def test_nbytes_counts_tensors(self):
        with_sv = sample_snapshot(with_statevector=True).nbytes()
        without = sample_snapshot(with_statevector=False).nbytes()
        assert with_sv - without == 16 * 16  # 16 complex128 amplitudes

    def test_types_normalized(self):
        snapshot = TrainingSnapshot(
            step=np.int64(3),
            params=[1, 2, 3],
            optimizer_state={},
            rng_state={},
            model_fingerprint="fp",
        )
        assert isinstance(snapshot.step, int)
        assert snapshot.params.dtype == np.float64
