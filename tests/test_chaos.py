"""Crash-point registry + the systematic kill-reopen-assert sweep.

The sweep itself is the test: every registered crash point must trigger in
its scenario and leave the store restorable. Around it: registry mechanics
(arming, n-th-hit, BaseException semantics) and the coverage closure — a
point with no scenario fails loudly instead of silently shrinking coverage.
"""

from __future__ import annotations

import pytest

from repro.faults import chaos
from repro.faults.chaos import CrashPointResult, run_crash_point, run_sweep
from repro.faults.crashpoints import (
    REGISTRY,
    CrashPointTriggered,
    crash_point,
    register_crash_point,
)

# Importing repro.faults.chaos imports every instrumented module, so the
# registry is fully populated before any test below reads it.
EXPECTED_MIN_POINTS = 10


class TestRegistry:
    def test_registered_points_cover_all_write_surfaces(self):
        names = REGISTRY.names()
        assert len(names) >= EXPECTED_MIN_POINTS
        prefixes = {name.split(".")[0] for name in names}
        assert {
            "chunkstore",
            "corestore",
            "placement",
            "daemon",
            "scrub",
            "metadb",
        } <= prefixes

    def test_disarmed_hit_is_noop(self):
        crash_point("chunkstore.chunk.before-write")  # must not raise

    def test_armed_hit_raises_and_self_disarms(self):
        point = "chunkstore.chunk.before-write"
        REGISTRY.arm(point)
        with pytest.raises(CrashPointTriggered) as info:
            crash_point(point)
        assert info.value.point == point
        crash_point(point)  # second hit: already disarmed

    def test_nth_hit_arming(self):
        point = "chunkstore.chunk.before-write"
        with REGISTRY.armed(point, on_hit=3):
            crash_point(point)
            crash_point(point)
            with pytest.raises(CrashPointTriggered):
                crash_point(point)

    def test_armed_context_disarms_on_exit(self):
        point = "chunkstore.chunk.before-write"
        with REGISTRY.armed(point):
            pass
        crash_point(point)

    def test_arming_unknown_point_rejected(self):
        with pytest.raises(KeyError):
            REGISTRY.arm("no.such.point")

    def test_triggered_is_baseexception_not_exception(self):
        # An `except Exception` recovery handler must never swallow the
        # simulated kill — that is the whole point of the harness.
        assert issubclass(CrashPointTriggered, BaseException)
        assert not issubclass(CrashPointTriggered, Exception)

    def test_register_is_idempotent(self):
        before = REGISTRY.describe()
        name = register_crash_point(
            "chunkstore.chunk.before-write", "different text ignored"
        )
        assert REGISTRY.describe() == before
        assert name == "chunkstore.chunk.before-write"


class TestSweep:
    def test_unknown_point_reports_missing_scenario(self):
        register_crash_point("orphaned.test.point", "no scenario on purpose")
        try:
            result = run_crash_point("orphaned.test.point")
            assert not result.ok
            assert any("no chaos scenario" in v for v in result.violations)
        finally:
            with REGISTRY._lock:
                REGISTRY._points.pop("orphaned.test.point", None)

    @pytest.mark.parametrize("point", sorted(REGISTRY.describe()))
    def test_every_point_survives_kill_and_reopen(self, point):
        result = run_crash_point(point)
        assert result.triggered, f"{point} never triggered in its scenario"
        assert result.violations == []

    def test_full_sweep_is_green(self):
        results = run_sweep()
        assert len(results) >= EXPECTED_MIN_POINTS
        assert all(isinstance(r, CrashPointResult) for r in results)
        failing = [r.point for r in results if not r.ok]
        assert failing == []


class TestChaosCli:
    def test_list_mode(self, capsys):
        assert chaos.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "chunkstore.manifest.before-write" in out

    def test_single_point_json(self, capsys):
        assert chaos.main(["--points", "placement.record.after-write", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"triggered": true' in out
        assert '"violations": []' in out

    def test_exit_code_on_violation(self, capsys):
        register_crash_point("orphaned.cli.point", "no scenario on purpose")
        try:
            assert chaos.main(["--points", "orphaned.cli.point"]) == 1
            assert "FAIL" in capsys.readouterr().out
        finally:
            with REGISTRY._lock:
                REGISTRY._points.pop("orphaned.cli.point", None)
