"""Unit tests for the trainable hybrid models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ml.models import UnitaryLearningModel, VariationalClassifier, VQEModel
from repro.quantum.circuit import Circuit
from repro.quantum.haar import haar_state, haar_unitary
from repro.quantum.observables import Hamiltonian, PauliString
from repro.quantum.templates import hardware_efficient


def _numeric_loss_grad(model, params, batch, eps=1e-6):
    grads = np.zeros_like(params)
    for i in range(params.size):
        up = params.copy()
        up[i] += eps
        down = params.copy()
        down[i] -= eps
        loss_up, _ = model.loss_and_grad(up, batch)
        loss_down, _ = model.loss_and_grad(down, batch)
        grads[i] = (loss_up - loss_down) / (2 * eps)
    return grads


class TestVariationalClassifier:
    def _model(self, loss="mse"):
        return VariationalClassifier(hardware_efficient(2, 1), loss=loss)

    def test_output_in_range(self, rng):
        model = self._model()
        params = model.init_params(rng)
        for _ in range(5):
            value = model.forward_one(params, rng.standard_normal(2))
            assert -1.0 <= value <= 1.0 + 1e-12

    def test_predict_signs(self, rng):
        model = self._model()
        params = model.init_params(rng)
        preds = model.predict(params, rng.standard_normal((6, 2)))
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_accuracy_bounds(self, rng):
        model = self._model()
        params = model.init_params(rng)
        features = rng.standard_normal((8, 2))
        labels = np.ones(8)
        acc = model.accuracy(params, features, labels)
        assert 0.0 <= acc <= 1.0

    @pytest.mark.parametrize("loss", ["mse", "bce"])
    def test_gradient_matches_numeric(self, loss, rng):
        model = self._model(loss)
        params = model.init_params(rng, scale=0.4)
        features = rng.standard_normal((3, 2))
        labels = np.array([1.0, -1.0, 1.0])
        _, grads = model.loss_and_grad(params, (features, labels))
        numeric = _numeric_loss_grad(model, params, (features, labels))
        assert np.allclose(grads, numeric, atol=1e-5)

    def test_mse_loss_zero_when_perfect(self):
        # Build a model whose output is exactly +1 for the given sample.
        model = VariationalClassifier(
            hardware_efficient(1, 1, rotations=("ry",), ring=False),
            encoder=lambda x: Circuit(1),
            encoder_id="null",
        )
        params = np.zeros(model.n_params)
        loss, _ = model.loss_and_grad(params, (np.zeros((1, 1)), np.array([1.0])))
        assert np.isclose(loss, 0.0)

    def test_bce_loss_positive(self, rng):
        model = self._model("bce")
        params = model.init_params(rng)
        loss, _ = model.loss_and_grad(
            params, (rng.standard_normal((2, 2)), np.array([1.0, -1.0]))
        )
        assert loss > 0.0

    def test_invalid_loss_rejected(self):
        with pytest.raises(ConfigError):
            self._model("hinge")

    def test_shot_forward_requires_rng(self, rng):
        model = self._model()
        params = model.init_params(rng)
        with pytest.raises(ConfigError):
            model.forward_one(params, np.zeros(2), shots=10)

    def test_shot_based_loss_reproducible(self):
        model = self._model()
        params = model.init_params(np.random.default_rng(0), scale=0.3)
        batch = (np.ones((2, 2)) * 0.2, np.array([1.0, -1.0]))
        a = model.loss_and_grad(
            params, batch, shots=64, rng=np.random.default_rng(3)
        )
        b = model.loss_and_grad(
            params, batch, shots=64, rng=np.random.default_rng(3)
        )
        assert a[0] == b[0] and np.array_equal(a[1], b[1])

    def test_fingerprint_distinguishes_structure(self):
        a = VariationalClassifier(hardware_efficient(2, 1))
        b = VariationalClassifier(hardware_efficient(2, 2))
        c = VariationalClassifier(
            hardware_efficient(2, 1), readout=PauliString.from_label("Z1")
        )
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_fingerprint_stable(self):
        a = VariationalClassifier(hardware_efficient(2, 1))
        b = VariationalClassifier(hardware_efficient(2, 1))
        assert a.fingerprint() == b.fingerprint()


class TestVQEModel:
    def _model(self, n=2, layers=2):
        return VQEModel(
            hardware_efficient(n, layers), Hamiltonian.h2_minimal()
        )

    def test_energy_matches_loss(self, rng):
        model = self._model()
        params = model.init_params(rng)
        loss, _ = model.loss_and_grad(params)
        assert np.isclose(loss, model.energy(params))

    def test_gradient_matches_numeric(self, rng):
        model = self._model()
        params = model.init_params(rng, 0.5)
        _, grads = model.loss_and_grad(params)
        numeric = _numeric_loss_grad(model, params, None)
        assert np.allclose(grads, numeric, atol=1e-5)

    def test_energy_above_ground_state(self, rng):
        model = self._model()
        ground = Hamiltonian.h2_minimal().ground_energy(2)
        for _ in range(5):
            assert model.energy(model.init_params(rng, 1.0)) >= ground - 1e-9

    def test_training_reaches_chemical_accuracy(self):
        from repro.ml.optimizers import Adam

        model = self._model()
        rng = np.random.default_rng(2)
        params = model.init_params(rng, 0.1)
        optimizer = Adam(lr=0.1)
        for _ in range(200):
            _, grads = model.loss_and_grad(params)
            params = optimizer.step(params, grads)
        assert model.energy(params) < -1.85  # ground is -1.8573

    def test_statevector_shape(self, rng):
        model = self._model()
        sv = model.statevector(model.init_params(rng))
        assert sv.shape == (4,)
        assert np.isclose(np.linalg.norm(sv), 1.0)

    def test_shot_based_needs_rng(self, rng):
        model = self._model()
        with pytest.raises(ConfigError):
            model.loss_and_grad(model.init_params(rng), shots=16)

    def test_hamiltonian_width_checked(self):
        with pytest.raises(ConfigError):
            VQEModel(
                hardware_efficient(1, 1),
                Hamiltonian.transverse_field_ising(3, 1.0, 1.0),
            )

    def test_fingerprint_depends_on_hamiltonian(self):
        a = VQEModel(hardware_efficient(2, 1), Hamiltonian.h2_minimal())
        b = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 1.0),
        )
        assert a.fingerprint() != b.fingerprint()


class TestUnitaryLearningModel:
    def _model(self, rng, n=2, n_states=3):
        target = haar_unitary(2**n, rng)
        inputs = [haar_state(n, rng) for _ in range(n_states)]
        return UnitaryLearningModel(strongly(n), target, inputs)

    def test_loss_is_one_minus_fidelity(self, rng):
        model = self._model(rng)
        params = model.init_params(rng)
        loss, _ = model.loss_and_grad(params)
        assert np.isclose(loss, 1.0 - model.mean_fidelity(params))

    def test_loss_bounded(self, rng):
        model = self._model(rng)
        for _ in range(3):
            loss, _ = model.loss_and_grad(model.init_params(rng, 1.0))
            assert -1e-9 <= loss <= 1.0 + 1e-9

    def test_gradient_matches_numeric(self, rng):
        model = self._model(rng)
        params = model.init_params(rng, 0.5)
        _, grads = model.loss_and_grad(params)
        numeric = _numeric_loss_grad(model, params, None)
        assert np.allclose(grads, numeric, atol=1e-5)

    def test_identity_target_perfect_at_zero_params(self, rng):
        # Rotation-only ansatz is the identity at zero parameters.
        ansatz = Circuit(2)
        ansatz.ry(0, ansatz.new_param()).ry(1, ansatz.new_param())
        inputs = [haar_state(2, rng)]
        model = UnitaryLearningModel(ansatz, np.eye(4), inputs)
        loss, _ = model.loss_and_grad(np.zeros(ansatz.n_params))
        assert loss < 1e-10

    def test_training_improves_fidelity(self, rng):
        from repro.ml.optimizers import Adam

        model = self._model(rng)
        params = model.init_params(rng, 0.1)
        before = model.mean_fidelity(params)
        optimizer = Adam(lr=0.1)
        for _ in range(60):
            _, grads = model.loss_and_grad(params)
            params = optimizer.step(params, grads)
        assert model.mean_fidelity(params) > before

    def test_rejects_wrong_unitary_shape(self, rng):
        with pytest.raises(ConfigError):
            UnitaryLearningModel(strongly(2), np.eye(2), [haar_state(2, rng)])

    def test_rejects_wrong_state_shape(self, rng):
        with pytest.raises(ConfigError):
            UnitaryLearningModel(strongly(2), np.eye(4), [haar_state(3, rng)])

    def test_rejects_empty_training_set(self):
        with pytest.raises(ConfigError):
            UnitaryLearningModel(strongly(2), np.eye(4), [])

    def test_shots_unsupported(self, rng):
        model = self._model(rng)
        with pytest.raises(ConfigError):
            model.loss_and_grad(model.init_params(rng), shots=16)


def strongly(n: int) -> Circuit:
    from repro.quantum.templates import strongly_entangling

    return strongly_entangling(n, 2)
