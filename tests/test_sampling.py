"""Unit tests for shot-based sampling and expectation estimation."""

import numpy as np
import pytest

from repro.errors import ObservableError
from repro.quantum.circuit import Circuit
from repro.quantum.observables import Hamiltonian, PauliString
from repro.quantum.sampling import (
    estimate_expectation,
    estimate_variance_bound,
    sample_bitstrings,
    sample_counts,
)
from repro.quantum.statevector import apply_circuit, zero_state


class TestSampling:
    def test_deterministic_state_always_same_outcome(self, rng):
        samples = sample_bitstrings(zero_state(3), 100, rng)
        assert np.all(samples == 0)

    def test_sample_counts_sum_to_shots(self, rng):
        state = apply_circuit(Circuit(2).h(0).h(1))
        counts = sample_counts(state, 500, rng)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"00", "01", "10", "11"}

    def test_bell_state_only_correlated_outcomes(self, rng):
        state = apply_circuit(Circuit(2).h(0).cnot(0, 1))
        counts = sample_counts(state, 400, rng)
        assert set(counts) <= {"00", "11"}

    def test_reproducible_given_same_seed(self):
        state = apply_circuit(Circuit(3).h(0).h(1).h(2))
        a = sample_bitstrings(state, 64, np.random.default_rng(42))
        b = sample_bitstrings(state, 64, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_shots_validated(self, rng):
        with pytest.raises(ObservableError):
            sample_bitstrings(zero_state(1), 0, rng)

    def test_distribution_approaches_born_rule(self, rng):
        state = apply_circuit(Circuit(1).ry(0, 2 * np.arccos(np.sqrt(0.8))))
        samples = sample_bitstrings(state, 20000, rng)
        p0 = float(np.mean(samples == 0))
        assert abs(p0 - 0.8) < 0.02


class TestEstimateExpectation:
    def test_z_on_zero_state_exact(self, rng):
        value = estimate_expectation(
            zero_state(1), PauliString.from_label("Z0"), 100, rng
        )
        assert value == 1.0

    def test_x_on_plus_exact(self, rng):
        plus = apply_circuit(Circuit(1).h(0))
        value = estimate_expectation(plus, PauliString.from_label("X0"), 100, rng)
        assert np.isclose(value, 1.0)

    def test_y_basis_rotation(self, rng):
        # S|+> is the +i eigenstate of Y.
        state = apply_circuit(Circuit(1).h(0).s(0))
        value = estimate_expectation(state, PauliString.from_label("Y0"), 200, rng)
        assert np.isclose(value, 1.0)

    def test_identity_term_added_exactly(self, rng):
        h = Hamiltonian([PauliString.identity(2.5)])
        assert estimate_expectation(zero_state(2), h, 10, rng) == 2.5

    def test_converges_to_exact_value(self, rng):
        circuit = Circuit(3).h(0).cnot(0, 1).ry(2, 0.7).cnot(1, 2)
        state = apply_circuit(circuit)
        h = Hamiltonian.transverse_field_ising(3, 1.0, 0.6)
        exact = h.expectation(state)
        estimate = estimate_expectation(state, h, 40000, rng)
        assert abs(estimate - exact) < 0.05

    def test_coefficient_scaling(self, rng):
        state = zero_state(1)
        value = estimate_expectation(state, PauliString(3.0, ((0, "Z"),)), 50, rng)
        assert value == 3.0

    def test_reproducible_with_same_generator_state(self):
        state = apply_circuit(Circuit(2).h(0).cnot(0, 1).ry(1, 0.3))
        h = Hamiltonian.from_terms({"Z0 Z1": 1.0, "X0": 0.5})
        a = estimate_expectation(state, h, 256, np.random.default_rng(9))
        b = estimate_expectation(state, h, 256, np.random.default_rng(9))
        assert a == b

    def test_variance_bound(self):
        h = Hamiltonian.from_terms({"Z0": 2.0, "X1": 1.0, "I": 5.0})
        # identity excluded: (4 + 1) / shots
        assert np.isclose(estimate_variance_bound(h, 100), 0.05)

    def test_variance_bound_single_string(self):
        assert np.isclose(
            estimate_variance_bound(PauliString(2.0, ((0, "Z"),)), 400), 0.01
        )

    def test_estimator_error_within_statistical_bound(self):
        state = apply_circuit(Circuit(2).h(0).ry(1, 1.1).cnot(0, 1))
        h = Hamiltonian.from_terms({"Z0": 1.0, "Z1": 1.0, "X0 X1": 0.5})
        exact = h.expectation(state)
        shots = 4096
        sigma = np.sqrt(estimate_variance_bound(h, shots))
        errors = []
        for seed in range(20):
            estimate = estimate_expectation(
                state, h, shots, np.random.default_rng(seed)
            )
            errors.append(abs(estimate - exact))
        # 5-sigma criterion on the mean absolute error: loose but meaningful.
        assert np.mean(errors) < 5 * sigma


class TestEstimateExpectationBatch:
    def _states(self, thetas):
        circuit = Circuit(2).h(0)
        circuit.ry(1, circuit.new_param())
        circuit.cnot(0, 1)
        return np.stack([apply_circuit(circuit, [t]) for t in thetas])

    def test_matches_sequential_stream(self):
        """Batched draws consume the rng exactly like a per-state loop."""
        from repro.quantum.sampling import estimate_expectation_batch

        states = self._states([0.2, 0.9, 1.7])
        h = Hamiltonian.from_terms({"Z0": 1.0, "Z1": 0.5, "X0 X1": 0.25, "I": 2.0})
        batched = estimate_expectation_batch(
            states, h, 64, np.random.default_rng(3)
        )
        rng = np.random.default_rng(3)
        sequential = np.array(
            [estimate_expectation(s, h, 64, rng) for s in states]
        )
        np.testing.assert_allclose(batched, sequential)

    def test_columns_layout(self):
        from repro.quantum.sampling import estimate_expectation_batch

        states = self._states([0.4, 1.1])
        h = Hamiltonian.from_terms({"Z0": 1.0})
        rows = estimate_expectation_batch(
            states, h, 128, np.random.default_rng(7)
        )
        cols = estimate_expectation_batch(
            np.ascontiguousarray(states.T),
            h,
            128,
            np.random.default_rng(7),
            columns=True,
        )
        np.testing.assert_allclose(rows, cols)

    def test_converges_to_exact(self):
        from repro.quantum.sampling import estimate_expectation_batch

        states = self._states([0.3, 2.1])
        h = Hamiltonian.from_terms({"Z0": 1.0, "X0 X1": 0.5})
        exact = np.array([h.expectation(s) for s in states])
        estimates = estimate_expectation_batch(
            states, h, 40000, np.random.default_rng(11)
        )
        np.testing.assert_allclose(estimates, exact, atol=0.05)

    def test_identity_only_is_exact(self):
        from repro.quantum.sampling import estimate_expectation_batch

        states = self._states([0.5])
        h = Hamiltonian.from_terms({"I": 3.25})
        np.testing.assert_array_equal(
            estimate_expectation_batch(states, h, 10, np.random.default_rng(0)),
            [3.25],
        )

    def test_rejects_bad_inputs(self):
        from repro.quantum.sampling import estimate_expectation_batch

        states = self._states([0.5])
        h = Hamiltonian.from_terms({"Z0": 1.0})
        with pytest.raises(ObservableError):
            estimate_expectation_batch(states, h, 0, np.random.default_rng(0))
        with pytest.raises(ObservableError):
            estimate_expectation_batch(
                states[0], h, 16, np.random.default_rng(0)
            )

    def test_empty_batch(self):
        from repro.quantum.sampling import estimate_expectation_batch

        h = Hamiltonian.from_terms({"Z0": 1.0})
        out = estimate_expectation_batch(
            np.zeros((0, 4)), h, 16, np.random.default_rng(0)
        )
        assert out.shape == (0,)
