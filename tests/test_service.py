"""Tests for the multi-job checkpoint service (chunk store, pool, fleet)."""

import threading
import time

import numpy as np
import pytest

from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps
from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointStore
from repro.errors import (
    CheckpointError,
    CheckpointNotFoundError,
    ConfigError,
    IntegrityError,
    StorageError,
)
from repro.faults.injector import Brownout, PreemptionStorm
from repro.ml.dataset import make_moons
from repro.ml.models import VariationalClassifier, VQEModel
from repro.ml.optimizers import Adam
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.observables import Hamiltonian
from repro.quantum.templates import hardware_efficient
from repro.service import (
    ChunkStore,
    FleetHarness,
    FleetJobSpec,
    ServiceCheckpointManager,
    ThrottledBackend,
    WriterPool,
    chunk_name,
)
from repro.storage.flaky import FlakyBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.sharded import ShardedBackend


def make_snapshot(step=1, seed=0, n_params=12, fingerprint="fp", extra=None):
    rng = np.random.default_rng(seed)
    return TrainingSnapshot(
        step=step,
        params=rng.normal(size=n_params),
        optimizer_state={"name": "sgd", "lr": 0.1},
        rng_state={"bit_generator": "PCG64", "state": {"state": 1, "inc": 2}},
        model_fingerprint=fingerprint,
        loss_history=np.linspace(1.0, 0.5, step),
        extra=extra or {},
    )


def make_vqe_trainer(seed=3, lr=0.1):
    model = VQEModel(
        hardware_efficient(2, 1),
        Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
    )
    return Trainer(model, Adam(lr=lr), config=TrainerConfig(seed=seed))


def classifier_factory(lr, seed=11):
    def make():
        model = VariationalClassifier(hardware_efficient(3, 1))
        dataset = make_moons(64, np.random.default_rng(7))
        return Trainer(
            model,
            Adam(lr=lr),
            dataset=dataset,
            config=TrainerConfig(batch_size=8, seed=seed),
        )

    return make


# ---------------------------------------------------------------------------
# ShardedBackend
# ---------------------------------------------------------------------------


class TestShardedBackend:
    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            ShardedBackend([])

    def test_routing_is_stable_and_total(self):
        a = ShardedBackend([InMemoryBackend() for _ in range(3)])
        b = ShardedBackend([InMemoryBackend() for _ in range(3)])
        for i in range(50):
            name = f"obj-{i}"
            assert a.shard_index(name) == b.shard_index(name)
            assert 0 <= a.shard_index(name) < 3

    def test_contract_roundtrip(self):
        sharded = ShardedBackend([InMemoryBackend() for _ in range(4)])
        names = [f"ch-{i:04d}" for i in range(40)]
        for name in names:
            sharded.write(name, name.encode())
        assert sharded.list("ch-") == sorted(names)
        for name in names:
            assert sharded.exists(name)
            assert sharded.read(name) == name.encode()
            assert sharded.size(name) == len(name)
            assert sharded.read_range(name, 3, 2) == name.encode()[3:5]
        sharded.delete(names[0])
        assert not sharded.exists(names[0])

    def test_objects_spread_across_shards(self):
        sharded = ShardedBackend([InMemoryBackend() for _ in range(4)])
        for i in range(200):
            sharded.write(chunk_name(f"content-{i}".encode(), "zlib-6"), b"x")
        per_shard = sharded.objects_per_shard("ch-")
        assert sum(per_shard.values()) == 200
        assert all(count > 20 for count in per_shard.values())


# ---------------------------------------------------------------------------
# ChunkStore
# ---------------------------------------------------------------------------


class TestChunkStoreRoundtrip:
    def test_save_load_bitwise(self):
        store = ChunkStore(InMemoryBackend())
        snapshot = make_snapshot(step=5, seed=1)
        record = store.save_snapshot("alpha", snapshot)
        assert record.ckpt_id == "ckpt-000001"
        assert record.step == 5
        loaded = store.load_snapshot("alpha")
        assert loaded == snapshot

    def test_load_specific_and_missing(self):
        store = ChunkStore(InMemoryBackend())
        store.save_snapshot("alpha", make_snapshot(step=1))
        store.save_snapshot("alpha", make_snapshot(step=2))
        assert store.load_snapshot("alpha", "ckpt-000001").step == 1
        assert store.latest("alpha") == "ckpt-000002"
        with pytest.raises(CheckpointNotFoundError):
            store.load_snapshot("alpha", "ckpt-000099")
        with pytest.raises(CheckpointNotFoundError):
            store.load_snapshot("ghost")

    def test_job_id_validation(self):
        store = ChunkStore(InMemoryBackend())
        for bad in ("", "a/b", "a-ckpt-b", "..", None):
            with pytest.raises((ConfigError, StorageError)):
                store.save_snapshot(bad, make_snapshot())

    def test_large_tensor_splits_into_blocks(self):
        store = ChunkStore(InMemoryBackend(), block_bytes=256)
        snapshot = make_snapshot(step=1, n_params=200)  # 1600 raw bytes
        record = store.save_snapshot("alpha", snapshot)
        assert record.n_blocks > 7  # params alone contribute ceil(1600/256)
        assert store.load_snapshot("alpha") == snapshot

    def test_empty_tensor_roundtrip(self):
        store = ChunkStore(InMemoryBackend())
        snapshot = make_snapshot(step=0)
        assert snapshot.loss_history.size == 0
        store.save_snapshot("alpha", snapshot)
        assert store.load_snapshot("alpha") == snapshot


class TestChunkStoreDedup:
    def test_identical_checkpoints_dedup_fully(self):
        store = ChunkStore(InMemoryBackend())
        snapshot = make_snapshot(step=3, seed=2)
        first = store.save_snapshot("alpha", snapshot)
        second = store.save_snapshot("alpha", snapshot)
        assert first.n_new_blocks == first.n_blocks
        assert second.n_new_blocks == 0
        assert second.physical_bytes == 0
        assert store.stats.dedup_ratio > 1.9

    def test_cross_job_dedup(self):
        """Sweep jobs sharing initial tensors write each block once."""
        store = ChunkStore(InMemoryBackend())
        shared = make_snapshot(step=0, seed=7)
        first = store.save_snapshot("sweep-a", shared)
        second = store.save_snapshot("sweep-b", shared)
        third = store.save_snapshot("sweep-c", shared)
        assert first.n_new_blocks > 0
        assert second.n_new_blocks == 0 and third.n_new_blocks == 0
        # Each job still restores its own copy bitwise.
        for job in ("sweep-a", "sweep-b", "sweep-c"):
            assert store.load_snapshot(job) == shared

    def test_partial_overlap_dedups_unchanged_tensors(self):
        store = ChunkStore(InMemoryBackend())
        base = make_snapshot(step=1, seed=3)
        changed = base.copy()
        changed.step = 2
        changed.params = base.params + 1.0  # only params move
        store.save_snapshot("alpha", base)
        record = store.save_snapshot("alpha", changed)
        assert 0 < record.n_new_blocks < record.n_blocks
        assert store.load_snapshot("alpha") == changed

    def test_reopened_store_keeps_dedup_index(self):
        backend = InMemoryBackend()
        snapshot = make_snapshot(step=1, seed=4)
        ChunkStore(backend).save_snapshot("alpha", snapshot)
        reopened = ChunkStore(backend)
        record = reopened.save_snapshot("beta", snapshot)
        assert record.n_new_blocks == 0
        assert reopened.load_snapshot("beta") == snapshot


class TestChunkStoreIntegrity:
    def test_corrupted_chunk_detected(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend, codec="none")
        store.save_snapshot("alpha", make_snapshot(step=1))
        victim = backend.list("ch-")[0]
        data = bytearray(backend.read(victim))
        data[0] ^= 0xFF
        backend.write(victim, bytes(data))
        with pytest.raises(IntegrityError):
            store.load_snapshot("alpha")

    def test_corrupted_manifest_detected_and_skipped(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend)
        store.save_snapshot("alpha", make_snapshot(step=1, seed=1))
        good = make_snapshot(step=2, seed=2)
        store.save_snapshot("alpha", good)
        # Corrupt the *newest* manifest; recovery falls back to step 1.
        store.save_snapshot("alpha", make_snapshot(step=3, seed=3))
        backend.write("job-alpha-ckpt-000003.json", b"{not json")
        ckpt_id, snapshot, skipped = store.latest_valid("alpha")
        assert ckpt_id == "ckpt-000002"
        assert snapshot == good
        assert len(skipped) == 1

    def test_failed_chunk_write_leaves_no_manifest_and_recovers(self):
        """Payload-before-manifest: an injected write error aborts cleanly."""
        flaky = FlakyBackend(InMemoryBackend())
        store = ChunkStore(flaky)
        snapshot = make_snapshot(step=1, seed=5)
        flaky.arm("error", fail_on_write=1)
        with pytest.raises(StorageError):
            store.save_snapshot("alpha", snapshot)
        assert store.manifest_names("alpha") == []
        # The dedup index was rolled back: the retry rewrites everything.
        record = store.save_snapshot("alpha", snapshot)
        assert record.n_new_blocks == record.n_blocks
        assert store.load_snapshot("alpha") == snapshot

    def test_verify(self):
        store = ChunkStore(InMemoryBackend())
        record = store.save_snapshot("alpha", make_snapshot(step=1))
        ok, detail = store.verify("alpha", record.ckpt_id)
        assert ok and detail == "ok"

    def test_reopen_with_different_codec_keeps_old_checkpoints_readable(self):
        """The codec is part of the chunk identity: reopening under another
        codec reads old checkpoints with *their* codec and never dedups or
        overwrites across codecs."""
        backend = InMemoryBackend()
        snapshot = make_snapshot(step=1, seed=31)
        ChunkStore(backend, codec="zlib-6").save_snapshot("alpha", snapshot)
        reopened = ChunkStore(backend, codec="none")
        # Old checkpoint decodes with the codec recorded in its manifest.
        assert reopened.load_snapshot("alpha") == snapshot
        # Same content under the new codec is a fresh write, not a dedup hit
        # against (or an overwrite of) the zlib chunks.
        record = reopened.save_snapshot("beta", snapshot)
        assert record.n_new_blocks == record.n_blocks
        assert reopened.load_snapshot("beta") == snapshot
        assert reopened.load_snapshot("alpha") == snapshot
        # And a third store back on the original codec still reads both.
        third = ChunkStore(backend, codec="zlib-6")
        assert third.load_snapshot("alpha") == snapshot
        assert third.load_snapshot("beta") == snapshot


class TestChunkStoreGC:
    def test_retention_and_orphan_sweep(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend)
        for step in range(1, 5):
            store.save_snapshot("alpha", make_snapshot(step=step, seed=step))
        assert len(store.manifest_names("alpha")) == 4
        deleted = store.gc(keep_last_per_job=2)
        assert deleted["manifests"] == 2
        assert deleted["chunks"] > 0
        assert len(store.manifest_names("alpha")) == 2
        # Remaining checkpoints still load.
        assert store.load_snapshot("alpha").step == 4
        assert store.load_snapshot("alpha", "ckpt-000003").step == 3

    def test_gc_keeps_chunks_referenced_by_other_jobs(self):
        store = ChunkStore(InMemoryBackend())
        shared = make_snapshot(step=0, seed=9)
        store.save_snapshot("alpha", shared)
        store.save_snapshot("beta", shared)
        store.delete_checkpoint("alpha", "ckpt-000001")
        deleted = store.gc()
        assert deleted["chunks"] == 0  # beta still references everything
        assert store.load_snapshot("beta") == shared

    def test_gc_sweeps_orphans_from_crashed_save(self):
        backend = InMemoryBackend()
        store = ChunkStore(backend)
        store.save_snapshot("alpha", make_snapshot(step=1, seed=1))
        # Simulate a crash between chunk write and manifest write.
        orphan = chunk_name(b"orphaned content", "zlib-6")
        backend.write(orphan, b"orphaned content")
        deleted = store.gc()
        assert deleted["chunks"] == 1
        assert not backend.exists(orphan)

    def test_missing_chunk_on_reopen_is_rewritten_not_deduped(self):
        """A reopened store must not dedup against chunks the backend lost."""
        backend = InMemoryBackend()
        snapshot = make_snapshot(step=1, seed=21)
        ChunkStore(backend).save_snapshot("alpha", snapshot)
        victim = backend.list("ch-")[0]
        backend.delete(victim)  # a wiped shard / lost object
        reopened = ChunkStore(backend)
        record = reopened.save_snapshot("beta", snapshot)
        assert record.n_new_blocks >= 1  # the lost block was re-written
        # The new checkpoint heals: it is fully restorable.
        assert reopened.load_snapshot("beta") == snapshot

    def test_manifest_never_commits_before_its_chunks_land(self):
        """A save deduping against an in-flight writer waits for the write."""

        class GatedBackend(InMemoryBackend):
            def __init__(self):
                super().__init__()
                self.gate = threading.Event()
                self.gate.set()
                self.block_next_chunk = threading.Event()

            def write(self, name, data):
                if name.startswith("ch-") and self.block_next_chunk.is_set():
                    self.block_next_chunk.clear()
                    self.gate.clear()
                    self.gate.wait(5)
                super().write(name, data)

        backend = GatedBackend()
        store = ChunkStore(backend)
        snapshot = make_snapshot(step=1, seed=22)
        backend.block_next_chunk.set()
        done = {"a": False, "b": False}

        def save(label, job):
            store.save_snapshot(job, snapshot)
            done[label] = True

        a = threading.Thread(target=save, args=("a", "jobA"))
        a.start()
        time.sleep(0.15)  # A is wedged inside its first chunk write
        b = threading.Thread(target=save, args=("b", "jobB"))
        b.start()
        time.sleep(0.15)
        # B dedups against A's in-flight chunk: it must NOT have committed
        # a manifest while that chunk is still absent from the backend.
        assert not done["b"]
        assert store.manifest_names("jobB") == []
        backend.gate.set()
        a.join(timeout=5)
        b.join(timeout=5)
        assert done["a"] and done["b"]
        assert store.load_snapshot("jobA") == snapshot
        assert store.load_snapshot("jobB") == snapshot

    def test_peer_write_failure_does_not_fail_waiting_deduper(self):
        """A save waiting on a peer's reservation claims it if the peer dies."""

        class FailFirstChunkGated(InMemoryBackend):
            def __init__(self):
                super().__init__()
                self.fail_next_chunk = True
                self.proceed = threading.Event()

            def write(self, name, data):
                if name.startswith("ch-") and self.fail_next_chunk:
                    self.fail_next_chunk = False
                    self.proceed.wait(5)  # hold until B is waiting on us
                    raise StorageError("injected peer failure")
                super().write(name, data)

        backend = FailFirstChunkGated()
        store = ChunkStore(backend)
        snapshot = make_snapshot(step=1, seed=24)
        outcomes = {}

        def save(label, job):
            try:
                store.save_snapshot(job, snapshot)
                outcomes[label] = "ok"
            except StorageError:
                outcomes[label] = "failed"

        a = threading.Thread(target=save, args=("a", "jobA"))
        a.start()
        time.sleep(0.15)  # A holds the reservation, wedged in its write
        b = threading.Thread(target=save, args=("b", "jobB"))
        b.start()
        time.sleep(0.15)  # B is waiting on A's reservation
        backend.proceed.set()  # A's write now fails and rolls back
        a.join(timeout=5)
        b.join(timeout=5)
        assert outcomes == {"a": "failed", "b": "ok"}
        # B claimed the dead reservation and wrote the chunk itself.
        assert store.load_snapshot("jobB") == snapshot

    def test_gc_does_not_sweep_chunks_of_inflight_save(self):
        """gc() racing a save must not delete its written-but-unnamed chunks."""

        class GatedSecondWrite(InMemoryBackend):
            def __init__(self):
                super().__init__()
                self.chunk_writes = 0
                self.reached_second = threading.Event()
                self.release = threading.Event()

            def write(self, name, data):
                if name.startswith("ch-"):
                    self.chunk_writes += 1
                    if self.chunk_writes == 2:
                        self.reached_second.set()
                        self.release.wait(5)
                super().write(name, data)

        backend = GatedSecondWrite()
        store = ChunkStore(backend, block_bytes=128)
        snapshot = make_snapshot(step=1, seed=23, n_params=64)  # several blocks
        failures = []

        def save():
            try:
                store.save_snapshot("alpha", snapshot)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        thread = threading.Thread(target=save)
        thread.start()
        assert backend.reached_second.wait(5)
        # One chunk is landed, none manifested: gc must leave it alone.
        deleted = store.gc()
        assert deleted["chunks"] == 0
        backend.release.set()
        thread.join(timeout=5)
        assert not failures
        assert store.load_snapshot("alpha") == snapshot
        # Once the manifest is committed the chunks are referenced anyway.
        assert store.gc()["chunks"] == 0

    def test_concurrent_saves_dedup_consistently(self):
        store = ChunkStore(InMemoryBackend())
        shared = make_snapshot(step=0, seed=13)
        errors = []

        def save(job_id):
            try:
                store.save_snapshot(job_id, shared)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=save, args=(f"job{i}",)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(6):
            assert store.load_snapshot(f"job{i}") == shared
        # Every block was written exactly once regardless of interleaving.
        total = store.stats.chunks_written + store.stats.chunks_deduped
        assert store.stats.chunks_written == total // 6


# ---------------------------------------------------------------------------
# WriterPool
# ---------------------------------------------------------------------------


class TestWriterPool:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WriterPool(workers=0)
        pool = WriterPool(workers=1)
        with pytest.raises(ConfigError):
            pool.channel("a", max_pending=0)
        with pytest.raises(ConfigError):
            pool.channel("a", backpressure="bogus")
        pool.close()

    def test_per_job_fifo_order(self):
        pool = WriterPool(workers=4)
        done = []
        lock = threading.Lock()

        def task(i):
            def run():
                with lock:
                    done.append(i)

            return run

        channel = pool.channel("a", max_pending=16)
        for i in range(10):
            channel.submit(task(i))
        channel.drain()
        pool.close()
        assert done == list(range(10))

    def test_round_robin_fairness_single_worker(self):
        pool = WriterPool(workers=1)
        order = []
        gate = threading.Event()

        def task(label):
            def run():
                gate.wait(5)
                order.append(label)

            return run

        a = pool.channel("a", max_pending=8)
        b = pool.channel("b", max_pending=8)
        # Queue everything while the single worker is blocked on a0.
        a.submit(task("a0"))
        for i in range(1, 4):
            a.submit(task(f"a{i}"))
        for i in range(3):
            b.submit(task(f"b{i}"))
        gate.set()
        pool.drain()
        pool.close()
        # After a0, the worker alternates fairly between the two queues.
        interleaved = order[1:]
        assert interleaved[:2] in (["b0", "a1"], ["a1", "b0"])
        a_positions = [i for i, x in enumerate(interleaved) if x.startswith("a")]
        b_positions = [i for i, x in enumerate(interleaved) if x.startswith("b")]
        # Neither job's tasks all run before the other's (no starvation).
        assert a_positions and b_positions
        assert min(b_positions) < max(a_positions)

    def test_cross_job_parallelism(self):
        pool = WriterPool(workers=2)
        running = []
        peak = []
        lock = threading.Lock()

        def task():
            with lock:
                running.append(1)
                peak.append(len(running))
            time.sleep(0.05)
            with lock:
                running.pop()

        pool.channel("a").submit(task)
        pool.channel("b").submit(task)
        pool.drain()
        pool.close()
        assert max(peak) == 2  # two jobs overlapped on two workers

    def test_same_job_never_runs_concurrently(self):
        pool = WriterPool(workers=4)
        active = []
        violations = []
        lock = threading.Lock()

        def task():
            with lock:
                active.append(1)
                if len(active) > 1:
                    violations.append(len(active))
            time.sleep(0.01)
            with lock:
                active.pop()

        channel = pool.channel("a", max_pending=16)
        for _ in range(8):
            channel.submit(task)
        channel.drain()
        pool.close()
        assert not violations

    def test_block_backpressure_bounds_queue(self):
        pool = WriterPool(workers=1)
        gate = threading.Event()
        channel = pool.channel("a", max_pending=2, backpressure="block")
        channel.submit(gate.wait)  # occupies the worker
        channel.submit(lambda: None)  # fills the queue slot
        unblocked = []

        def blocked_submit():
            channel.submit(lambda: None)
            unblocked.append(True)

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        time.sleep(0.1)
        assert not unblocked  # submit is blocked at the bound
        gate.set()
        thread.join(timeout=5)
        assert unblocked
        pool.close()

    def test_drop_oldest_backpressure(self):
        pool = WriterPool(workers=1)
        started = threading.Event()
        gate = threading.Event()
        executed = []
        channel = pool.channel("a", max_pending=2, backpressure="drop-oldest")

        def wedge():
            started.set()
            gate.wait(5)

        channel.submit(wedge)
        assert started.wait(5)  # the worker holds the in-flight slot
        for i in range(5):
            channel.submit(lambda i=i: executed.append(i))
        gate.set()
        channel.drain()
        pool.close()
        assert channel.stats.dropped == 4
        assert executed == [4]  # newest snapshot wins

    def test_degrade_backpressure_uses_fallback(self):
        pool = WriterPool(workers=1)
        gate = threading.Event()
        executed = []
        channel = pool.channel("a", max_pending=2, backpressure="degrade")
        channel.submit(gate.wait)
        channel.submit(
            lambda: executed.append("full-1"),
            fallback=lambda: executed.append("lite-1"),
        )
        # Queue is now at the bound: the next submit degrades.
        channel.submit(
            lambda: executed.append("full-2"),
            fallback=lambda: executed.append("lite-2"),
        )
        gate.set()
        channel.drain()
        pool.close()
        assert channel.stats.degraded == 1
        assert channel.stats.dropped == 1  # the displaced queued save counts
        assert executed == ["lite-2"]

    def test_errors_are_per_job_and_exactly_once(self):
        pool = WriterPool(workers=2)
        a = pool.channel("a")
        b = pool.channel("b")
        a.submit(lambda: 1 / 0)
        b.submit(lambda: None)
        b.drain()  # job b is clean: no cross-talk
        with pytest.raises(CheckpointError, match="job 'a'"):
            a.drain()
        a.drain()  # seen errors do not re-raise
        pool.close()

    def test_error_surfaces_on_next_submit(self):
        pool = WriterPool(workers=1)
        channel = pool.channel("a")
        channel.submit(lambda: 1 / 0)
        time.sleep(0.1)
        with pytest.raises(CheckpointError, match="division"):
            channel.submit(lambda: None)
        pool.close()

    def test_abandon_discards_queue_and_reincarnates(self):
        pool = WriterPool(workers=1)
        started = threading.Event()
        gate = threading.Event()
        executed = []
        channel = pool.channel("a", max_pending=8)

        def wedge():
            started.set()
            gate.wait(5)

        channel.submit(wedge)
        assert started.wait(5)  # in-flight, not queued
        for i in range(3):
            channel.submit(lambda i=i: executed.append(i))
        dropped = channel.abandon()
        assert dropped == 3
        gate.set()
        # A fresh channel replaces the dead incarnation.
        fresh = pool.channel("a")
        assert fresh is not channel
        fresh.submit(lambda: executed.append("next-life"))
        fresh.drain()
        pool.close()
        assert executed == ["next-life"]

    def test_error_after_timed_out_close_still_surfaces(self):
        """A failure landing after close() timed out is not lost (cf. the
        same-named AsyncCheckpointWriter regression)."""
        pool = WriterPool(workers=1)
        release = threading.Event()
        channel = pool.channel("a")

        def slow_failing():
            release.wait(5)
            raise ValueError("late torn write")

        channel.submit(slow_failing)
        with pytest.raises(CheckpointError, match="drain"):
            channel.close(timeout=0.1)
        release.set()
        time.sleep(0.2)  # the in-flight task now fails on the worker
        with pytest.raises(CheckpointError, match="late torn write"):
            channel.drain()
        channel.drain()  # exactly once
        pool.close()

    def test_submit_to_closed_channel_rejected(self):
        pool = WriterPool(workers=1)
        channel = pool.channel("a")
        channel.close()
        with pytest.raises(CheckpointError, match="closed"):
            channel.submit(lambda: None)
        pool.close()

    def test_core_manager_runs_on_pool_channel(self):
        """CheckpointManager speaks the writer protocol to a pool channel."""
        pool = WriterPool(workers=2)
        backend = InMemoryBackend()
        store = CheckpointStore(backend)
        trainer = make_vqe_trainer()
        manager = CheckpointManager(
            store,
            EveryKSteps(1),
            writer=pool.channel("legacy-job"),
        )
        trainer.run(3, hooks=[manager])
        manager.close()
        pool.close()
        assert store.latest().step == 3
        loaded = store.load(store.latest().id)
        assert loaded == trainer.capture()


# ---------------------------------------------------------------------------
# ServiceCheckpointManager
# ---------------------------------------------------------------------------


class TestServiceCheckpointManager:
    def test_policy_driven_saves_roundtrip(self):
        store = ChunkStore(InMemoryBackend())
        pool = WriterPool(workers=2)
        trainer = make_vqe_trainer()
        manager = ServiceCheckpointManager(
            store, "vqe", pool.channel("vqe"), policy=EveryKSteps(2)
        )
        trainer.run(4, hooks=[manager])
        manager.close()
        pool.close()
        assert manager.stats.saves == 2
        assert store.latest("vqe") == "ckpt-000002"
        assert store.load_snapshot("vqe") == trainer.capture()

    def test_write_failure_surfaces_on_manager_close(self):
        flaky = FlakyBackend(InMemoryBackend())
        store = ChunkStore(flaky)
        pool = WriterPool(workers=1)
        trainer = make_vqe_trainer()
        manager = ServiceCheckpointManager(
            store, "vqe", pool.channel("vqe"), policy=EveryKSteps(1)
        )
        flaky.arm("error", fail_on_write=1)
        with pytest.raises(CheckpointError, match="job 'vqe'"):
            trainer.run(2, hooks=[manager])
        pool.close()


# ---------------------------------------------------------------------------
# FleetHarness
# ---------------------------------------------------------------------------


def run_fleet(specs, events=(), workers=2, throttle=None, backend=None):
    backend = backend or InMemoryBackend()
    target = throttle if throttle is not None else backend
    store = ChunkStore(target, block_bytes=1024)
    pool = WriterPool(workers=workers)
    harness = FleetHarness(store, pool, specs, events=events, throttle=throttle)
    try:
        result = harness.run()
    finally:
        pool.close()
    return store, result


class TestFleetHarness:
    def test_clean_sweep_completes_and_dedups(self):
        specs = [
            FleetJobSpec(
                job_id=f"job{i}",
                trainer_factory=classifier_factory(0.01 * (i + 1)),
                target_steps=2,
            )
            for i in range(3)
        ]
        store, result = run_fleet(specs)
        assert all(j.final_step == 2 for j in result.jobs.values())
        assert result.total_lost_steps == 0
        assert result.recovered_work_ratio == 1.0
        # Same-seed sweep jobs share their initial checkpoint: cross-job dedup.
        assert result.dedup_ratio > 1.5

    def test_storm_recovery_restores_and_accounts_loss(self):
        specs = [
            FleetJobSpec(
                job_id=f"job{i}",
                trainer_factory=classifier_factory(0.01 * (i + 1)),
                target_steps=4,
                max_pending=4,
            )
            for i in range(3)
        ]
        store, result = run_fleet(
            specs, events=[PreemptionStorm(at_tick=2, restart_delay_ticks=1)]
        )
        assert "storm@2" in result.events_fired
        for job in result.jobs.values():
            assert job.preemptions == 1
            assert job.restores == 1
            assert job.final_step == 4
            assert job.steps_executed == 4 + job.lost_steps
        # Every job restores bitwise: reload latest and replay onto a fresh
        # trainer; the capture must equal the stored snapshot exactly.
        for i, spec in enumerate(specs):
            snapshot = store.load_snapshot(spec.job_id)
            fresh = spec.trainer_factory()
            fresh.restore(snapshot)
            assert fresh.capture() == snapshot

    def test_storm_survivor_matches_uninterrupted_run_bitwise(self):
        """The determinism contract holds through the service layer."""
        factory = classifier_factory(0.05)
        stormy_store, stormy_result = run_fleet(
            [
                FleetJobSpec(
                    job_id="stormy", trainer_factory=factory, target_steps=3
                )
            ],
            events=[PreemptionStorm(at_tick=1)],
        )
        calm_store, _ = run_fleet(
            [
                FleetJobSpec(
                    job_id="calm", trainer_factory=factory, target_steps=3
                )
            ]
        )
        assert stormy_result.jobs["stormy"].preemptions == 1
        stormy = stormy_store.load_snapshot("stormy")
        calm = calm_store.load_snapshot("calm")
        assert stormy.step == calm.step == 3
        assert np.array_equal(stormy.params, calm.params)
        assert stormy.rng_state == calm.rng_state
        assert np.array_equal(stormy.loss_history, calm.loss_history)

    def test_staggered_cadence_offsets_start(self):
        specs = [
            FleetJobSpec(
                job_id=f"job{i}",
                trainer_factory=classifier_factory(0.02),
                target_steps=2,
                cadence_offset=i,
            )
            for i in range(3)
        ]
        _, result = run_fleet(specs)
        finishes = [result.jobs[f"job{i}"].finish_tick for i in range(3)]
        assert finishes == sorted(finishes)
        assert finishes[0] < finishes[2]

    def test_brownout_engages_backpressure(self):
        throttle = ThrottledBackend(InMemoryBackend())
        specs = [
            FleetJobSpec(
                job_id=f"job{i}",
                trainer_factory=classifier_factory(0.02),
                target_steps=5,
                max_pending=2,
                backpressure="drop-oldest",
            )
            for i in range(2)
        ]
        _, result = run_fleet(
            specs,
            events=[
                Brownout(start_tick=1, end_tick=4, write_delay_seconds=0.05)
            ],
            workers=1,
            throttle=throttle,
        )
        assert any(e.startswith("brownout-on") for e in result.events_fired)
        assert throttle.delayed_writes > 0
        assert all(j.final_step == 5 for j in result.jobs.values())
        # With a shallow queue and slow writes, saves were dropped, not blocked.
        assert sum(j.dropped_saves for j in result.jobs.values()) > 0

    def test_duplicate_job_ids_rejected(self):
        spec = FleetJobSpec(
            job_id="dup",
            trainer_factory=classifier_factory(0.01),
            target_steps=1,
        )
        with pytest.raises(ConfigError, match="duplicate"):
            FleetHarness(
                ChunkStore(InMemoryBackend()), WriterPool(workers=1), [spec, spec]
            )

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            FleetJobSpec(
                job_id="x",
                trainer_factory=classifier_factory(0.01),
                target_steps=0,
            )
        with pytest.raises(ConfigError):
            FleetJobSpec(
                job_id="x",
                trainer_factory=classifier_factory(0.01),
                target_steps=1,
                checkpoint_every=0,
            )


class TestTrainerLiteCapture:
    def test_lite_capture_drops_statevector_cache(self):
        model = VQEModel(
            hardware_efficient(2, 1),
            Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
        )
        trainer = Trainer(
            model,
            Adam(lr=0.1),
            config=TrainerConfig(seed=3, capture_statevector=True),
        )
        trainer.run(1, hooks=[])
        full = trainer.capture()
        lite = trainer.capture(lite=True)
        assert full.statevector is not None
        assert lite.statevector is None
        # Everything restorable is identical.
        assert np.array_equal(full.params, lite.params)
        assert full.rng_state == lite.rng_state
        fresh = Trainer(
            VQEModel(
                hardware_efficient(2, 1),
                Hamiltonian.transverse_field_ising(2, 1.0, 0.8),
            ),
            Adam(lr=0.1),
            config=TrainerConfig(seed=3, capture_statevector=True),
        )
        fresh.restore(lite)
        assert fresh.step_count == trainer.step_count
        assert np.array_equal(fresh.params, trainer.params)
