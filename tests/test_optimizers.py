"""Unit tests for optimizers, focused on exact state round-tripping.

The checkpoint-critical property: capture ``state_dict`` at step k, restore
it into a *fresh* optimizer, continue — the continuation must be bitwise
identical to the uninterrupted run.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, IncompatibleCheckpointError
from repro.ml.optimizers import (
    SGD,
    AdaGrad,
    Adam,
    RMSProp,
    optimizer_from_state_dict,
)

ALL_OPTIMIZERS = [
    lambda: SGD(lr=0.1),
    lambda: SGD(lr=0.1, momentum=0.9),
    lambda: SGD(lr=0.1, momentum=0.9, nesterov=True),
    lambda: SGD(lr=0.1, weight_decay=0.01),
    lambda: Adam(lr=0.05),
    lambda: Adam(lr=0.05, amsgrad=True),
    lambda: RMSProp(lr=0.01),
    lambda: RMSProp(lr=0.01, momentum=0.5),
    lambda: AdaGrad(lr=0.5),
]


def _quadratic_grad(params: np.ndarray) -> np.ndarray:
    return 2.0 * (params - 3.0)


class TestConvergence:
    @pytest.mark.parametrize("factory", ALL_OPTIMIZERS)
    def test_minimizes_quadratic(self, factory):
        optimizer = factory()
        params = np.array([10.0, -5.0])
        for _ in range(300):
            params = optimizer.step(params, _quadratic_grad(params))
        assert np.linalg.norm(params - 3.0) < np.linalg.norm(
            np.array([10.0, -5.0]) - 3.0
        )

    def test_adam_converges_close(self):
        optimizer = Adam(lr=0.2)
        params = np.array([10.0])
        for _ in range(400):
            params = optimizer.step(params, _quadratic_grad(params))
        assert abs(params[0] - 3.0) < 0.05


class TestStateRoundtrip:
    @pytest.mark.parametrize("factory", ALL_OPTIMIZERS)
    def test_resume_is_bitwise_identical(self, factory):
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal(4) for _ in range(20)]

        reference = factory()
        params_ref = np.ones(4)
        for g in grads:
            params_ref = reference.step(params_ref, g)

        first = factory()
        params = np.ones(4)
        for g in grads[:9]:
            params = first.step(params, g)
        state = first.state_dict()

        second = factory()
        second.load_state_dict(state)
        for g in grads[9:]:
            params = second.step(params, g)
        assert np.array_equal(params, params_ref)

    @pytest.mark.parametrize("factory", ALL_OPTIMIZERS)
    def test_factory_reconstruction(self, factory):
        optimizer = factory()
        optimizer.step(np.zeros(3), np.ones(3))
        clone = optimizer_from_state_dict(optimizer.state_dict())
        assert type(clone) is type(optimizer)
        a = optimizer.step(np.zeros(3), np.ones(3))
        b = clone.step(np.zeros(3), np.ones(3))
        assert np.array_equal(a, b)

    def test_state_dict_has_no_callables(self):
        optimizer = Adam(lr=0.01)
        optimizer.step(np.zeros(2), np.ones(2))
        state = optimizer.state_dict()

        def check(node):
            if isinstance(node, dict):
                for v in node.values():
                    check(v)
            else:
                assert not callable(node)

        check(state)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(IncompatibleCheckpointError):
            Adam().load_state_dict(SGD().state_dict())

    def test_unknown_kind_rejected(self):
        with pytest.raises(IncompatibleCheckpointError):
            optimizer_from_state_dict({"kind": "quantum-adam"})

    def test_reset_clears_slots(self):
        optimizer = Adam(lr=0.3)
        optimizer.step(np.zeros(2), np.ones(2))
        optimizer.reset()
        assert optimizer.t == 0
        fresh = Adam(lr=0.3)
        a = optimizer.step(np.zeros(2), np.ones(2))
        b = fresh.step(np.zeros(2), np.ones(2))
        assert np.array_equal(a, b)

    def test_losing_adam_slots_changes_trajectory(self):
        """The bug this library prevents: warm params + cold optimizer."""
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal(3) for _ in range(10)]
        good, params_good = Adam(lr=0.1), np.zeros(3)
        for g in grads:
            params_good = good.step(params_good, g)

        warm, params_warm = Adam(lr=0.1), np.zeros(3)
        for g in grads[:5]:
            params_warm = warm.step(params_warm, g)
        cold = Adam(lr=0.1)  # slots lost!
        for g in grads[5:]:
            params_warm = cold.step(params_warm, g)
        assert not np.allclose(params_warm, params_good)


class TestValidation:
    def test_lr_positive(self):
        with pytest.raises(ConfigError):
            SGD(lr=0.0)

    def test_momentum_range(self):
        with pytest.raises(ConfigError):
            SGD(momentum=1.0)

    def test_nesterov_needs_momentum(self):
        with pytest.raises(ConfigError):
            SGD(nesterov=True)

    def test_adam_beta_range(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigError):
            Adam(beta2=-0.1)

    def test_rmsprop_alpha_range(self):
        with pytest.raises(ConfigError):
            RMSProp(alpha=1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            SGD().step(np.zeros(2), np.zeros(3))

    def test_step_counter_advances(self):
        optimizer = SGD()
        optimizer.step(np.zeros(1), np.zeros(1))
        optimizer.step(np.zeros(1), np.zeros(1))
        assert optimizer.t == 2

    def test_repr_shows_hyperparameters(self):
        assert "lr=0.01" in repr(SGD(lr=0.01))


class TestBehaviour:
    def test_sgd_plain_update(self):
        optimizer = SGD(lr=0.5)
        params = optimizer.step(np.array([1.0]), np.array([2.0]))
        assert params[0] == 0.0

    def test_weight_decay_shrinks_params(self):
        optimizer = SGD(lr=0.1, weight_decay=1.0)
        params = optimizer.step(np.array([1.0]), np.array([0.0]))
        assert params[0] == pytest.approx(0.9)

    def test_momentum_accelerates(self):
        plain, params_plain = SGD(lr=0.1), np.array([10.0])
        momentum, params_momentum = SGD(lr=0.1, momentum=0.9), np.array([10.0])
        for _ in range(5):
            params_plain = plain.step(params_plain, np.array([1.0]))
            params_momentum = momentum.step(params_momentum, np.array([1.0]))
        assert params_momentum[0] < params_plain[0]

    def test_adam_first_step_is_lr_sized(self):
        optimizer = Adam(lr=0.1)
        params = optimizer.step(np.array([0.0]), np.array([123.0]))
        # bias-corrected first step is ~lr regardless of gradient magnitude
        assert abs(params[0] + 0.1) < 1e-6

    def test_adagrad_decreasing_effective_rate(self):
        optimizer = AdaGrad(lr=1.0)
        p0 = np.array([0.0])
        p1 = optimizer.step(p0, np.array([1.0]))
        p2 = optimizer.step(p1, np.array([1.0]))
        first_step = abs(p1[0] - p0[0])
        second_step = abs(p2[0] - p1[0])
        assert second_step < first_step
