"""Tests for the ``qckpt`` command-line tool."""

import json

import pytest

from repro.cli import main
from repro.core.store import CheckpointStore
from repro.storage.local import LocalDirectoryBackend
from tests.test_snapshot import sample_snapshot


@pytest.fixture
def populated_store(tmp_path):
    root = tmp_path / "store"
    store = CheckpointStore(LocalDirectoryBackend(root))
    base = store.save_full(sample_snapshot(step=10))
    nxt = sample_snapshot(step=10).copy()
    nxt.step = 20
    store.save_delta(nxt, base.id)
    return root, store


class TestLs:
    def test_lists_records(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["ls", str(root)]) == 0
        out = capsys.readouterr().out
        assert "ckpt-000001" in out and "ckpt-000002" in out
        assert "full" in out and "delta" in out
        assert "latest: ckpt-000002 at step 20" in out

    def test_empty_store(self, tmp_path, capsys):
        assert main(["ls", str(tmp_path / "empty")]) == 0
        assert "empty store" in capsys.readouterr().out


class TestInspect:
    def test_inspect_file(self, populated_store, capsys):
        root, store = populated_store
        target = root / store.records()[0].object_name
        assert main(["inspect", str(target)]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["format_version"] == 1
        names = {t["name"] for t in header["tensors"]}
        assert "params" in names

    def test_inspect_by_store_id(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["inspect", f"{root}/ckpt-000001"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["meta"]["kind"] == "full"

    def test_inspect_full_tensor_directory(self, populated_store, capsys):
        root, store = populated_store
        target = root / store.records()[0].object_name
        assert main(["inspect", str(target), "--tensors"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert "crc32" in header["tensors"][0]

    def test_inspect_garbage_file(self, tmp_path, capsys):
        junk = tmp_path / "junk.qckpt"
        junk.write_bytes(b"\x00" * 100)
        assert main(["inspect", str(junk)]) == 2
        assert "error" in capsys.readouterr().err


class TestVerify:
    def test_all_valid(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["verify", str(root)]) == 0
        out = capsys.readouterr().out
        assert "2/2 checkpoints valid" in out

    def test_detects_corruption(self, populated_store, capsys):
        root, store = populated_store
        victim = store.records()[1]
        path = root / victim.object_name
        blob = bytearray(path.read_bytes())
        blob[50] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["verify", str(root)]) == 1
        out = capsys.readouterr().out
        assert "BAD ckpt-000002" in out
        assert "1/2 checkpoints valid" in out


class TestGc:
    def test_keep_last(self, populated_store, capsys):
        root, _ = populated_store
        # keep_last=1 keeps the delta AND its pinned base.
        assert main(["gc", str(root), "--keep-last", "1"]) == 0
        assert "deleted 0" in capsys.readouterr().out

    def test_deletes_unreferenced(self, tmp_path, capsys):
        root = tmp_path / "s"
        store = CheckpointStore(LocalDirectoryBackend(root))
        for step in range(1, 6):
            store.save_full(sample_snapshot(step=step))
        assert main(["gc", str(root), "--keep-last", "2"]) == 0
        assert "deleted 3" in capsys.readouterr().out
        reopened = CheckpointStore(LocalDirectoryBackend(root))
        assert len(reopened.records()) == 2


class TestDiff:
    def test_diff_reports_changed_params(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["diff", str(root), "ckpt-000001", "ckpt-000002"]) == 0
        out = capsys.readouterr().out
        assert "step 10" in out and "step 20" in out
        assert "identical" in out
        assert "TENSOR" in out

    def test_diff_same_checkpoint_all_identical(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["diff", str(root), "ckpt-000001", "ckpt-000001"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "changed" in l]
        assert not lines

    def test_diff_missing_id_errors(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["diff", str(root), "ckpt-000001", "ckpt-999999"]) == 2
        assert "error" in capsys.readouterr().err


class TestExport:
    def test_export_delta_as_standalone(self, populated_store, tmp_path, capsys):
        root, store = populated_store
        out_file = tmp_path / "standalone.qckpt"
        assert main(["export", str(root), "ckpt-000002", str(out_file)]) == 0
        assert "chain of 2" in capsys.readouterr().out

        from repro.core.serialize import unpack_snapshot

        snapshot = unpack_snapshot(out_file.read_bytes())
        assert snapshot == store.load("ckpt-000002")

    def test_export_with_codec(self, populated_store, tmp_path):
        root, _ = populated_store
        out_file = tmp_path / "x.qckpt"
        assert main(
            ["export", str(root), "ckpt-000001", str(out_file), "--codec", "lzma"]
        ) == 0
        from repro.core.serialize import inspect_header

        assert inspect_header(out_file.read_bytes())["codec"] == "lzma"


class TestStats:
    def test_stats_summary(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["stats", str(root)]) == 0
        out = capsys.readouterr().out
        assert "full" in out and "delta" in out
        assert "longest restore chain: 2" in out
        assert "step range: 10..20" in out

    def test_stats_empty(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "none")]) == 0
        assert "empty store" in capsys.readouterr().out


class TestPeek:
    def test_peek_params(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["peek", str(root), "ckpt-000002", "params"]) == 0
        out = capsys.readouterr().out
        assert "at step 20" in out
        assert "params: float64" in out

    def test_peek_unknown_tensor_errors(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["peek", str(root), "ckpt-000001", "ghost"]) == 2
        assert "error" in capsys.readouterr().err


class TestFleet:
    def test_fleet_storm_in_memory(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--jobs", "2",
                    "--steps", "3",
                    "--qubits", "2",
                    "--layers", "1",
                    "--samples", "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "job00" in out and "job01" in out
        assert "storm@2" in out
        assert "dedup" in out
        assert "recovered-work ratio" in out

    def test_fleet_persists_to_directory(self, tmp_path, capsys):
        store_dir = tmp_path / "fleet"
        assert (
            main(
                [
                    "fleet",
                    "--jobs", "2",
                    "--steps", "1",
                    "--qubits", "2",
                    "--layers", "1",
                    "--samples", "32",
                    "--scenario", "sweep",
                    "--shards", "2",
                    "--store", str(store_dir),
                ]
            )
            == 0
        )
        # Chunks and manifests landed on the shard directories.
        from repro.service import ChunkStore
        from repro.storage.local import LocalDirectoryBackend
        from repro.storage.sharded import ShardedBackend

        backend = ShardedBackend(
            [LocalDirectoryBackend(store_dir / f"shard-{i}") for i in range(2)]
        )
        store = ChunkStore(backend)
        assert store.jobs() == ["job00", "job01"]
        assert store.load_snapshot("job00").step == 1


class TestRestore:
    def test_full_restore_core_store(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["restore", str(root)]) == 0
        out = capsys.readouterr().out
        assert "plan [qckpt]" in out
        assert "ckpt-000002 at step 20" in out
        assert "params" in out

    def test_warm_start_plans_fewer_bytes(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["restore", str(root), "--warm-start"]) == 0
        out = capsys.readouterr().out
        assert "tensors params" in out
        assert "params" in out

    def test_plan_only_transfers_nothing(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["restore", str(root), "--plan"]) == 0
        out = capsys.readouterr().out
        assert "plan [qckpt]" in out
        assert "at step" not in out

    def test_out_writes_standalone_file(self, populated_store, tmp_path, capsys):
        root, _ = populated_store
        target = tmp_path / "standalone.qckpt"
        assert main(["restore", str(root), "--out", str(target)]) == 0
        from repro.core.serialize import unpack_snapshot

        assert unpack_snapshot(target.read_bytes()).step == 20

    def test_tensors_subset(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["restore", str(root), "--tensors", "params"]) == 0
        out = capsys.readouterr().out
        assert "params:" in out

    def test_not_a_store_errors_cleanly(self, tmp_path, capsys):
        assert main(["restore", str(tmp_path / "nothing")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def _chunk_store(self, tmp_path):
        import numpy as np

        from repro.service.chunkstore import ChunkStore
        from tests.test_snapshot import sample_snapshot

        root = tmp_path / "chunks"
        store = ChunkStore(LocalDirectoryBackend(root), block_bytes=256)
        for step in (1, 2):
            snap = sample_snapshot(step=step)
            store.save_snapshot("jobA", snap)
        return root, store

    def test_chunk_store_restore(self, tmp_path, capsys):
        root, _ = self._chunk_store(tmp_path)
        assert main(["restore", str(root)]) == 0
        out = capsys.readouterr().out
        assert "plan [chunks]" in out
        assert "job jobA ckpt-000002" in out

    def test_gcd_chunk_explicit_id_is_clean_error(self, tmp_path, capsys):
        root, store = self._chunk_store(tmp_path)
        plan = store.plan_restore("jobA", "ckpt-000002")
        backend = LocalDirectoryBackend(root)
        ref1 = {
            o.name for o in store.plan_restore("jobA", "ckpt-000001").objects
        }
        victim = next(o.name for o in plan.objects if o.name not in ref1)
        backend.delete(victim)
        assert main(["restore", str(root), "--id", "ckpt-000002"]) == 2
        err = capsys.readouterr().err
        # One clean error line naming the damage, not a traceback.
        assert err.startswith("error:")
        assert "garbage-collected or lost" in err

    def test_gcd_chunk_without_id_falls_back_to_latest_valid(
        self, tmp_path, capsys
    ):
        root, store = self._chunk_store(tmp_path)
        plan = store.plan_restore("jobA", "ckpt-000002")
        backend = LocalDirectoryBackend(root)
        ref1 = {
            o.name for o in store.plan_restore("jobA", "ckpt-000001").objects
        }
        victim = next(o.name for o in plan.objects if o.name not in ref1)
        backend.delete(victim)
        assert main(["restore", str(root)]) == 0
        out = capsys.readouterr().out
        assert "warning: skipped damaged checkpoint ckpt-000002" in out
        assert "job jobA ckpt-000001" in out

    def test_multi_job_requires_job_flag(self, tmp_path, capsys):
        from repro.service.chunkstore import ChunkStore
        from tests.test_snapshot import sample_snapshot

        root = tmp_path / "chunks"
        store = ChunkStore(LocalDirectoryBackend(root), block_bytes=256)
        store.save_snapshot("a", sample_snapshot(step=1))
        store.save_snapshot("b", sample_snapshot(step=1))
        assert main(["restore", str(root)]) == 2
        assert "--job" in capsys.readouterr().err
        assert main(["restore", str(root), "--job", "b", "--warm-start"]) == 0
