"""Tests for the ``qckpt`` command-line tool."""

import json

import pytest

from repro.cli import main
from repro.core.store import CheckpointStore
from repro.storage.local import LocalDirectoryBackend
from tests.test_snapshot import sample_snapshot


@pytest.fixture
def populated_store(tmp_path):
    root = tmp_path / "store"
    store = CheckpointStore(LocalDirectoryBackend(root))
    base = store.save_full(sample_snapshot(step=10))
    nxt = sample_snapshot(step=10).copy()
    nxt.step = 20
    store.save_delta(nxt, base.id)
    return root, store


class TestLs:
    def test_lists_records(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["ls", str(root)]) == 0
        out = capsys.readouterr().out
        assert "ckpt-000001" in out and "ckpt-000002" in out
        assert "full" in out and "delta" in out
        assert "latest: ckpt-000002 at step 20" in out

    def test_empty_store(self, tmp_path, capsys):
        assert main(["ls", str(tmp_path / "empty")]) == 0
        assert "empty store" in capsys.readouterr().out


class TestInspect:
    def test_inspect_file(self, populated_store, capsys):
        root, store = populated_store
        target = root / store.records()[0].object_name
        assert main(["inspect", str(target)]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["format_version"] == 1
        names = {t["name"] for t in header["tensors"]}
        assert "params" in names

    def test_inspect_by_store_id(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["inspect", f"{root}/ckpt-000001"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["meta"]["kind"] == "full"

    def test_inspect_full_tensor_directory(self, populated_store, capsys):
        root, store = populated_store
        target = root / store.records()[0].object_name
        assert main(["inspect", str(target), "--tensors"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert "crc32" in header["tensors"][0]

    def test_inspect_garbage_file(self, tmp_path, capsys):
        junk = tmp_path / "junk.qckpt"
        junk.write_bytes(b"\x00" * 100)
        assert main(["inspect", str(junk)]) == 2
        assert "error" in capsys.readouterr().err


class TestVerify:
    def test_all_valid(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["verify", str(root)]) == 0
        out = capsys.readouterr().out
        assert "2/2 checkpoints valid" in out

    def test_detects_corruption(self, populated_store, capsys):
        root, store = populated_store
        victim = store.records()[1]
        path = root / victim.object_name
        blob = bytearray(path.read_bytes())
        blob[50] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["verify", str(root)]) == 1
        out = capsys.readouterr().out
        assert "BAD ckpt-000002" in out
        assert "1/2 checkpoints valid" in out


class TestGc:
    def test_keep_last(self, populated_store, capsys):
        root, _ = populated_store
        # keep_last=1 keeps the delta AND its pinned base.
        assert main(["gc", str(root), "--keep-last", "1"]) == 0
        assert "deleted 0" in capsys.readouterr().out

    def test_deletes_unreferenced(self, tmp_path, capsys):
        root = tmp_path / "s"
        store = CheckpointStore(LocalDirectoryBackend(root))
        for step in range(1, 6):
            store.save_full(sample_snapshot(step=step))
        assert main(["gc", str(root), "--keep-last", "2"]) == 0
        assert "deleted 3" in capsys.readouterr().out
        reopened = CheckpointStore(LocalDirectoryBackend(root))
        assert len(reopened.records()) == 2


class TestDiff:
    def test_diff_reports_changed_params(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["diff", str(root), "ckpt-000001", "ckpt-000002"]) == 0
        out = capsys.readouterr().out
        assert "step 10" in out and "step 20" in out
        assert "identical" in out
        assert "TENSOR" in out

    def test_diff_same_checkpoint_all_identical(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["diff", str(root), "ckpt-000001", "ckpt-000001"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "changed" in l]
        assert not lines

    def test_diff_missing_id_errors(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["diff", str(root), "ckpt-000001", "ckpt-999999"]) == 2
        assert "error" in capsys.readouterr().err


class TestExport:
    def test_export_delta_as_standalone(self, populated_store, tmp_path, capsys):
        root, store = populated_store
        out_file = tmp_path / "standalone.qckpt"
        assert main(["export", str(root), "ckpt-000002", str(out_file)]) == 0
        assert "chain of 2" in capsys.readouterr().out

        from repro.core.serialize import unpack_snapshot

        snapshot = unpack_snapshot(out_file.read_bytes())
        assert snapshot == store.load("ckpt-000002")

    def test_export_with_codec(self, populated_store, tmp_path):
        root, _ = populated_store
        out_file = tmp_path / "x.qckpt"
        assert main(
            ["export", str(root), "ckpt-000001", str(out_file), "--codec", "lzma"]
        ) == 0
        from repro.core.serialize import inspect_header

        assert inspect_header(out_file.read_bytes())["codec"] == "lzma"


class TestStats:
    def test_stats_summary(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["stats", str(root)]) == 0
        out = capsys.readouterr().out
        assert "full" in out and "delta" in out
        assert "longest restore chain: 2" in out
        assert "step range: 10..20" in out

    def test_stats_empty(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "none")]) == 0
        assert "empty store" in capsys.readouterr().out


class TestPeek:
    def test_peek_params(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["peek", str(root), "ckpt-000002", "params"]) == 0
        out = capsys.readouterr().out
        assert "at step 20" in out
        assert "params: float64" in out

    def test_peek_unknown_tensor_errors(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["peek", str(root), "ckpt-000001", "ghost"]) == 2
        assert "error" in capsys.readouterr().err


class TestFleet:
    def test_fleet_storm_in_memory(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--jobs", "2",
                    "--steps", "3",
                    "--qubits", "2",
                    "--layers", "1",
                    "--samples", "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "job00" in out and "job01" in out
        assert "storm@2" in out
        assert "dedup" in out
        assert "recovered-work ratio" in out

    def test_fleet_persists_to_directory(self, tmp_path, capsys):
        store_dir = tmp_path / "fleet"
        assert (
            main(
                [
                    "fleet",
                    "--jobs", "2",
                    "--steps", "1",
                    "--qubits", "2",
                    "--layers", "1",
                    "--samples", "32",
                    "--scenario", "sweep",
                    "--shards", "2",
                    "--store", str(store_dir),
                ]
            )
            == 0
        )
        # Chunks and manifests landed on the shard directories.
        from repro.service import ChunkStore
        from repro.storage.local import LocalDirectoryBackend
        from repro.storage.sharded import ShardedBackend

        backend = ShardedBackend(
            [LocalDirectoryBackend(store_dir / f"shard-{i}") for i in range(2)]
        )
        store = ChunkStore(backend)
        assert store.jobs() == ["job00", "job01"]
        assert store.load_snapshot("job00").step == 1
