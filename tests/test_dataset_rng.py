"""Unit tests for datasets, the checkpointable sampler, and RNG capture."""

import numpy as np
import pytest

from repro.errors import ConfigError, SerializationError
from repro.ml.dataset import (
    ArrayDataset,
    BatchSampler,
    make_blobs,
    make_circles,
    make_moons,
    make_parity,
)
from repro.ml.rng import (
    capture_rng_state,
    generator_from_state,
    restore_rng_state,
    spawn_child,
)


class TestArrayDataset:
    def test_construction(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 2)), np.ones(10))
        assert len(ds) == 10 and ds.n_features == 2

    def test_rejects_1d_features(self):
        with pytest.raises(ConfigError):
            ArrayDataset(np.ones(10), np.ones(10))

    def test_rejects_label_mismatch(self, rng):
        with pytest.raises(ConfigError):
            ArrayDataset(rng.standard_normal((10, 2)), np.ones(9))

    def test_batch_selects_rows(self, rng):
        ds = ArrayDataset(np.arange(20).reshape(10, 2), np.arange(10))
        x, y = ds.batch(np.array([2, 5]))
        assert np.array_equal(y, [2, 5])
        assert np.array_equal(x[0], [4, 5])

    def test_split(self, rng):
        ds = make_moons(100, rng)
        train, test = ds.split(0.8, rng)
        assert len(train) == 80 and len(test) == 20

    def test_split_fraction_validated(self, rng):
        with pytest.raises(ConfigError):
            make_moons(10, rng).split(1.0, rng)


class TestGenerators:
    @pytest.mark.parametrize(
        "factory", [make_moons, make_circles, make_blobs]
    )
    def test_shapes_and_labels(self, factory, rng):
        ds = factory(50, rng)
        assert ds.features.shape == (50, 2)
        assert set(np.unique(ds.labels)) == {-1.0, 1.0}

    def test_moons_classes_balanced(self, rng):
        ds = make_moons(100, rng)
        assert np.sum(ds.labels == 1.0) == 50

    def test_circles_factor_validated(self, rng):
        with pytest.raises(ConfigError):
            make_circles(10, rng, factor=1.5)

    def test_circles_radii_separated(self, rng):
        ds = make_circles(200, rng, noise=0.0, factor=0.5)
        radii = np.linalg.norm(ds.features, axis=1)
        outer = radii[ds.labels == 1.0]
        inner = radii[ds.labels == -1.0]
        assert inner.max() < outer.min()

    def test_parity_dataset_complete(self):
        ds = make_parity(3)
        assert len(ds) == 8
        # parity of 0b101 is even -> +1
        row = np.array([1.0, 0.0, 1.0])
        index = np.where((ds.features == row).all(axis=1))[0][0]
        assert ds.labels[index] == 1.0

    def test_parity_bounds(self):
        with pytest.raises(ConfigError):
            make_parity(0)

    def test_generators_deterministic(self):
        a = make_moons(20, np.random.default_rng(5))
        b = make_moons(20, np.random.default_rng(5))
        assert np.array_equal(a.features, b.features)


class TestBatchSampler:
    def test_epoch_covers_every_index(self):
        sampler = BatchSampler(10, 3, seed=1)
        seen = []
        while sampler.epoch == 0:
            batch = sampler.next_batch()
            if sampler.epoch == 0:
                seen.extend(batch.tolist())
        # First epoch yields a permutation of 0..9 plus the start of epoch 1.
        assert sorted(set(seen)) == list(range(10))[: len(set(seen))]

    def test_batches_partition_epoch(self):
        sampler = BatchSampler(9, 3, seed=2)
        batches = [sampler.next_batch() for _ in range(3)]
        combined = sorted(np.concatenate(batches).tolist())
        assert combined == list(range(9))

    def test_reshuffles_between_epochs(self):
        sampler = BatchSampler(32, 32, seed=3)
        first = sampler.next_batch()
        second = sampler.next_batch()
        assert not np.array_equal(first, second)

    def test_batch_size_clamped_to_dataset(self):
        sampler = BatchSampler(4, 100, seed=0)
        assert len(sampler.next_batch()) == 4

    def test_state_roundtrip_mid_epoch(self):
        sampler = BatchSampler(10, 3, seed=7)
        sampler.next_batch()
        state = sampler.state()
        expected = [sampler.next_batch() for _ in range(6)]

        fresh = BatchSampler(10, 3, seed=0)  # different seed: state must win
        fresh.restore_state(state)
        resumed = [fresh.next_batch() for _ in range(6)]
        for a, b in zip(expected, resumed):
            assert np.array_equal(a, b)

    def test_state_mismatched_size_rejected(self):
        state = BatchSampler(10, 3).state()
        with pytest.raises(ConfigError):
            BatchSampler(11, 3).restore_state(state)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BatchSampler(0, 1)
        with pytest.raises(ConfigError):
            BatchSampler(1, 0)


class TestRngCapture:
    def test_roundtrip_continues_stream(self):
        rng = np.random.default_rng(11)
        rng.standard_normal(5)
        state = capture_rng_state(rng)
        expected = rng.standard_normal(10)

        other = np.random.default_rng(999)
        restore_rng_state(other, state)
        assert np.array_equal(other.standard_normal(10), expected)

    def test_generator_from_state(self):
        rng = np.random.default_rng(12)
        rng.random(3)
        state = capture_rng_state(rng)
        clone = generator_from_state(state)
        assert np.array_equal(clone.random(5), rng.random(5))

    def test_capture_is_a_deep_copy(self):
        rng = np.random.default_rng(1)
        state = capture_rng_state(rng)
        rng.random(100)
        clone = generator_from_state(state)
        fresh = np.random.default_rng(1)
        assert clone.random() == fresh.random()

    def test_bit_generator_mismatch_rejected(self):
        pcg_state = capture_rng_state(np.random.default_rng(0))
        mt = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(SerializationError):
            restore_rng_state(mt, pcg_state)

    def test_mt19937_state_roundtrips(self):
        # MT19937 state includes an ndarray key: exercises the array path.
        rng = np.random.Generator(np.random.MT19937(3))
        rng.random(7)
        state = capture_rng_state(rng)
        clone = generator_from_state(state)
        assert np.array_equal(clone.random(5), rng.random(5))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(SerializationError):
            generator_from_state({"bit_generator": "XORWOW"})

    def test_spawn_child_deterministic(self):
        a = spawn_child(np.random.default_rng(5), key=1)
        b = spawn_child(np.random.default_rng(5), key=1)
        assert a.random() == b.random()

    def test_spawn_child_differs_by_key(self):
        parent = np.random.default_rng(5)
        a = spawn_child(parent, key=1)
        parent2 = np.random.default_rng(5)
        b = spawn_child(parent2, key=2)
        assert a.random() != b.random()
