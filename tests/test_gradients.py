"""Cross-validation of the three gradient engines.

The finite-difference differentiator is the independent numerical oracle;
adjoint and parameter-shift must agree with it (and with each other to
machine precision, both being exact).
"""

import numpy as np
import pytest

from repro.autodiff import (
    adjoint_gradient,
    finite_difference_gradient,
    parameter_shift_gradient,
)
from repro.autodiff.parameter_shift import shift_rule_evaluations
from repro.errors import GradientError
from repro.quantum.circuit import Circuit, Param
from repro.quantum.haar import haar_state
from repro.quantum.observables import Hamiltonian, PauliString, Projector
from repro.quantum.templates import (
    hardware_efficient,
    initial_parameters,
    qaoa_maxcut,
    strongly_entangling,
)

Z0 = PauliString.from_label("Z0")


def _cases():
    rng = np.random.default_rng(99)
    hea = hardware_efficient(3, 2)
    se = strongly_entangling(3, 2)
    qaoa = qaoa_maxcut(3, [(0, 1), (1, 2), (0, 2)], 2)
    ctrl = Circuit(3)
    ctrl.h(0).crx(0, 1, ctrl.new_param()).cry(1, 2, ctrl.new_param())
    ctrl.crz(0, 2, ctrl.new_param()).cphase(0, 1, ctrl.new_param())
    mixed = Circuit(2)
    mixed.rot(0, mixed.new_param(), 0.4, mixed.new_param())
    mixed.xx(0, 1, mixed.new_param()).yy(0, 1, mixed.new_param())
    mixed.zz(0, 1, mixed.new_param()).phase(1, mixed.new_param())
    tfim = Hamiltonian.transverse_field_ising(3, 1.0, 0.7)
    small = Hamiltonian.from_terms({"Z0": 1.0, "X0 X1": 0.5})
    return [
        ("hea", hea, initial_parameters(hea, rng, 0.8), tfim),
        ("se", se, initial_parameters(se, rng, 0.8), tfim),
        ("qaoa-shared", qaoa, rng.uniform(0, np.pi, qaoa.n_params), tfim),
        ("controlled", ctrl, rng.uniform(0, np.pi, ctrl.n_params), tfim),
        ("mixed-gates", mixed, rng.uniform(0, np.pi, mixed.n_params), small),
    ]


class TestGradientAgreement:
    @pytest.mark.parametrize("name,circuit,params,obs", _cases())
    def test_adjoint_vs_parameter_shift(self, name, circuit, params, obs):
        adj = adjoint_gradient(circuit, params, obs)
        ps = parameter_shift_gradient(circuit, params, obs)
        assert np.allclose(adj, ps, atol=1e-10), name

    @pytest.mark.parametrize("name,circuit,params,obs", _cases())
    def test_adjoint_vs_finite_difference(self, name, circuit, params, obs):
        adj = adjoint_gradient(circuit, params, obs)
        fd = finite_difference_gradient(circuit, params, obs)
        assert np.allclose(adj, fd, atol=1e-5), name

    def test_gradients_nonzero_somewhere(self):
        _, circuit, params, obs = _cases()[0]
        assert np.linalg.norm(adjoint_gradient(circuit, params, obs)) > 1e-6


class TestAdjoint:
    def test_return_value_matches_expectation(self, rng):
        circuit = hardware_efficient(2, 1)
        params = initial_parameters(circuit, rng, 0.5)
        h = Hamiltonian.from_terms({"Z0": 1.0, "Z1": -0.5})
        value, grads = adjoint_gradient(circuit, params, h, return_value=True)
        from repro.quantum.statevector import apply_circuit

        assert np.isclose(value, h.expectation(apply_circuit(circuit, params)))
        assert grads.shape == params.shape

    def test_initial_state_support(self, rng):
        circuit = Circuit(2)
        circuit.rx(0, circuit.new_param())
        initial = haar_state(2, rng)
        adj = adjoint_gradient(circuit, [0.3], Z0, initial_state=initial)
        fd = finite_difference_gradient(circuit, [0.3], Z0, initial_state=initial)
        assert np.allclose(adj, fd, atol=1e-5)

    def test_projector_observable(self, rng):
        circuit = hardware_efficient(2, 1)
        params = initial_parameters(circuit, rng, 0.5)
        target = haar_state(2, rng)
        adj = adjoint_gradient(circuit, params, Projector(target))
        fd = finite_difference_gradient(circuit, params, Projector(target))
        assert np.allclose(adj, fd, atol=1e-5)

    def test_unsupported_observable_rejected(self):
        circuit = Circuit(1)
        circuit.rx(0, circuit.new_param())
        with pytest.raises(GradientError):
            adjoint_gradient(circuit, [0.1], object())

    def test_constant_parameters_not_differentiated(self):
        circuit = Circuit(1)
        circuit.rx(0, 0.7)  # constant, not trainable
        circuit.ry(0, circuit.new_param())
        grads = adjoint_gradient(circuit, [0.2], Z0)
        assert grads.shape == (1,)


class TestParameterShift:
    def test_known_analytic_gradient(self):
        # <Z> after RY(theta) is cos(theta); gradient is -sin(theta).
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        theta = 0.83
        grads = parameter_shift_gradient(circuit, [theta], Z0)
        assert np.isclose(grads[0], -np.sin(theta), atol=1e-12)

    def test_shared_parameter_chain_rule(self):
        # Same Param feeding two RY gates: d/dtheta cos(2 theta) = -2 sin(2 theta).
        circuit = Circuit(1)
        shared = circuit.new_param()
        circuit.ry(0, shared).ry(0, shared)
        theta = 0.4
        grads = parameter_shift_gradient(circuit, [theta], Z0)
        assert np.isclose(grads[0], -2 * np.sin(2 * theta), atol=1e-12)

    def test_four_term_rule_for_controlled_rotation(self):
        circuit = Circuit(2)
        circuit.h(0).crx(0, 1, circuit.new_param())
        theta = 1.234
        z1 = PauliString.from_label("Z1")
        grads = parameter_shift_gradient(circuit, [theta], z1)
        fd = finite_difference_gradient(circuit, [theta], z1)
        assert np.allclose(grads, fd, atol=1e-6)

    def test_shot_based_requires_rng(self):
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        with pytest.raises(ValueError):
            parameter_shift_gradient(circuit, [0.1], Z0, shots=100)

    def test_shot_based_reproducible(self):
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        a = parameter_shift_gradient(
            circuit, [0.5], Z0, shots=128, rng=np.random.default_rng(4)
        )
        b = parameter_shift_gradient(
            circuit, [0.5], Z0, shots=128, rng=np.random.default_rng(4)
        )
        assert np.array_equal(a, b)

    def test_shot_based_converges(self):
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        theta = 0.9
        grads = parameter_shift_gradient(
            circuit, [theta], Z0, shots=40000, rng=np.random.default_rng(8)
        )
        assert abs(grads[0] + np.sin(theta)) < 0.03

    def test_evaluation_count(self):
        circuit = Circuit(2)
        circuit.ry(0, circuit.new_param())
        circuit.crx(0, 1, circuit.new_param())
        assert shift_rule_evaluations(circuit) == 2 + 4

    def test_unparameterized_circuit_gives_empty_gradient(self):
        circuit = Circuit(1).h(0)
        grads = parameter_shift_gradient(circuit, [], Z0)
        assert grads.size == 0


class TestFiniteDifference:
    def test_forward_scheme(self):
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        grads = finite_difference_gradient(
            circuit, [0.6], Z0, scheme="forward", step=1e-7
        )
        assert np.isclose(grads[0], -np.sin(0.6), atol=1e-4)

    def test_invalid_scheme(self):
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        with pytest.raises(GradientError):
            finite_difference_gradient(circuit, [0.1], Z0, scheme="sideways")

    def test_invalid_step(self):
        circuit = Circuit(1)
        circuit.ry(0, circuit.new_param())
        with pytest.raises(GradientError):
            finite_difference_gradient(circuit, [0.1], Z0, step=0.0)
