"""Unit tests for failure injection, the Daly models, and the harness."""

import numpy as np
import pytest

from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps
from repro.core.store import CheckpointStore
from repro.errors import ConfigError
from repro.faults.daly import (
    expected_makespan,
    mean_simulated_makespan,
    no_checkpoint_makespan,
    simulate_makespan,
)
from repro.faults.harness import run_with_failures
from repro.faults.injector import (
    CrashAtStep,
    PoissonStepFailures,
    SimulatedClock,
    SimulatedFailure,
)
from repro.storage.memory import InMemoryBackend
from tests.test_trainer import make_classifier_trainer, make_vqe_trainer


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock(5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigError):
            SimulatedClock().advance(-1.0)


class TestCrashAtStep:
    def test_crashes_at_requested_step(self):
        trainer = make_vqe_trainer()
        with pytest.raises(SimulatedFailure) as excinfo:
            trainer.run(10, hooks=[CrashAtStep(4)])
        assert excinfo.value.step == 4
        assert trainer.step_count == 4

    def test_each_crash_step_fires_once(self):
        hook = CrashAtStep([2, 5])
        trainer = make_vqe_trainer()
        with pytest.raises(SimulatedFailure):
            trainer.run(10, hooks=[hook])
        with pytest.raises(SimulatedFailure):
            trainer.run(10, hooks=[hook])
        trainer.run(5, hooks=[hook])  # exhausted: no more crashes
        assert hook.crashes == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            CrashAtStep(0)


class TestPoissonStepFailures:
    def test_deterministic_schedule(self):
        def failures_with_seed(seed):
            hook = PoissonStepFailures(10.0, seed=seed, fixed_step_seconds=1.0)
            trainer = make_vqe_trainer()
            crashed_at = []
            for _ in range(50):
                try:
                    trainer.run(1, hooks=[hook])
                except SimulatedFailure as failure:
                    crashed_at.append(failure.step)
            return crashed_at

        assert failures_with_seed(3) == failures_with_seed(3)

    def test_failure_rate_matches_mtbf(self):
        hook = PoissonStepFailures(20.0, seed=0, fixed_step_seconds=1.0)
        trainer = make_vqe_trainer()
        failures = 0
        steps = 300
        for _ in range(steps):
            try:
                trainer.run(1, hooks=[hook])
            except SimulatedFailure:
                failures += 1
        rate = failures / steps
        expected = 1.0 - np.exp(-1.0 / 20.0)
        assert abs(rate - expected) < 0.03

    def test_validation(self):
        with pytest.raises(ConfigError):
            PoissonStepFailures(0.0)
        with pytest.raises(ConfigError):
            PoissonStepFailures(10.0, fixed_step_seconds=0.0)


class TestDalyModels:
    def test_analytic_matches_simulation(self):
        rng = np.random.default_rng(0)
        analytic = expected_makespan(3600, 600, 10, 30, 7200)
        simulated = mean_simulated_makespan(
            3600, 600, 10, 30, 7200, rng, samples=4000
        )
        assert abs(simulated - analytic) / analytic < 0.05

    def test_no_checkpoint_matches_simulation(self):
        rng = np.random.default_rng(1)
        analytic = no_checkpoint_makespan(1000, 50, 2000)
        simulated = mean_simulated_makespan(
            1000, None, 0, 50, 2000, rng, samples=4000
        )
        assert abs(simulated - analytic) / analytic < 0.05

    def test_failure_free_limit(self):
        # MTBF >> work: makespan approaches work + checkpoint overhead.
        makespan = expected_makespan(1000, 100, 1, 0, 1e9)
        assert makespan == pytest.approx(1010, rel=1e-3)

    def test_checkpointing_beats_none_under_frequent_failures(self):
        work, cost, restart, mtbf = 4 * 3600, 30, 120, 1800
        with_ckpt = expected_makespan(work, 600, cost, restart, mtbf)
        without = no_checkpoint_makespan(work, restart, mtbf)
        assert with_ckpt < without / 100

    def test_makespan_increases_as_mtbf_shrinks(self):
        values = [
            expected_makespan(3600, 600, 10, 30, mtbf)
            for mtbf in (36000, 7200, 1800)
        ]
        assert values == sorted(values)

    def test_simulation_no_failures_is_deterministic_work(self):
        rng = np.random.default_rng(2)
        # MTBF astronomically large: exactly work + checkpoints on all
        # segments except the last.
        makespan = simulate_makespan(100, 25, 5, 0, 1e15, rng)
        assert makespan == pytest.approx(100 + 3 * 5)

    def test_simulation_guard_rail(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ConfigError, match="exceeded"):
            simulate_makespan(1000, None, 0, 0, 1.0, rng, max_makespan=10_000)

    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            expected_makespan(0, 10, 1, 1, 100)
        with pytest.raises(ConfigError):
            expected_makespan(10, 0, 1, 1, 100)
        with pytest.raises(ConfigError):
            no_checkpoint_makespan(10, -1, 100)
        with pytest.raises(ConfigError):
            simulate_makespan(10, 0, 1, 1, 100, rng)
        with pytest.raises(ConfigError):
            mean_simulated_makespan(10, None, 0, 0, 100, rng, samples=0)


class TestHarness:
    def _factory(self):
        return lambda: make_classifier_trainer()

    def test_completes_without_failures(self, memory_store):
        result = run_with_failures(
            self._factory(),
            memory_store,
            lambda s: CheckpointManager(s, EveryKSteps(3)),
            target_steps=6,
        )
        assert result.final_step == 6
        assert result.failures == 0
        assert result.wasted_steps == 0

    def test_crash_recover_loses_only_uncheckpointed_steps(self, memory_store):
        result = run_with_failures(
            self._factory(),
            memory_store,
            lambda s: CheckpointManager(s, EveryKSteps(3)),
            target_steps=10,
            failure_hooks=[CrashAtStep(5)],
        )
        assert result.final_step == 10
        assert result.failures == 1
        # crashed at 5, last checkpoint at 3 -> steps 4..5 redone
        assert result.wasted_steps == 2
        assert result.resumed_from_steps == [3]

    def test_no_checkpointing_restarts_from_scratch(self, memory_store):
        result = run_with_failures(
            self._factory(),
            memory_store,
            None,
            target_steps=8,
            failure_hooks=[CrashAtStep(5)],
        )
        assert result.final_step == 8
        assert result.wasted_steps == 5

    def test_final_state_matches_uninterrupted_run(self, memory_store):
        reference = make_classifier_trainer()
        reference.run(10)
        run_with_failures(
            self._factory(),
            memory_store,
            lambda s: CheckpointManager(s, EveryKSteps(2)),
            target_steps=10,
            failure_hooks=[CrashAtStep([3, 7])],
        )
        final = memory_store.load(memory_store.latest().id)
        assert np.array_equal(final.params, reference.params)
        assert np.array_equal(
            final.loss_history, np.asarray(reference.loss_history)
        )

    def test_multiple_crashes(self, memory_store):
        result = run_with_failures(
            self._factory(),
            memory_store,
            lambda s: CheckpointManager(s, EveryKSteps(2)),
            target_steps=12,
            failure_hooks=[CrashAtStep([3, 6, 9])],
        )
        assert result.final_step == 12
        assert result.failures == 3

    def test_max_failures_guard(self, memory_store):
        class AlwaysCrash:
            def on_step_end(self, trainer, info):
                raise SimulatedFailure(trainer.step_count)

        with pytest.raises(ConfigError, match="exceeded"):
            run_with_failures(
                self._factory(),
                memory_store,
                None,
                target_steps=5,
                failure_hooks=[AlwaysCrash()],
                max_failures=5,
            )

    def test_target_validation(self, memory_store):
        with pytest.raises(ConfigError):
            run_with_failures(self._factory(), memory_store, None, 0)
