"""Unit tests for ansatz templates and data encoders."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum.circuit import Param
from repro.quantum.encoding import (
    amplitude_state,
    angle_encoding,
    basis_encoding,
    iqp_encoding,
)
from repro.quantum.statevector import apply_circuit, zero_state
from repro.quantum.templates import (
    hardware_efficient,
    initial_parameters,
    qaoa_maxcut,
    real_amplitudes,
    strongly_entangling,
)


class TestHardwareEfficient:
    def test_param_count(self):
        circuit = hardware_efficient(4, 3, rotations=("ry", "rz"))
        assert circuit.n_params == 4 * 3 * 2

    def test_single_rotation_param_count(self):
        assert hardware_efficient(5, 2, rotations=("ry",)).n_params == 10

    def test_entangler_count_ring(self):
        circuit = hardware_efficient(4, 1)
        assert circuit.gate_counts()["cnot"] == 4  # ring closes

    def test_entangler_count_two_qubits_no_double_edge(self):
        circuit = hardware_efficient(2, 1)
        assert circuit.gate_counts()["cnot"] == 1

    def test_ladder_when_ring_disabled(self):
        circuit = hardware_efficient(4, 1, ring=False)
        assert circuit.gate_counts()["cnot"] == 3

    def test_cz_entangler(self):
        circuit = hardware_efficient(3, 1, entangler="cz")
        assert "cz" in circuit.gate_counts()

    def test_rejects_bad_rotation(self):
        with pytest.raises(CircuitError):
            hardware_efficient(2, 1, rotations=("h",))

    def test_rejects_bad_entangler(self):
        with pytest.raises(CircuitError):
            hardware_efficient(2, 1, entangler="swap")

    def test_single_qubit_no_entanglers(self):
        circuit = hardware_efficient(1, 2)
        assert "cnot" not in circuit.gate_counts()

    def test_executes(self):
        circuit = hardware_efficient(3, 2)
        state = apply_circuit(circuit, np.zeros(circuit.n_params))
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestStronglyEntangling:
    def test_param_count(self):
        assert strongly_entangling(4, 2).n_params == 4 * 2 * 3

    def test_custom_ranges_length_checked(self):
        with pytest.raises(CircuitError):
            strongly_entangling(3, 2, ranges=[1])

    def test_range_wraps(self):
        circuit = strongly_entangling(3, 1, ranges=[2])
        cnots = [op for op in circuit.ops if op.gate == "cnot"]
        assert cnots[0].wires == (0, 2)

    def test_executes(self):
        circuit = strongly_entangling(3, 2)
        state = apply_circuit(circuit, 0.1 * np.ones(circuit.n_params))
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestQAOA:
    def test_param_count_is_two_per_layer(self):
        circuit = qaoa_maxcut(4, [(0, 1), (1, 2), (2, 3)], 3)
        assert circuit.n_params == 6

    def test_parameters_shared_across_edges(self):
        circuit = qaoa_maxcut(3, [(0, 1), (1, 2)], 1)
        zz_params = [
            op.params[0] for op in circuit.ops if op.gate == "zz"
        ]
        assert all(isinstance(p, Param) for p in zz_params)
        assert len({p.index for p in zz_params}) == 1

    def test_starts_with_hadamard_layer(self):
        circuit = qaoa_maxcut(3, [(0, 1)], 1)
        assert [op.gate for op in circuit.ops[:3]] == ["h", "h", "h"]

    def test_executes(self):
        circuit = qaoa_maxcut(3, [(0, 1), (1, 2)], 2)
        state = apply_circuit(circuit, 0.3 * np.ones(circuit.n_params))
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestRealAmplitudes:
    def test_state_is_real(self):
        circuit = real_amplitudes(3, 2)
        state = apply_circuit(circuit, 0.4 * np.ones(circuit.n_params))
        assert np.allclose(state.imag, 0.0)


class TestInitialParameters:
    def test_shape_and_scale(self, rng):
        circuit = hardware_efficient(3, 2)
        params = initial_parameters(circuit, rng, scale=0.01)
        assert params.shape == (circuit.n_params,)
        assert np.max(np.abs(params)) < 0.1


class TestAngleEncoding:
    def test_ry_encoding_rotates_each_qubit(self):
        circuit = angle_encoding([np.pi, 0.0], 2, rotation="ry")
        state = apply_circuit(circuit)
        # qubit 0 rotated by pi -> |1>, qubit 1 untouched -> |0>
        assert np.isclose(abs(state[2]) ** 2, 1.0)

    def test_features_cycle_over_wires(self):
        circuit = angle_encoding([0.5], 3)
        rotations = [op for op in circuit.ops if op.gate == "ry"]
        assert len(rotations) == 3

    def test_extra_features_wrap_around_wires(self):
        circuit = angle_encoding([0.1, 0.2, 0.3], 2)
        rotations = [op for op in circuit.ops if op.gate == "ry"]
        assert len(rotations) == 3

    def test_rz_encoding_prepends_hadamard(self):
        circuit = angle_encoding([0.3], 2, rotation="rz")
        assert circuit.ops[0].gate == "h"

    def test_no_trainable_params(self):
        assert angle_encoding([0.1, 0.2], 2).n_params == 0

    def test_rejects_bad_rotation(self):
        with pytest.raises(CircuitError):
            angle_encoding([0.1], 1, rotation="rot")

    def test_rejects_empty_features(self):
        with pytest.raises(CircuitError):
            angle_encoding([], 2)


class TestIQPEncoding:
    def test_structure(self):
        circuit = iqp_encoding([0.1, 0.2, 0.3], 3)
        counts = circuit.gate_counts()
        assert counts["h"] == 3 and counts["rz"] == 3 and counts["zz"] == 2

    def test_depth_repeats(self):
        shallow = iqp_encoding([0.1, 0.2], 2, depth=1)
        deep = iqp_encoding([0.1, 0.2], 2, depth=3)
        assert len(deep) == 3 * len(shallow)

    def test_short_features_resized(self):
        circuit = iqp_encoding([0.5], 3)
        assert np.isclose(
            np.linalg.norm(apply_circuit(circuit)), 1.0
        )


class TestBasisEncoding:
    def test_sets_requested_bits(self):
        circuit = basis_encoding([1, 0, 1], 3)
        state = apply_circuit(circuit)
        assert state[0b101] == 1.0

    def test_rejects_non_bits(self):
        with pytest.raises(CircuitError):
            basis_encoding([2], 1)

    def test_rejects_overflow(self):
        with pytest.raises(CircuitError):
            basis_encoding([1, 1], 1)


class TestAmplitudeEncoding:
    def test_normalizes(self):
        state = amplitude_state([3.0, 4.0], 1)
        assert np.isclose(np.linalg.norm(state), 1.0)
        assert np.isclose(abs(state[0]) ** 2, 9 / 25)

    def test_pads_with_zeros(self):
        state = amplitude_state([1.0], 2)
        assert state[0] == 1.0 and np.count_nonzero(state) == 1

    def test_rejects_oversized_vector(self):
        with pytest.raises(CircuitError):
            amplitude_state(np.ones(5), 2)

    def test_rejects_zero_vector(self):
        with pytest.raises(CircuitError):
            amplitude_state([0.0, 0.0], 1)
