"""Unit tests for the checkpoint store: manifest, chains, retention, GC."""

import numpy as np
import pytest

from repro.core.store import (
    KIND_DELTA,
    KIND_FULL,
    CheckpointStore,
    RetentionPolicy,
)
from repro.errors import (
    CheckpointNotFoundError,
    ConfigError,
    IntegrityError,
)
from repro.storage.flaky import FlakyBackend
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from tests.test_snapshot import sample_snapshot


def snapshot_at(step: int):
    return sample_snapshot(step=step)


class TestFullCheckpoints:
    def test_save_and_load(self, memory_store):
        snapshot = snapshot_at(5)
        record = memory_store.save_full(snapshot)
        assert record.kind == KIND_FULL
        assert record.step == 5
        assert memory_store.load(record.id) == snapshot

    def test_record_metadata(self, memory_store):
        record = memory_store.save_full(snapshot_at(1), extra={"tag": "x"})
        assert record.extra == {"tag": "x"}
        assert record.nbytes > 0
        assert len(record.sha256) == 64

    def test_ids_are_sequential(self, memory_store):
        a = memory_store.save_full(snapshot_at(1))
        b = memory_store.save_full(snapshot_at(2))
        assert a.id == "ckpt-000001" and b.id == "ckpt-000002"

    def test_latest_by_step(self, memory_store):
        memory_store.save_full(snapshot_at(10))
        memory_store.save_full(snapshot_at(30))
        memory_store.save_full(snapshot_at(20))
        assert memory_store.latest().step == 30

    def test_latest_empty(self, memory_store):
        assert memory_store.latest() is None

    def test_get_missing(self, memory_store):
        with pytest.raises(CheckpointNotFoundError):
            memory_store.get("ckpt-999999")

    def test_load_missing(self, memory_store):
        with pytest.raises(CheckpointNotFoundError):
            memory_store.load("ckpt-999999")

    def test_total_bytes(self, memory_store):
        a = memory_store.save_full(snapshot_at(1))
        b = memory_store.save_full(snapshot_at(2))
        assert memory_store.total_bytes() == a.nbytes + b.nbytes

    def test_transforms_respected(self, memory_store):
        snapshot = snapshot_at(3)
        lossless = memory_store.save_full(snapshot)
        lossy = memory_store.save_full(
            snapshot, transforms={"statevector": "int8-block"}
        )
        assert lossy.nbytes < lossless.nbytes
        restored = memory_store.load(lossy.id)
        fidelity = abs(np.vdot(snapshot.statevector, restored.statevector)) ** 2
        assert fidelity > 0.999
        # lossless tensors are untouched by the statevector transform
        assert np.array_equal(restored.params, snapshot.params)


class TestManifestPersistence:
    def test_reopen_sees_records(self, local_backend):
        store = CheckpointStore(local_backend)
        record = store.save_full(snapshot_at(4))
        reopened = CheckpointStore(local_backend)
        assert [r.id for r in reopened.records()] == [record.id]
        assert reopened.load(record.id) == snapshot_at(4)

    def test_reopen_continues_id_sequence(self, local_backend):
        store = CheckpointStore(local_backend)
        store.save_full(snapshot_at(1))
        reopened = CheckpointStore(local_backend)
        record = reopened.save_full(snapshot_at(2))
        assert record.id == "ckpt-000002"

    def test_corrupt_manifest_rejected(self, local_backend):
        local_backend.write("MANIFEST.json", b"{not json")
        with pytest.raises(IntegrityError):
            CheckpointStore(local_backend)

    def test_wrong_manifest_version_rejected(self, local_backend):
        local_backend.write("MANIFEST.json", b'{"version": 42, "records": []}')
        with pytest.raises(IntegrityError):
            CheckpointStore(local_backend)

    def test_object_written_before_manifest(self):
        """Crash between object write and manifest write leaves an orphan,
        never a dangling manifest entry."""
        inner = InMemoryBackend()
        flaky = FlakyBackend(inner)
        store = CheckpointStore(flaky)
        # Fail the manifest write (second write of save_full).
        flaky.arm("error", fail_on_write=2)
        with pytest.raises(Exception):
            store.save_full(snapshot_at(1))
        reopened = CheckpointStore(inner)
        assert reopened.records() == []  # manifest clean
        assert inner.list("ckpt-")  # orphan object exists
        reopened.gc(RetentionPolicy())
        assert inner.list("ckpt-") == []  # orphan swept


class TestDeltaChains:
    def _chain(self, store, length=4):
        snapshot = snapshot_at(0)
        record = store.save_full(snapshot)
        snapshots = [snapshot]
        for i in range(1, length):
            nxt = snapshot.copy()
            nxt.step = i
            nxt.params = nxt.params + 0.01 * i
            record = store.save_delta(nxt, record.id)
            snapshots.append(nxt)
            snapshot = nxt
        return snapshots

    def test_delta_roundtrip(self, memory_store):
        snapshots = self._chain(memory_store, 4)
        for record, expected in zip(memory_store.records(), snapshots):
            assert memory_store.load(record.id) == expected

    def test_chain_length(self, memory_store):
        self._chain(memory_store, 4)
        records = memory_store.records()
        assert memory_store.chain_length(records[0].id) == 1
        assert memory_store.chain_length(records[3].id) == 4

    def test_delta_smaller_than_full(self, memory_store):
        # Deltas win when most bytes are identical between steps: here a
        # 1024-amplitude statevector is unchanged while only the 12 params
        # move, so the XOR delta is mostly zero runs.
        rng = np.random.default_rng(3)
        vec = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        snapshot = snapshot_at(0)
        snapshot.statevector = vec / np.linalg.norm(vec)
        record = memory_store.save_full(snapshot)
        nxt = snapshot.copy()
        nxt.step = 1
        nxt.params = nxt.params + 0.01
        delta = memory_store.save_delta(nxt, record.id)
        assert delta.kind == KIND_DELTA
        assert delta.nbytes < record.nbytes / 2

    def test_delta_overhead_dominates_tiny_snapshots(self, memory_store):
        # The flip side of the crossover: on a toy snapshot (~3 KB, dominated
        # by JSON meta and the RNG state) the delta's per-tensor metadata can
        # exceed the XOR savings — deltas are a large-state optimization, not
        # a universal one.
        self._chain(memory_store, 3)
        records = memory_store.records()
        assert records[1].kind == KIND_DELTA
        assert records[1].nbytes < records[0].nbytes * 1.25

    def test_delta_against_missing_base(self, memory_store):
        with pytest.raises(CheckpointNotFoundError):
            memory_store.save_delta(snapshot_at(1), "ckpt-424242")

    def test_delta_with_provided_base_tensors(self, memory_store):
        base = snapshot_at(0)
        record = memory_store.save_full(base)
        _, base_tensors = base.to_payload()
        nxt = base.copy()
        nxt.step = 1
        delta_record = memory_store.save_delta(
            nxt, record.id, base_tensors=base_tensors
        )
        assert memory_store.load(delta_record.id) == nxt

    def test_deleting_base_of_live_delta_refused(self, memory_store):
        self._chain(memory_store, 2)
        base_id = memory_store.records()[0].id
        with pytest.raises(ConfigError, match="depend"):
            memory_store.delete(base_id)

    def test_delete_leaf_then_base(self, memory_store):
        self._chain(memory_store, 2)
        records = memory_store.records()
        memory_store.delete(records[1].id)
        memory_store.delete(records[0].id)
        assert memory_store.records() == []


class TestVerification:
    def test_verify_ok(self, memory_store):
        record = memory_store.save_full(snapshot_at(1))
        ok, detail = memory_store.verify(record.id)
        assert ok and detail == "ok"

    def test_verify_detects_object_corruption(self, memory_store):
        record = memory_store.save_full(snapshot_at(1))
        data = bytearray(memory_store.backend.read(record.object_name))
        data[len(data) // 2] ^= 0xFF
        memory_store.backend.write(record.object_name, bytes(data))
        ok, detail = memory_store.verify(record.id)
        assert not ok and "SHA-256" in detail

    def test_verify_detects_missing_object(self, memory_store):
        record = memory_store.save_full(snapshot_at(1))
        memory_store.backend.delete(record.object_name)
        ok, _ = memory_store.verify(record.id)
        assert not ok

    def test_verify_all(self, memory_store):
        a = memory_store.save_full(snapshot_at(1))
        b = memory_store.save_full(snapshot_at(2))
        memory_store.backend.delete(b.object_name)
        results = memory_store.verify_all()
        assert results[a.id][0] and not results[b.id][0]

    def test_chain_with_damaged_base_fails_verification(self, memory_store):
        base = memory_store.save_full(snapshot_at(0))
        nxt = snapshot_at(0).copy()
        nxt.step = 1
        leaf = memory_store.save_delta(nxt, base.id)
        data = bytearray(memory_store.backend.read(base.object_name))
        data[-1] ^= 0x01
        memory_store.backend.write(base.object_name, bytes(data))
        ok, _ = memory_store.verify(leaf.id)
        assert not ok


class TestRetention:
    def _populate(self, store, steps):
        for step in steps:
            store.save_full(snapshot_at(step))

    def test_keep_last(self, memory_store):
        self._populate(memory_store, range(1, 8))
        deleted = memory_store.gc(RetentionPolicy(keep_last=3))
        assert len(deleted) == 4
        remaining = sorted(r.step for r in memory_store.records())
        assert remaining == [5, 6, 7]

    def test_keep_every(self, memory_store):
        self._populate(memory_store, range(1, 11))
        memory_store.gc(RetentionPolicy(keep_last=1, keep_every=5))
        remaining = sorted(r.step for r in memory_store.records())
        assert remaining == [5, 10]

    def test_no_policy_keeps_everything(self, memory_store):
        self._populate(memory_store, range(1, 5))
        assert memory_store.gc(RetentionPolicy()) == []
        assert len(memory_store.records()) == 4

    def test_gc_preserves_delta_bases(self, memory_store):
        base_snapshot = snapshot_at(1)
        base = memory_store.save_full(base_snapshot)
        nxt = base_snapshot.copy()
        nxt.step = 9
        memory_store.save_delta(nxt, base.id)
        memory_store.gc(RetentionPolicy(keep_last=1))
        remaining = {r.id for r in memory_store.records()}
        assert base.id in remaining  # pinned by the surviving delta

    def test_gc_deletes_objects(self, memory_store):
        self._populate(memory_store, range(1, 5))
        memory_store.gc(RetentionPolicy(keep_last=1))
        assert len(memory_store.backend.list("ckpt-")) == 1

    def test_gc_after_reopen(self, local_backend):
        store = CheckpointStore(local_backend)
        for step in range(1, 6):
            store.save_full(snapshot_at(step))
        reopened = CheckpointStore(local_backend)
        reopened.gc(RetentionPolicy(keep_last=2))
        assert len(CheckpointStore(local_backend).records()) == 2

    def test_retention_validation(self):
        with pytest.raises(ConfigError):
            RetentionPolicy(keep_last=0)
        with pytest.raises(ConfigError):
            RetentionPolicy(keep_every=0)
