"""Contract tests for storage backends plus decorator-specific behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigError, StorageError
from repro.storage.backend import validate_name
from repro.storage.flaky import FlakyBackend
from repro.storage.local import LocalDirectoryBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.simulated import SimulatedRemoteBackend, TransferCostModel


@pytest.fixture(params=["memory", "local", "simulated", "flaky"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryBackend()
    if request.param == "local":
        return LocalDirectoryBackend(tmp_path / "objs")
    if request.param == "simulated":
        return SimulatedRemoteBackend(TransferCostModel(1e9))
    return FlakyBackend(InMemoryBackend())


class TestBackendContract:
    def test_write_read_roundtrip(self, backend):
        backend.write("obj-1", b"payload")
        assert backend.read("obj-1") == b"payload"

    def test_overwrite_replaces(self, backend):
        backend.write("obj", b"old")
        backend.write("obj", b"new")
        assert backend.read("obj") == b"new"

    def test_exists(self, backend):
        assert not backend.exists("missing")
        backend.write("present", b"x")
        assert backend.exists("present")

    def test_read_missing_raises(self, backend):
        with pytest.raises(StorageError):
            backend.read("missing")

    def test_size_missing_raises(self, backend):
        with pytest.raises(StorageError):
            backend.size("missing")

    def test_delete_idempotent(self, backend):
        backend.write("gone", b"x")
        backend.delete("gone")
        backend.delete("gone")
        assert not backend.exists("gone")

    def test_list_prefix_sorted(self, backend):
        for name in ("b-2", "a-1", "b-1"):
            backend.write(name, b"x")
        assert backend.list() == ["a-1", "b-1", "b-2"]
        assert backend.list("b-") == ["b-1", "b-2"]

    def test_size(self, backend):
        backend.write("sized", b"12345")
        assert backend.size("sized") == 5

    def test_empty_object(self, backend):
        backend.write("empty", b"")
        assert backend.read("empty") == b""

    def test_large_object(self, backend):
        data = bytes(np.random.default_rng(0).integers(0, 256, 1 << 20).astype(np.uint8))
        backend.write("big", data)
        assert backend.read("big") == data

    @pytest.mark.parametrize("bad", ["../escape", "a/b", "", ".hidden", "a..b"])
    def test_name_validation(self, backend, bad):
        with pytest.raises(StorageError):
            backend.write(bad, b"x")


class TestNameValidation:
    def test_valid_names(self):
        for name in ("MANIFEST.json", "ckpt-000001.qckpt", "a_b-c.d"):
            assert validate_name(name) == name

    def test_non_string(self):
        with pytest.raises(StorageError):
            validate_name(123)


class TestLocalBackend:
    def test_no_tmp_files_left_behind(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path / "s")
        for i in range(5):
            backend.write(f"obj-{i}", b"data")
        leftovers = [p for p in (tmp_path / "s").iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_fsync_disabled_still_works(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path / "s", fsync=False)
        backend.write("x", b"1")
        assert backend.read("x") == b"1"

    def test_hidden_files_excluded_from_list(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path / "s")
        backend.write("visible", b"x")
        (tmp_path / "s" / ".sneaky").write_bytes(b"y")
        assert backend.list() == ["visible"]

    def test_root_created(self, tmp_path):
        LocalDirectoryBackend(tmp_path / "deep" / "nested")
        assert (tmp_path / "deep" / "nested").is_dir()

    def test_stat_based_size(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path / "s")
        backend.write("f", b"abc")
        assert backend.size("f") == 3


class TestInMemoryAccounting:
    def test_counters(self):
        backend = InMemoryBackend()
        backend.write("a", b"1234")
        backend.write("b", b"56")
        backend.read("a")
        assert backend.bytes_written == 6
        assert backend.bytes_read == 4
        assert backend.write_count == 2
        assert backend.read_count == 1

    def test_reset_counters(self):
        backend = InMemoryBackend()
        backend.write("a", b"1234")
        backend.reset_counters()
        assert backend.bytes_written == 0

    def test_rejects_non_bytes(self):
        with pytest.raises(StorageError):
            InMemoryBackend().write("a", "text")


class TestSimulatedRemote:
    def test_transfer_time_model(self):
        model = TransferCostModel(bandwidth_bytes_per_s=100.0, rtt_seconds=1.0)
        assert model.seconds_for(200) == pytest.approx(3.0)

    def test_accounting_accumulates(self):
        backend = SimulatedRemoteBackend(
            TransferCostModel(bandwidth_bytes_per_s=1000.0, rtt_seconds=0.5)
        )
        backend.write("a", b"x" * 500)
        assert backend.last_transfer_seconds == pytest.approx(1.0)
        backend.read("a")
        assert backend.simulated_seconds == pytest.approx(2.0)

    def test_reset_accounting(self):
        backend = SimulatedRemoteBackend(TransferCostModel(1e3))
        backend.write("a", b"xy")
        backend.reset_accounting()
        assert backend.simulated_seconds == 0.0

    def test_model_validation(self):
        with pytest.raises(ConfigError):
            TransferCostModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ConfigError):
            TransferCostModel(1e6, rtt_seconds=-1)

    def test_presets_ordered_by_speed(self):
        nbytes = 10 * 1024 * 1024
        ssd = TransferCostModel.local_ssd().seconds_for(nbytes)
        dc = TransferCostModel.datacenter_object_store().seconds_for(nbytes)
        wan = TransferCostModel.wan_object_store().seconds_for(nbytes)
        assert ssd < dc < wan


class TestFlakyBackend:
    def test_truncate_mode(self):
        backend = FlakyBackend(InMemoryBackend())
        backend.arm("truncate", truncate_fraction=0.25)
        backend.write("torn", b"x" * 100)
        assert len(backend.read("torn")) == 25
        assert backend.faults_injected == 1

    def test_bitflip_mode(self):
        backend = FlakyBackend(InMemoryBackend())
        backend.arm("bitflip", flip_offset=3)
        backend.write("rot", b"\x00" * 8)
        assert backend.read("rot")[3] == 0xFF

    def test_error_mode_nothing_persisted(self):
        backend = FlakyBackend(InMemoryBackend())
        backend.arm("error")
        with pytest.raises(StorageError, match="injected"):
            backend.write("lost", b"data")
        assert not backend.exists("lost")

    def test_fault_fires_on_nth_write(self):
        backend = FlakyBackend(InMemoryBackend())
        backend.arm("error", fail_on_write=3)
        backend.write("w1", b"a")
        backend.write("w2", b"b")
        with pytest.raises(StorageError):
            backend.write("w3", b"c")
        backend.write("w4", b"d")  # disarmed after firing

    def test_disarm(self):
        backend = FlakyBackend(InMemoryBackend())
        backend.arm("error")
        backend.disarm()
        backend.write("fine", b"x")

    def test_arm_validation(self):
        backend = FlakyBackend(InMemoryBackend())
        with pytest.raises(ConfigError):
            backend.arm("explode")
        with pytest.raises(ConfigError):
            backend.arm("error", fail_on_write=0)
        with pytest.raises(ConfigError):
            backend.arm("truncate", truncate_fraction=1.0)
