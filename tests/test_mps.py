"""Tests for the MPS (tensor-train) compressor and its QCKPT transform."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.codecs import get_transform
from repro.core.serialize import pack_payload, unpack_payload
from repro.errors import CircuitError, ConfigError, SerializationError
from repro.mps import (
    MatrixProductState,
    MPSTransform,
    entanglement_entropy,
    entropy_profile,
    mps_nbytes,
    required_bond_dimension,
    schmidt_rank,
    schmidt_values,
    truncation_fidelity_lower_bound,
)
from repro.quantum.haar import haar_state
from repro.quantum.statevector import apply_circuit, fidelity, zero_state
from repro.quantum.templates import hardware_efficient

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def ghz_state(n: int) -> np.ndarray:
    state = np.zeros(2**n, dtype=np.complex128)
    state[0] = state[-1] = 1.0 / math.sqrt(2.0)
    return state


def shallow_state(n: int, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    circuit = hardware_efficient(n, 1)
    return apply_circuit(circuit, 0.1 * rng.standard_normal(circuit.n_params))


# ---------------------------------------------------------------------------
# Decomposition / contraction
# ---------------------------------------------------------------------------


class TestFromStatevector:
    def test_exact_roundtrip_haar(self, rng):
        psi = haar_state(6, rng)
        mps = MatrixProductState.from_statevector(psi)
        assert fidelity(psi, mps.to_statevector()) == pytest.approx(1.0, abs=1e-12)

    def test_exact_roundtrip_preserves_amplitudes(self, rng):
        psi = haar_state(4, rng)
        back = MatrixProductState.from_statevector(psi).to_statevector()
        np.testing.assert_allclose(back, psi, atol=1e-12)

    def test_product_state_is_bond_one(self):
        mps = MatrixProductState.from_statevector(zero_state(7))
        assert mps.bond_dims == (1,) * 6
        assert mps.max_bond == 1

    def test_ghz_is_bond_two(self):
        mps = MatrixProductState.from_statevector(ghz_state(6))
        assert mps.bond_dims == (2,) * 5

    def test_haar_state_saturates_bonds(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(6, rng))
        assert mps.bond_dims == (2, 4, 8, 4, 2)

    def test_max_bond_caps_every_cut(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(7, rng), max_bond=3)
        assert all(d <= 3 for d in mps.bond_dims)

    def test_single_qubit(self):
        amplitudes = np.array([0.6, 0.8j], dtype=np.complex128)
        mps = MatrixProductState.from_statevector(amplitudes)
        assert mps.n_qubits == 1
        assert mps.bond_dims == ()
        np.testing.assert_allclose(mps.to_statevector(), amplitudes)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(CircuitError):
            MatrixProductState.from_statevector(np.zeros(6, dtype=np.complex128))

    def test_rejects_matrix_input(self):
        with pytest.raises(CircuitError):
            MatrixProductState.from_statevector(
                np.zeros((4, 4), dtype=np.complex128)
            )

    def test_rejects_bad_max_bond(self, rng):
        with pytest.raises(ConfigError):
            MatrixProductState.from_statevector(haar_state(3, rng), max_bond=0)

    def test_rejects_negative_tol(self, rng):
        with pytest.raises(ConfigError):
            MatrixProductState.from_statevector(haar_state(3, rng), tol=-0.1)

    def test_tol_truncates_small_schmidt_weight(self):
        # A nearly-product two-qubit state: tol above the small Schmidt
        # coefficient collapses the bond to 1.
        state = np.array([1.0, 0.0, 0.0, 1e-4], dtype=np.complex128)
        state /= np.linalg.norm(state)
        loose = MatrixProductState.from_statevector(state, tol=1e-3)
        tight = MatrixProductState.from_statevector(state, tol=1e-6)
        assert loose.bond_dims == (1,)
        assert tight.bond_dims == (2,)


class TestConstructorsValidation:
    def test_product_state_builder(self):
        plus = np.array([1.0, 1.0]) / math.sqrt(2.0)
        mps = MatrixProductState.product_state([plus, plus, plus])
        expected = np.full(8, (1 / math.sqrt(2.0)) ** 3, dtype=np.complex128)
        np.testing.assert_allclose(mps.to_statevector(), expected)

    def test_zero_state_builder(self):
        np.testing.assert_allclose(
            MatrixProductState.zero_state(4).to_statevector(), zero_state(4)
        )

    def test_zero_state_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            MatrixProductState.zero_state(0)

    def test_rejects_empty_core_list(self):
        with pytest.raises(ConfigError):
            MatrixProductState([])

    def test_rejects_bond_mismatch(self):
        a = np.zeros((1, 2, 3), dtype=np.complex128)
        b = np.zeros((2, 2, 1), dtype=np.complex128)
        with pytest.raises(ConfigError):
            MatrixProductState([a, b])

    def test_rejects_open_right_boundary(self):
        a = np.zeros((1, 2, 2), dtype=np.complex128)
        with pytest.raises(ConfigError):
            MatrixProductState([a])

    def test_rejects_wrong_physical_dimension(self):
        a = np.zeros((1, 3, 1), dtype=np.complex128)
        with pytest.raises(ConfigError):
            MatrixProductState([a])


# ---------------------------------------------------------------------------
# Overlap / norm / fidelity
# ---------------------------------------------------------------------------


class TestOverlap:
    def test_overlap_matches_vdot(self, rng):
        a = haar_state(5, rng)
        b = haar_state(5, rng)
        mps_a = MatrixProductState.from_statevector(a)
        mps_b = MatrixProductState.from_statevector(b)
        assert mps_a.overlap(mps_b) == pytest.approx(np.vdot(a, b), abs=1e-10)

    def test_norm_of_normalized_state(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(5, rng))
        assert mps.norm() == pytest.approx(1.0, abs=1e-12)

    def test_normalize_after_truncation(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(6, rng), max_bond=2)
        assert mps.norm() < 1.0  # truncation discards weight
        assert mps.normalize().norm() == pytest.approx(1.0, abs=1e-12)

    def test_fidelity_is_normalized(self, rng):
        psi = haar_state(5, rng)
        exact = MatrixProductState.from_statevector(psi)
        truncated = MatrixProductState.from_statevector(psi, max_bond=2)
        # fidelity() normalizes both sides, so it matches the dense fidelity
        # of the renormalized truncated state.
        dense = truncated.normalize().to_statevector()
        assert exact.fidelity(truncated) == pytest.approx(
            fidelity(psi, dense), abs=1e-10
        )

    def test_overlap_width_mismatch(self, rng):
        a = MatrixProductState.from_statevector(haar_state(3, rng))
        b = MatrixProductState.from_statevector(haar_state(4, rng))
        with pytest.raises(ConfigError):
            a.overlap(b)

    def test_normalize_zero_mps_raises(self):
        zero = MatrixProductState(
            [np.zeros((1, 2, 1), dtype=np.complex128)] * 2
        )
        with pytest.raises(CircuitError):
            zero.normalize()


# ---------------------------------------------------------------------------
# Recompression
# ---------------------------------------------------------------------------


class TestTruncate:
    def test_truncate_respects_cap(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(7, rng))
        truncated = mps.truncate(max_bond=3)
        assert all(d <= 3 for d in truncated.bond_dims)

    def test_truncate_exact_when_uncapped(self, rng):
        psi = haar_state(6, rng)
        mps = MatrixProductState.from_statevector(psi)
        again = mps.truncate()
        assert fidelity(psi, again.to_statevector()) == pytest.approx(
            1.0, abs=1e-12
        )

    def test_fidelity_monotone_in_bond(self, rng):
        psi = haar_state(7, rng)
        mps = MatrixProductState.from_statevector(psi)
        fidelities = []
        for chi in (1, 2, 4, 8):
            dense = mps.truncate(max_bond=chi).normalize().to_statevector()
            fidelities.append(fidelity(psi, dense))
        assert fidelities == sorted(fidelities)
        assert fidelities[-1] == pytest.approx(1.0, abs=1e-10)

    def test_truncate_shallow_state_is_cheap_and_faithful(self):
        psi = shallow_state(9)
        truncated = MatrixProductState.from_statevector(psi, max_bond=4)
        dense = truncated.normalize().to_statevector()
        assert fidelity(psi, dense) > 0.999
        assert truncated.nbytes() < psi.nbytes / 2

    def test_canonicalize_preserves_state(self, rng):
        psi = haar_state(6, rng)
        mps = MatrixProductState.from_statevector(psi)
        np.testing.assert_allclose(
            mps.canonicalize().to_statevector(), psi, atol=1e-10
        )

    def test_truncate_validates_arguments(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(3, rng))
        with pytest.raises(ConfigError):
            mps.truncate(max_bond=0)
        with pytest.raises(ConfigError):
            mps.truncate(tol=-1.0)


# ---------------------------------------------------------------------------
# Schmidt diagnostics (MPS and dense)
# ---------------------------------------------------------------------------


class TestSchmidt:
    def test_mps_schmidt_matches_dense_svd(self, rng):
        psi = haar_state(6, rng)
        mps = MatrixProductState.from_statevector(psi)
        for cut in (1, 3, 5):
            dense = np.linalg.svd(
                psi.reshape(2**cut, -1), compute_uv=False
            )
            mine = mps.schmidt_values(cut)
            np.testing.assert_allclose(mine, dense[: mine.size], atol=1e-10)

    def test_dense_schmidt_values_sum_to_norm(self, rng):
        psi = haar_state(5, rng)
        values = schmidt_values(psi, 2)
        assert float((values**2).sum()) == pytest.approx(1.0, abs=1e-12)

    def test_entropy_product_state_is_zero(self):
        assert entanglement_entropy(zero_state(5), 2) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_entropy_ghz_is_one_bit(self):
        psi = ghz_state(6)
        assert entanglement_entropy(psi, 3) == pytest.approx(1.0, abs=1e-12)
        mps = MatrixProductState.from_statevector(psi)
        assert mps.entanglement_entropy(3) == pytest.approx(1.0, abs=1e-10)

    def test_entropy_profile_length(self, rng):
        psi = haar_state(5, rng)
        assert len(entropy_profile(psi)) == 4

    def test_schmidt_rank_ghz(self):
        assert schmidt_rank(ghz_state(5), 2) == 2

    def test_required_bond_dimension_product(self):
        assert required_bond_dimension(zero_state(6)) == 1

    def test_required_bond_dimension_haar_is_large(self, rng):
        psi = haar_state(6, rng)
        assert required_bond_dimension(psi, fidelity_target=0.999) > 4

    def test_required_bond_validates_target(self, rng):
        with pytest.raises(ConfigError):
            required_bond_dimension(haar_state(3, rng), fidelity_target=0.0)

    def test_cut_bounds(self, rng):
        psi = haar_state(4, rng)
        mps = MatrixProductState.from_statevector(psi)
        with pytest.raises(ConfigError):
            schmidt_values(psi, 0)
        with pytest.raises(ConfigError):
            schmidt_values(psi, 4)
        with pytest.raises(ConfigError):
            mps.schmidt_values(0)

    def test_truncation_bound(self):
        assert truncation_fidelity_lower_bound([0.01, 0.02]) == pytest.approx(0.97)
        assert truncation_fidelity_lower_bound([2.0]) == 0.0
        with pytest.raises(ConfigError):
            truncation_fidelity_lower_bound([-0.1])


# ---------------------------------------------------------------------------
# Flat (de)serialization and the QCKPT transform
# ---------------------------------------------------------------------------


class TestFlatSerialization:
    def test_flat_roundtrip(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(5, rng))
        flat, shapes = mps.to_flat()
        back = MatrixProductState.from_flat(flat, shapes)
        np.testing.assert_allclose(
            back.to_statevector(), mps.to_statevector(), atol=1e-12
        )

    def test_from_flat_rejects_short_buffer(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(4, rng))
        flat, shapes = mps.to_flat()
        with pytest.raises(ConfigError):
            MatrixProductState.from_flat(flat[:-1], shapes)

    def test_from_flat_rejects_trailing_values(self, rng):
        mps = MatrixProductState.from_statevector(haar_state(4, rng))
        flat, shapes = mps.to_flat()
        with pytest.raises(ConfigError):
            MatrixProductState.from_flat(
                np.concatenate([flat, np.zeros(1, dtype=np.complex128)]), shapes
            )

    def test_from_flat_rejects_bad_shape_rank(self):
        with pytest.raises(ConfigError):
            MatrixProductState.from_flat(
                np.zeros(4, dtype=np.complex128), [[2, 2]]
            )


class TestMPSTransform:
    def test_registered_names(self):
        for name in ("mps-8", "mps-16", "mps-32", "mps-64", "mps-exact"):
            assert get_transform(name).lossy

    def test_exact_transform_high_fidelity(self, rng):
        psi = haar_state(6, rng)
        transform = get_transform("mps-exact")
        encoded, meta = transform.encode(psi)
        decoded = transform.decode(encoded, meta)
        assert fidelity(psi, decoded) == pytest.approx(1.0, abs=1e-10)

    def test_capped_transform_compresses_shallow_state(self):
        psi = shallow_state(10)
        transform = MPSTransform(max_bond=8)
        encoded, meta = transform.encode(psi)
        decoded = transform.decode(encoded, meta)
        assert encoded.nbytes < psi.nbytes / 2
        assert fidelity(psi, decoded) > 0.999

    def test_decoded_state_is_normalized(self, rng):
        transform = MPSTransform(max_bond=2)
        encoded, meta = transform.encode(haar_state(6, rng))
        decoded = transform.decode(encoded, meta)
        assert np.linalg.norm(decoded) == pytest.approx(1.0, abs=1e-12)

    def test_meta_is_json_compatible(self, rng):
        import json

        _, meta = MPSTransform(max_bond=4).encode(haar_state(5, rng))
        assert json.loads(json.dumps(meta)) == meta

    def test_qckpt_roundtrip_through_container(self, rng):
        psi = shallow_state(8)
        data = pack_payload(
            {"kind": "test"}, {"sv": psi}, transforms={"sv": "mps-16"}
        )
        _, tensors = unpack_payload(data)
        assert fidelity(psi, tensors["sv"]) > 0.9999

    def test_rejects_wrong_dtype(self):
        transform = MPSTransform(max_bond=4)
        with pytest.raises(SerializationError):
            transform.encode(np.zeros(8, dtype=np.float64))

    def test_rejects_non_power_of_two(self):
        transform = MPSTransform(max_bond=4)
        with pytest.raises(SerializationError):
            transform.encode(np.zeros(6, dtype=np.complex128))

    def test_decode_rejects_malformed_meta(self, rng):
        transform = MPSTransform(max_bond=4)
        encoded, _ = transform.encode(haar_state(4, rng))
        with pytest.raises(SerializationError):
            transform.decode(encoded, {"shapes": [[1, 2, 1]]})

    def test_decode_rejects_wrong_amplitude_count(self, rng):
        transform = MPSTransform(max_bond=4)
        encoded, meta = transform.encode(haar_state(4, rng))
        bad = dict(meta, n_amplitudes=32)
        with pytest.raises(SerializationError):
            transform.decode(encoded, bad)


# ---------------------------------------------------------------------------
# Size model
# ---------------------------------------------------------------------------


class TestSizeModel:
    def test_mps_nbytes_matches_actual_haar(self, rng):
        psi = haar_state(8, rng)
        mps = MatrixProductState.from_statevector(psi, max_bond=4)
        assert mps.nbytes() == mps_nbytes(8, 4)

    def test_mps_nbytes_validates(self):
        with pytest.raises(ConfigError):
            mps_nbytes(0, 4)
        with pytest.raises(ConfigError):
            mps_nbytes(4, 0)

    def test_linear_growth_at_fixed_bond(self):
        # O(n * chi^2): once bonds saturate, each extra site costs exactly
        # chi * 2 * chi complex128 values.
        per_site = 8 * 2 * 8 * 16
        assert mps_nbytes(64, 8) - mps_nbytes(32, 8) == 32 * per_site


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------


@st.composite
def _low_entanglement_states(draw):
    """Random few-qubit states from shallow circuits (compressible family)."""
    n = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    circuit = hardware_efficient(n, 1)
    return apply_circuit(circuit, 0.2 * rng.standard_normal(circuit.n_params))


@_SETTINGS
@given(state=_low_entanglement_states())
def test_property_exact_decomposition_roundtrips(state):
    mps = MatrixProductState.from_statevector(state)
    assert fidelity(state, mps.to_statevector()) > 1.0 - 1e-10


@_SETTINGS
@given(state=_low_entanglement_states(), chi=st.integers(min_value=1, max_value=8))
def test_property_truncation_fidelity_bounded_by_discarded_weight(state, chi):
    truncated = MatrixProductState.from_statevector(state, max_bond=chi)
    dense = truncated.normalize().to_statevector()
    # Fidelity can never exceed 1 and the truncated state stays a valid state.
    fid = fidelity(state, dense)
    assert 0.0 <= fid <= 1.0 + 1e-12
    assert np.linalg.norm(dense) == pytest.approx(1.0, abs=1e-12)


@_SETTINGS
@given(state=_low_entanglement_states())
def test_property_entropy_nonnegative_and_bounded(state):
    mps = MatrixProductState.from_statevector(state)
    for cut in range(1, mps.n_qubits):
        entropy = mps.entanglement_entropy(cut)
        bound = min(cut, mps.n_qubits - cut)
        assert -1e-10 <= entropy <= bound + 1e-10


@_SETTINGS
@given(state=_low_entanglement_states())
def test_property_flat_roundtrip_identity(state):
    mps = MatrixProductState.from_statevector(state)
    flat, shapes = mps.to_flat()
    back = MatrixProductState.from_flat(flat, shapes)
    assert abs(mps.overlap(back) - mps.overlap(mps)) < 1e-10
