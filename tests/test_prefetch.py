"""Delta-chain read-ahead: correctness, faults, window bounds, cancel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.restore import QckptSource, RestoreExecutor
from repro.core.serialize import pack_snapshot
from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointStore
from repro.errors import IntegrityError, ReproError, StorageError
from repro.service.chunkstore import ChunkStore
from repro.storage.flaky import FlakyBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.tiered import TieredBackend


def _snapshot(step: int, elems: int = 2048) -> TrainingSnapshot:
    rng = np.random.default_rng(7000 + step)
    return TrainingSnapshot(
        step=step,
        params=rng.standard_normal(64),
        optimizer_state={"name": "adam", "t": step},
        rng_state={"bit_generator": "PCG64", "state": {"state": step}},
        model_fingerprint="prefetch-test",
        loss_history=rng.standard_normal(step + 1),
        statevector=rng.standard_normal(elems) + 1j * rng.standard_normal(elems),
    )


def _build_chain(backend, links: int = 5):
    """A full checkpoint followed by ``links - 1`` XOR deltas."""
    store = CheckpointStore(backend)
    snapshots = [_snapshot(step) for step in range(1, links + 1)]
    record = store.save_full(snapshots[0])
    for snapshot in snapshots[1:]:
        record = store.save_delta(snapshot, base_id=record.id)
    return store, record.id, snapshots[-1]


class TestChainReadahead:
    def test_plans_carry_chain_identity(self):
        backend = InMemoryBackend()
        store, tip, _ = _build_chain(backend, links=4)
        plans = store.restore_plan(tip)
        assert len(plans) == 4
        assert plans[0].base_id is None  # the full base
        for previous, plan in zip(plans, plans[1:]):
            assert plan.base_id == previous.checkpoint_id

    @pytest.mark.parametrize("readahead", [0, 1, 2, 8])
    def test_full_chain_restore_bitwise_any_readahead(self, readahead):
        backend = InMemoryBackend()
        _, tip, expected = _build_chain(backend, links=5)
        store = CheckpointStore(backend, readahead_links=readahead)
        assert store.load(tip) == expected

    @pytest.mark.parametrize("readahead", [0, 2])
    def test_partial_chain_restore_bitwise(self, readahead):
        backend = InMemoryBackend()
        _, tip, expected = _build_chain(backend, links=5)
        store = CheckpointStore(backend, readahead_links=readahead)
        _, tensors = store.load_partial(tip, ["params", "loss_history"])
        np.testing.assert_array_equal(tensors["params"], expected.params)
        np.testing.assert_array_equal(
            tensors["loss_history"], expected.loss_history
        )

    def test_readahead_matches_sequential_exactly(self):
        backend = InMemoryBackend()
        _, tip, _ = _build_chain(backend, links=6)
        sequential = CheckpointStore(backend, readahead_links=0)
        pipelined = CheckpointStore(backend, readahead_links=3)
        meta_a, tensors_a = sequential.load_tensors(tip)
        meta_b, tensors_b = pipelined.load_tensors(tip)
        assert meta_a == meta_b
        assert set(tensors_a) == set(tensors_b)
        for name in tensors_a:
            np.testing.assert_array_equal(tensors_a[name], tensors_b[name])


class TestPrefetchFaults:
    def _planned_source(self):
        """A QCKPT object behind a flaky backend, planned for ranged reads."""
        inner = InMemoryBackend()
        snapshot = _snapshot(9)
        inner.write("ckpt.qckpt", pack_snapshot(snapshot))
        flaky = FlakyBackend(inner)
        source = QckptSource(flaky, "ckpt.qckpt")
        plan = source.plan(
            ["params", "statevector", "loss_history"], prefetch=False
        )
        return flaky, source, plan, snapshot

    def test_read_error_mid_prefetch_falls_back_bitwise(self):
        flaky, source, plan, snapshot = self._planned_source()
        executor = RestoreExecutor(max_workers=2)
        # Arm after planning: the very next read is a prefetch block fetch.
        flaky.arm_read("error", fail_on_read=1)
        handle = executor.prefetch(source, plan)
        assert handle.wait(timeout=30.0)
        assert flaky.faults_injected == 1, "fault must hit the prefetch"
        meta, tensors = executor.run(source, plan, prefetched=handle)
        np.testing.assert_array_equal(tensors["params"], snapshot.params)
        np.testing.assert_array_equal(
            tensors["statevector"], snapshot.statevector
        )
        executor.close()

    def test_lying_prefetch_read_caught_by_verification(self):
        flaky, source, plan, snapshot = self._planned_source()
        executor = RestoreExecutor(max_workers=2)
        flaky.arm_read("bitflip", fail_on_read=1)
        handle = executor.prefetch(source, plan)
        assert handle.wait(timeout=30.0)
        with pytest.raises(IntegrityError):
            executor.run(source, plan, prefetched=handle)
        executor.close()

    @pytest.mark.parametrize("fail_on_read", [1, 3, 5, 8, 12])
    def test_chain_restore_with_injected_fault_never_corrupts(
        self, fail_on_read
    ):
        """Bitwise result or a clean error — wherever the fault lands.

        The read ordinal sweeps across planning reads (not retried: the
        error propagates) and prefetch reads (retried synchronously); in no
        case may the restore return wrong tensors.
        """
        inner = InMemoryBackend()
        _, tip, expected = _build_chain(inner, links=5)
        flaky = FlakyBackend(inner)
        store = CheckpointStore(flaky, readahead_links=2)
        flaky.arm_read("error", fail_on_read=fail_on_read)
        try:
            restored = store.load(tip)
        except (StorageError, IntegrityError):
            return  # clean failure is acceptable; corruption is not
        assert restored == expected

    @pytest.mark.parametrize("fail_on_read", [2, 6, 10])
    def test_chain_restore_with_bitflip_never_corrupts(self, fail_on_read):
        inner = InMemoryBackend()
        _, tip, expected = _build_chain(inner, links=5)
        flaky = FlakyBackend(inner)
        store = CheckpointStore(flaky, readahead_links=2)
        flaky.arm_read("bitflip", fail_on_read=fail_on_read)
        try:
            restored = store.load(tip)
        except ReproError:
            return
        assert restored == expected


class TestWindowAndCancel:
    def test_window_bound_skips_and_restore_still_bitwise(self):
        inner = InMemoryBackend()
        snapshot = _snapshot(4, elems=4096)
        inner.write("ckpt.qckpt", pack_snapshot(snapshot))
        source = QckptSource(inner, "ckpt.qckpt")
        plan = source.plan(
            ["params", "statevector", "loss_history"], prefetch=False
        )
        executor = RestoreExecutor(max_workers=2, prefetch_window_bytes=1024)
        handle = executor.prefetch(source, plan)
        assert handle.skipped_bytes > 0, "window must bound the read-ahead"
        assert handle.enqueued_bytes <= 1024
        meta, tensors = executor.run(source, plan, prefetched=handle)
        np.testing.assert_array_equal(
            tensors["statevector"], snapshot.statevector
        )
        executor.close()

    def test_zero_window_prefetches_nothing(self):
        inner = InMemoryBackend()
        snapshot = _snapshot(4)
        inner.write("ckpt.qckpt", pack_snapshot(snapshot))
        source = QckptSource(inner, "ckpt.qckpt")
        plan = source.plan(["params"], prefetch=False)
        executor = RestoreExecutor(max_workers=2, prefetch_window_bytes=0)
        handle = executor.prefetch(source, plan)
        assert handle.n_enqueued == 0
        _, tensors = executor.run(source, plan, prefetched=handle)
        np.testing.assert_array_equal(tensors["params"], snapshot.params)
        executor.close()

    def test_cancelled_prefetch_falls_back_to_sync(self):
        inner = InMemoryBackend()
        snapshot = _snapshot(4)
        inner.write("ckpt.qckpt", pack_snapshot(snapshot))
        source = QckptSource(inner, "ckpt.qckpt")
        plan = source.plan(
            ["params", "statevector", "loss_history"], prefetch=False
        )
        executor = RestoreExecutor(max_workers=2)
        handle = executor.prefetch(source, plan)
        handle.cancel()
        assert handle.cancelled
        _, tensors = executor.run(source, plan, prefetched=handle)
        np.testing.assert_array_equal(
            tensors["statevector"], snapshot.statevector
        )
        executor.close()


class TestChunkStorePrefetch:
    def test_prefetch_restore_promotes_chunks_tier_warm(self):
        slow = InMemoryBackend()
        warm_tier = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=1 << 22
        )
        writer = ChunkStore(warm_tier, block_bytes=2048)
        snapshot = _snapshot(5)
        writer.save_snapshot("job", snapshot)

        # A second process opens the store cold (fresh fast tier).
        cold_tier = TieredBackend(
            InMemoryBackend(), slow, fast_capacity_bytes=1 << 22
        )
        reader = ChunkStore(cold_tier, block_bytes=2048)
        plan = reader.plan_restore("job")
        chunk_names = {obj.name for obj in plan.objects}
        handle = reader.prefetch_restore("job")
        assert handle.wait(timeout=30.0)
        resident = set(cold_tier.resident_objects())
        assert chunk_names <= resident, "read-ahead must promote the chunks"
        hits_before = cold_tier.stats.fast_hits
        restored = reader.load_snapshot("job")
        assert restored == snapshot
        assert cold_tier.stats.fast_hits > hits_before

    def test_prefetch_restore_missing_job_raises(self):
        store = ChunkStore(InMemoryBackend())
        from repro.errors import CheckpointNotFoundError

        with pytest.raises(CheckpointNotFoundError):
            store.prefetch_restore("ghost")
