"""Unit tests for interval policies and the sync/async writers."""

import threading
import time

import numpy as np
import pytest

from repro.core.policy import (
    AdaptiveOverheadPolicy,
    EveryKSteps,
    FixedTimeInterval,
    YoungDalyPolicy,
    young_daly_interval,
    young_interval,
)
from repro.core.writer import AsyncCheckpointWriter, SyncCheckpointWriter
from repro.errors import CheckpointError, ConfigError
from repro.faults.injector import SimulatedClock


class TestYoungDalyFormulas:
    def test_young_known_value(self):
        # sqrt(2 * 10 * 7200) = 379.47...
        assert young_interval(10, 7200) == pytest.approx(379.473, abs=0.01)

    def test_daly_close_to_young_for_small_delta(self):
        young = young_interval(1, 100000)
        daly = young_daly_interval(1, 100000)
        assert abs(daly - young) / young < 0.01

    def test_daly_caps_at_mtbf_for_huge_cost(self):
        assert young_daly_interval(10000, 100) == 100

    def test_zero_cost_zero_interval(self):
        assert young_daly_interval(0.0, 100) == 0.0

    def test_interval_grows_with_mtbf(self):
        intervals = [young_daly_interval(10, m) for m in (100, 1000, 10000)]
        assert intervals == sorted(intervals)

    def test_interval_grows_with_cost(self):
        intervals = [young_daly_interval(c, 10000) for c in (1, 10, 100)]
        assert intervals == sorted(intervals)

    def test_validation(self):
        with pytest.raises(ConfigError):
            young_interval(-1, 100)
        with pytest.raises(ConfigError):
            young_daly_interval(1, 0)

    def test_daly_interval_is_near_optimal(self):
        """The Daly interval should (approximately) minimize the analytic
        makespan among a dense sweep of alternatives."""
        from repro.faults.daly import expected_makespan

        work, cost, restart, mtbf = 36000.0, 30.0, 60.0, 3600.0
        star = young_daly_interval(cost, mtbf)
        best = expected_makespan(work, star, cost, restart, mtbf)
        for interval in np.linspace(60, 7200, 120):
            assert best <= expected_makespan(
                work, float(interval), cost, restart, mtbf
            ) * 1.01


class TestPolicies:
    def test_every_k_steps(self):
        policy = EveryKSteps(3)
        fires = [s for s in range(1, 10) if policy.should_checkpoint(s, 0.0)]
        assert fires == [3, 6, 9]

    def test_every_k_validation(self):
        with pytest.raises(ConfigError):
            EveryKSteps(0)

    def test_fixed_time_interval(self):
        clock = SimulatedClock()
        policy = FixedTimeInterval(10.0, clock=clock)
        assert not policy.should_checkpoint(1, clock.now)
        clock.advance(10.0)
        assert policy.should_checkpoint(2, clock.now)
        policy.record_checkpoint(clock.now, 1.0)
        assert not policy.should_checkpoint(3, clock.now)

    def test_fixed_time_validation(self):
        with pytest.raises(ConfigError):
            FixedTimeInterval(0.0)

    def test_young_daly_policy_fires_at_interval(self):
        clock = SimulatedClock()
        policy = YoungDalyPolicy(
            mtbf_seconds=7200, initial_cost_estimate=10.0, clock=clock
        )
        target = policy.interval_seconds
        clock.advance(target - 1)
        assert not policy.should_checkpoint(1, clock.now)
        clock.advance(2)
        assert policy.should_checkpoint(2, clock.now)

    def test_young_daly_policy_adapts_to_observed_cost(self):
        clock = SimulatedClock()
        policy = YoungDalyPolicy(
            mtbf_seconds=7200, initial_cost_estimate=1.0, clock=clock
        )
        before = policy.interval_seconds
        for _ in range(20):
            policy.record_checkpoint(clock.now, 50.0)
        assert policy.interval_seconds > before
        assert policy.mean_cost > 1.0

    def test_young_daly_interval_at_least_cost(self):
        policy = YoungDalyPolicy(
            mtbf_seconds=10.0, initial_cost_estimate=100.0,
            clock=SimulatedClock(),
        )
        assert policy.interval_seconds >= policy.mean_cost

    def test_adaptive_overhead_math(self):
        clock = SimulatedClock()
        policy = AdaptiveOverheadPolicy(
            target_overhead=0.05, initial_cost_estimate=0.2, clock=clock
        )
        assert policy.interval_seconds == pytest.approx(4.0)
        clock.advance(3.9)
        assert not policy.should_checkpoint(1, clock.now)
        clock.advance(0.2)
        assert policy.should_checkpoint(2, clock.now)

    def test_adaptive_overhead_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveOverheadPolicy(target_overhead=0.0)
        with pytest.raises(ConfigError):
            AdaptiveOverheadPolicy(initial_cost_estimate=0.0)

    def test_policies_observe_step_is_optional_noop(self):
        EveryKSteps(2).observe_step(1, 0.5)  # must not raise


class TestSyncWriter:
    def test_executes_inline(self):
        writer = SyncCheckpointWriter()
        ran = []
        writer.submit(lambda: ran.append(1))
        assert ran == [1]
        assert writer.stats.tasks == 1
        assert writer.pending == 0

    def test_drain_and_close_are_noops(self):
        writer = SyncCheckpointWriter()
        writer.drain()
        writer.close()

    def test_blocked_equals_total_time(self):
        writer = SyncCheckpointWriter()
        writer.submit(lambda: time.sleep(0.01))
        assert writer.stats.blocked_seconds == pytest.approx(
            writer.stats.seconds, rel=0.5
        )


class TestAsyncWriter:
    def test_tasks_execute_in_order(self):
        order = []
        with AsyncCheckpointWriter() as writer:
            for i in range(5):
                writer.submit(lambda i=i: order.append(i))
            writer.drain()
        assert order == [0, 1, 2, 3, 4]

    def test_submit_does_not_block_on_slow_task(self):
        gate = threading.Event()
        with AsyncCheckpointWriter(max_pending=2) as writer:
            writer.submit(gate.wait)
            started = time.perf_counter()
            writer.submit(lambda: None)
            elapsed = time.perf_counter() - started
            assert elapsed < 0.5
            gate.set()
            writer.drain()

    def test_backpressure_when_queue_full(self):
        # max_pending counts the *running* task too: with a bound of 1 and
        # one task wedged on the gate, the next submit must block until the
        # first task completes.  The gate is released in a finally block so a
        # failing assertion can never wedge the writer's cleanup.
        gate = threading.Event()
        try:
            with AsyncCheckpointWriter(max_pending=1, close_timeout=5.0) as writer:
                writer.submit(gate.wait)

                unblocked = []

                def late_submit():
                    writer.submit(lambda: None)
                    unblocked.append(True)

                thread = threading.Thread(target=late_submit)
                thread.start()
                time.sleep(0.05)
                assert not unblocked  # still blocked: one task outstanding
                gate.set()
                thread.join(timeout=5)
                assert unblocked
        finally:
            gate.set()

    def test_close_raises_on_wedged_task(self):
        gate = threading.Event()
        writer = AsyncCheckpointWriter(max_pending=1, close_timeout=0.2)
        writer.submit(gate.wait)
        try:
            with pytest.raises(CheckpointError, match="stuck"):
                writer.close()
        finally:
            gate.set()  # release the daemon worker

    def test_close_timeout_validation(self):
        with pytest.raises(CheckpointError):
            AsyncCheckpointWriter(close_timeout=0.0)

    def test_error_raised_on_next_submit(self):
        writer = AsyncCheckpointWriter()

        def bad():
            raise ValueError("disk full")

        writer.submit(bad)
        writer.drain_or_error = None
        time.sleep(0.05)
        with pytest.raises(CheckpointError, match="disk full"):
            writer.submit(lambda: None)
        writer.close()

    def test_error_raised_on_drain(self):
        writer = AsyncCheckpointWriter()
        writer.submit(lambda: 1 / 0)
        with pytest.raises(CheckpointError):
            writer.drain()
        writer.close()

    def test_error_raised_on_close(self):
        writer = AsyncCheckpointWriter()
        writer.submit(lambda: 1 / 0)
        with pytest.raises(CheckpointError):
            writer.close()

    def test_close_idempotent(self):
        writer = AsyncCheckpointWriter()
        writer.close()
        writer.close()

    def test_submit_after_close_rejected(self):
        writer = AsyncCheckpointWriter()
        writer.close()
        with pytest.raises(CheckpointError, match="closed"):
            writer.submit(lambda: None)

    def test_stats_count_tasks(self):
        with AsyncCheckpointWriter() as writer:
            for _ in range(3):
                writer.submit(lambda: None)
            writer.drain()
            assert writer.stats.tasks == 3

    def test_max_pending_validation(self):
        with pytest.raises(CheckpointError):
            AsyncCheckpointWriter(max_pending=0)


class TestAsyncWriterShutdownSemantics:
    """Regression tests: close() vs in-flight failures (exactly-once errors)."""

    def test_close_during_inflight_failing_task_surfaces_error_once(self):
        started = threading.Event()
        release = threading.Event()
        writer = AsyncCheckpointWriter()

        def failing():
            started.set()
            release.wait(5)
            raise ValueError("torn write")

        writer.submit(failing)
        assert started.wait(5)
        # The task is mid-flight and about to fail while close() waits.
        release.set()
        with pytest.raises(CheckpointError, match="torn write"):
            writer.close()
        # Exactly once: a second close must not re-raise the seen error.
        writer.close()

    def test_error_after_timed_out_close_is_not_lost(self):
        """A failure landing after close() timed out surfaces on re-close."""
        release = threading.Event()
        writer = AsyncCheckpointWriter(close_timeout=0.1)

        def slow_failing():
            release.wait(5)
            raise ValueError("late failure")

        writer.submit(slow_failing)
        with pytest.raises(CheckpointError, match="stuck"):
            writer.close()
        release.set()
        writer._thread.join(timeout=5)
        with pytest.raises(CheckpointError, match="late failure"):
            writer.close()
        writer.close()  # and exactly once

    def test_submit_after_close_does_not_shadow_pending_error(self):
        """'writer is closed' must not hide an unseen write failure."""
        release = threading.Event()
        writer = AsyncCheckpointWriter(close_timeout=0.1)

        def slow_failing():
            release.wait(5)
            raise ValueError("hidden failure")

        writer.submit(slow_failing)
        with pytest.raises(CheckpointError, match="stuck"):
            writer.close()
        release.set()
        writer._thread.join(timeout=5)
        with pytest.raises(CheckpointError, match="hidden failure"):
            writer.submit(lambda: None)
        with pytest.raises(CheckpointError, match="closed"):
            writer.submit(lambda: None)


class TestObservedCostWiring:
    """Young–Daly re-derives its interval from pool-observed save cost."""

    def test_cost_source_overrides_running_mean(self):
        clock = SimulatedClock()
        policy = YoungDalyPolicy(
            mtbf_seconds=10000.0, initial_cost_estimate=1.0, clock=clock
        )
        base_interval = policy.interval_seconds
        observed = {"value": None}
        policy.attach_cost_source(lambda: observed["value"])
        # Source empty: running mean still governs.
        assert policy.interval_seconds == base_interval
        # Contention quadruples the observed save cost: sqrt scaling doubles
        # the interval.
        observed["value"] = 4.0
        assert policy.mean_cost == 4.0
        assert policy.interval_seconds == pytest.approx(
            2 * base_interval, rel=0.15
        )
        # Source drying up (non-positive) falls back again.
        observed["value"] = 0.0
        assert policy.mean_cost == 1.0

    def test_channel_records_recent_save_durations(self):
        from repro.service.pool import WriterPool

        pool = WriterPool(workers=1)
        try:
            channel = pool.channel("job0", max_pending=4)
            assert channel.observed_save_seconds() is None
            for _ in range(3):
                channel.submit(lambda: time.sleep(0.01))
            channel.drain()
            observed = channel.observed_save_seconds()
            assert observed is not None and observed >= 0.01
            assert len(channel.recent_task_seconds) == 3
        finally:
            pool.close()

    def test_service_manager_attaches_pool_cost_source(self):
        from repro.service.chunkstore import ChunkStore
        from repro.service.manager import ServiceCheckpointManager
        from repro.service.pool import WriterPool
        from repro.storage.memory import InMemoryBackend

        store = ChunkStore(InMemoryBackend(), block_bytes=512)
        pool = WriterPool(workers=1)
        try:
            channel = pool.channel("job0", max_pending=4)
            clock = SimulatedClock()
            policy = YoungDalyPolicy(
                mtbf_seconds=1000.0, initial_cost_estimate=0.5, clock=clock
            )
            ServiceCheckpointManager(store, "job0", channel, policy=policy)
            assert policy._cost_source is not None
            # Before any save the policy falls back to its initial estimate.
            assert policy.mean_cost == 0.5
            # Simulate the pool finishing saves of known duration.
            channel.recent_task_seconds.extend([0.2, 0.4])
            assert policy.mean_cost == pytest.approx(0.3)
            expected = max(
                young_daly_interval(0.3, 1000.0), 0.3
            )
            assert policy.interval_seconds == pytest.approx(expected)
        finally:
            pool.close()

    def test_interval_tracks_contention_window(self):
        """A brownout-slowed pool widens the interval; recovery narrows it."""
        from repro.service.pool import WriterPool

        pool = WriterPool(workers=1)
        try:
            channel = pool.channel("job0", max_pending=4)
            clock = SimulatedClock()
            policy = YoungDalyPolicy(
                mtbf_seconds=400.0, initial_cost_estimate=0.01, clock=clock
            )
            policy.attach_cost_source(channel.observed_save_seconds)
            channel.recent_task_seconds.extend([0.01] * 4)
            calm = policy.interval_seconds
            channel.recent_task_seconds.extend([1.0] * 16)  # window is 16
            stormy = policy.interval_seconds
            assert stormy > calm * 5
            channel.recent_task_seconds.extend([0.01] * 16)
            assert policy.interval_seconds == pytest.approx(calm)
        finally:
            pool.close()
