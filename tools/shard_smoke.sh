#!/usr/bin/env bash
# Gradient-sharding smoke test, run by the CI ``engines`` matrix job.
#
# Computes a parameter-shift gradient with a 2-worker shard pool under the
# engine tier named by $QCKPT_ENGINE (default: auto) and asserts, in order:
#
#   1. the sharded gradient is bitwise identical to the single-process one;
#   2. MORE THAN ONE worker process actually executed shifts — proven by
#      distinct worker PIDs (none of them this process) whose primed matrix
#      caches saw hits, not by trusting the fan-out counter alone;
#   3. the ``shard.shifts`` counter accounts for every shifted execution.
#
# Run locally from the repo root:  bash tools/shard_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
export QCKPT_ENGINE="${QCKPT_ENGINE:-auto}"

echo "== shard smoke under QCKPT_ENGINE=$QCKPT_ENGINE"
python - <<'PY'
import os

import numpy as np

from repro.autodiff.parameter_shift import (
    parameter_shift_gradient,
    shift_rule_evaluations,
)
from repro.quantum import engines
from repro.quantum import kernels
from repro.quantum.engines import sharding
from repro.quantum.observables import Hamiltonian
from repro.quantum.templates import hardware_efficient, initial_parameters

WORKERS = 2

info = engines.engine_info()
print(f"   engine tier: {info['active']} "
      f"(compiled_available={info['compiled_available']}, "
      f"reason={info['compiled_reason']!r})")

circuit = hardware_efficient(6, 3)
params = initial_parameters(circuit, np.random.default_rng(0), 0.8)
observable = Hamiltonian.transverse_field_ising(6, 1.0, 0.7)
evaluations = shift_rule_evaluations(circuit)

single = parameter_shift_gradient(circuit, params, observable)
sharding.prime_worker_caches(circuit, params, workers=WORKERS)
sharded = parameter_shift_gradient(
    circuit, params, observable, shard_workers=WORKERS
)
assert np.array_equal(single, sharded), "sharded gradient is not bitwise identical"
print(f"   bitwise parity: OK ({len(params)} params, {evaluations} shifted executions)")

workers = kernels.cache_info(all_workers=True).get("workers", [])
active = [w for w in workers if w["matrix"]["hits"] + w["matrix"]["misses"] > 0]
pids = {w["pid"] for w in active}
assert os.getpid() not in pids, "worker pool reported the parent process"
assert len(pids) > 1, (
    f"expected >1 worker process to execute shifts, saw pids={sorted(pids)}"
)
print(f"   worker fan-out: OK ({len(pids)} distinct worker processes: {sorted(pids)})")

shifts = engines.METRICS.counter("shard.shifts").value
assert shifts >= evaluations, (
    f"shard.shifts={shifts} below the {evaluations} shifted executions"
)
print(f"   shard.shifts counter: OK ({shifts} >= {evaluations})")

sharding.shutdown_default()
PY

echo "== shard smoke passed"
