#!/usr/bin/env bash
# Observability smoke test, run by the CI ``obs-smoke`` job.
#
# Starts a socket-serving fleet daemon, runs a short job, and checks the
# telemetry surfaces end to end: ``qckpt metrics --json`` over both the TCP
# (--connect) and file (--control) transports must parse and carry save
# latency histograms plus a dedup ratio, ``qckpt top`` must render one
# frame, and after a clean drain the persisted ``<store>/obs/registry.json``
# must answer ``qckpt metrics <store>`` offline.  Also asserts the trace
# log stitched the client submit and the daemon-side save into one trace.
#
# Run locally from the repo root:  bash tools/obs_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

QCKPT="python -m repro.cli"
STORE=$(mktemp -d -t qckpt-obs-smoke-XXXXXX)
TOKEN="obs-smoke-$$-$RANDOM"
STEPS=20

echo "== starting daemon on 127.0.0.1:0 (store: $STORE)"
$QCKPT daemon start "$STORE" --shards 1 --listen 127.0.0.1:0 --token "$TOKEN" \
  --metrics-export-seconds 1 &
DAEMON_PID=$!
cleanup() { kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$STORE"; }
trap cleanup EXIT

echo "== discovering the bound address from daemon.json"
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(python -c 'import json,sys
try:
    print(json.load(open(sys.argv[1])).get("listen", ""))
except Exception:
    print("")' "$STORE/control/daemon.json" 2>/dev/null)
  if [ -n "$ADDR" ] && [ "${ADDR##*:}" != "0" ]; then
    break
  fi
  ADDR=""
  sleep 0.2
done
[ -n "$ADDR" ] || { echo "daemon never advertised a socket address"; exit 1; }
echo "daemon listening on $ADDR"

echo "== waiting for the daemon to answer over TCP"
for _ in $(seq 1 100); do
  if $QCKPT daemon status --connect "$ADDR" --token "$TOKEN" --timeout 2 \
      >/dev/null 2>&1; then
    break
  fi
  sleep 0.2
done

echo "== submitting a short job and waiting for it to finish"
$QCKPT daemon submit --connect "$ADDR" --token "$TOKEN" --job smoke \
  --steps "$STEPS" --qubits 2 --layers 1 --samples 16 --batch-size 4
for _ in $(seq 1 300); do
  status=$($QCKPT daemon status --connect "$ADDR" --token "$TOKEN" --timeout 10)
  echo "$status" | grep -Eq "^smoke +finished" && break
  sleep 0.2
done
echo "$status" | grep -Eq "^smoke +finished" \
  || { echo "job never finished"; exit 1; }

check_metrics_json() {
  python -c '
import json, sys
response = json.load(sys.stdin)
assert response["ok"], response
snapshot = response["metrics"]
series = {(r["name"], tuple(sorted(r.get("labels", {}).items()))): r
          for r in snapshot["series"]}
save = series[("save.seconds", (("job", "smoke"),))]
assert save["type"] == "histogram" and save["count"] >= 1, save
assert sum(save["counts"]) == save["count"], save
assert any(n == "store.chunks_written" for n, _ in series), "no store series"
dedup = response["dedup_ratio"]
assert dedup > 0, dedup
print("    %s: ok (saves=%d, dedup=%.2fx)"
      % (sys.argv[1], save["count"], dedup))
' "$1"
}

echo "== qckpt metrics --json over TCP must parse with save + dedup series"
$QCKPT metrics --connect "$ADDR" --token "$TOKEN" --json \
  | check_metrics_json "tcp"

echo "== qckpt metrics --json over the file transport must agree"
$QCKPT metrics --control "$STORE/control" --json | check_metrics_json "file"

echo "== qckpt top renders one frame"
top=$($QCKPT top --connect "$ADDR" --token "$TOKEN" --iterations 1 --no-clear)
echo "$top"
echo "$top" | grep -q "smoke" || { echo "top did not list the job"; exit 1; }

echo "== qckpt health reports ok against the healthy daemon (exit 0)"
$QCKPT health --connect "$ADDR" --token "$TOKEN" | grep -q "health OK" \
  || { echo "live health was not OK"; exit 1; }

echo "== qckpt metrics --prom emits Prometheus exposition over TCP"
$QCKPT metrics --connect "$ADDR" --token "$TOKEN" --prom \
  | grep -q "^# TYPE qckpt_save_seconds histogram" \
  || { echo "prom exposition missing save histogram"; exit 1; }

echo "== draining (persists the registry snapshot)"
$QCKPT daemon drain --connect "$ADDR" --token "$TOKEN" --timeout 120
wait "$DAEMON_PID"

echo "== qckpt metrics <store> answers offline from the persisted registry"
offline=$($QCKPT metrics "$STORE")
echo "$offline"
echo "$offline" | grep -q "dedup ratio:" \
  || { echo "offline metrics missing dedup ratio"; exit 1; }

echo "== the trace log stitched client and daemon spans into one trace"
python - "$STORE/obs/trace.jsonl" <<'PY'
import json, sys
spans = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
by_trace = {}
for span in spans:
    by_trace.setdefault(span["trace"], set()).add(span["name"])
stitched = [
    trace for trace, names in by_trace.items()
    if "daemon.submit" in names and "store.save" in names
]
assert stitched, f"no trace joins daemon.submit with store.save: {by_trace}"
print(f"    trace {stitched[0]} covers submit -> save")
PY

echo "== qckpt health <store> answers offline from the persisted artifacts"
$QCKPT health "$STORE" | grep -q "health OK" \
  || { echo "offline health was not OK"; exit 1; }

echo "== qckpt profile prints a critical path with stage coverage"
profile=$($QCKPT profile "$STORE")
echo "$profile" | head -20
echo "$profile" | grep -q "critical path: " \
  || { echo "profile printed no critical path"; exit 1; }
echo "$profile" | grep -q "stage coverage: " \
  || { echo "profile printed no stage coverage"; exit 1; }

echo "== qckpt profile --folded emits flamegraph stacks"
$QCKPT profile "$STORE" --folded | grep -q "store.save;stage:" \
  || { echo "folded stacks missing save stages"; exit 1; }

echo "== health verdict flips under a fault storm, then recovers"
python - <<'PY'
import subprocess, sys, tempfile, threading, time

from repro.obs.export import store_obs_dir
from repro.obs.health import HealthRule
from repro.obs.metrics import MetricsRegistry
from repro.reliability import RetryPolicy
from repro.service import ChunkStore, DaemonClient, FleetDaemon, WriterPool
from repro.service.daemon import DaemonConfig
from repro.storage.flaky import FlakyBackend
from repro.storage.memory import InMemoryBackend
from repro.storage.reliable import ReliableBackend

# Small windows so the storm shows up (and drains back out) in seconds.
RULES = [
    HealthRule(
        name="retry-storm", kind="rate", series="reliability.retries",
        op=">", value=0.2, window_seconds=4.0, severity="warn",
        reason="storage retries exceed 0.2/s",
    ),
    HealthRule(
        name="retry-flood", kind="rate", series="reliability.retries",
        op=">", value=2.0, window_seconds=4.0, severity="critical",
        reason="storage retries exceed 2/s",
    ),
]

root = tempfile.mkdtemp(prefix="qckpt-health-storm-")
registry = MetricsRegistry(enabled=True)
flaky = FlakyBackend(InMemoryBackend())
backend = ReliableBackend(
    flaky,
    retry=RetryPolicy(max_attempts=4, base_delay=0.005),
    metrics=registry,
)
store = ChunkStore(backend, block_bytes=2048, metrics=registry)
pool = WriterPool(workers=1, metrics=registry)
control = root + "/ctl"
daemon = FleetDaemon(
    store, pool, control,
    config=DaemonConfig(tick_seconds=0.005, metrics_export_seconds=0.0,
                        obs_sample_seconds=0.1),
    metrics=registry, obs_dir=store_obs_dir(root + "/store"),
    health_rules=RULES,
)
thread = threading.Thread(target=daemon.serve, daemon=True)
thread.start()
client = DaemonClient(control, timeout=30.0)


def health_cli():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "health", "--control", control],
        capture_output=True, text=True,
    )
    return proc.returncode, proc.stdout


# Every other write errors once: retries climb fast, nothing exhausts.
flaky.arm_schedule("write", "error", first=1, count=1, period=2)
client.submit({"job_id": "stormy", "workload": "classifier",
               "target_steps": 2000, "checkpoint_every": 1,
               "params": {"qubits": 2, "layers": 1, "samples": 16,
                          "batch_size": 4}})

deadline = time.monotonic() + 60.0
verdict_rc, out = 0, ""
while time.monotonic() < deadline:
    verdict_rc, out = health_cli()
    if verdict_rc != 0:
        break
    time.sleep(0.3)
assert verdict_rc in (1, 2), f"health never left ok: {out}"
assert "retry-storm" in out or "retry-flood" in out, out
print(f"    storm verdict (exit {verdict_rc}):")
print("    " + out.strip().replace("\n", "\n    "))

flaky.disarm()
deadline = time.monotonic() + 60.0
while time.monotonic() < deadline:
    verdict_rc, out = health_cli()
    if verdict_rc == 0:
        break
    time.sleep(0.5)
assert verdict_rc == 0, f"health never recovered: {out}"
print("    recovered: " + out.splitlines()[0])

client.stop(timeout=15.0)
thread.join(timeout=30.0)
pool.close()
PY

echo "obs smoke OK"
