#!/usr/bin/env python
"""Warn-only benchmark trend diff: fresh results vs a committed baseline.

CI runs the benchmark smoke suites (which rewrite ``BENCH_fleet.json`` /
``BENCH_substrate.json`` in the workspace) and then calls this tool with
the committed generation as the baseline::

    git show HEAD:BENCH_fleet.json > /tmp/base.json
    python tools/bench_trend.py /tmp/base.json BENCH_fleet.json

It walks both JSON trees, compares every numeric leaf, and prints the
leaves whose relative change exceeds the threshold (default 25% — CI
runners are noisy; this is a trend light, not a gate).  Direction
matters: a metric whose name says "seconds"/"_ms" regresses *upward*,
one that says "per_second"/"speedup"/"dedup_ratio" regresses
*downward*; metrics with no recognizable direction are reported as
informational changes only.

The exit code is always 0 — a trend warning must never fail the build
(`--annotate` additionally emits GitHub ``::warning::`` lines so
regressions surface on the workflow summary without gating it).
"""

import argparse
import json
import sys

# Order matters: "overhead_ratio" must classify as lower-is-better before
# the generic "ratio" suffix gets a chance to mean anything else.
LOWER_IS_BETTER = (
    "overhead_ratio",
    "seconds",
    "_ms",
    "lost_steps",
    "failure_rate",
    "crashes",
    "abandoned",
    "exhausted",
)
HIGHER_IS_BETTER = (
    "per_second",
    "speedup",
    "dedup_ratio",
    "recovered",
    "coverage",
    "hits",
)


def walk(prefix, value, out):
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            walk(child, value[key], out)
    elif isinstance(value, bool):
        return
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)


def direction(key):
    lowered = key.lower()
    for needle in LOWER_IS_BETTER:
        if needle in lowered:
            return "lower"
    for needle in HIGHER_IS_BETTER:
        if needle in lowered:
            return "higher"
    return None


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-trend: cannot read {path}: {exc}")
        return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark JSON")
    parser.add_argument("fresh", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative change that counts as a trend (default 0.25)",
    )
    parser.add_argument(
        "--annotate",
        action="store_true",
        help="emit GitHub ::warning:: annotations for regressions",
    )
    args = parser.parse_args(argv)

    baseline_doc = load(args.baseline)
    fresh_doc = load(args.fresh)
    if baseline_doc is None or fresh_doc is None:
        print("bench-trend: skipped (missing/invalid input; this is fine "
              "for a first run)")
        return 0

    baseline, fresh = {}, {}
    walk("", baseline_doc, baseline)
    walk("", fresh_doc, fresh)

    regressions, improvements, changes = [], [], []
    for key in sorted(set(baseline) & set(fresh)):
        base, new = baseline[key], fresh[key]
        if base == new:
            continue
        if base == 0:
            continue  # no meaningful relative change
        rel = (new - base) / abs(base)
        if abs(rel) <= args.threshold:
            continue
        row = (key, base, new, rel)
        kind = direction(key)
        if kind == "lower":
            (regressions if rel > 0 else improvements).append(row)
        elif kind == "higher":
            (regressions if rel < 0 else improvements).append(row)
        else:
            changes.append(row)

    only = sorted(set(baseline) ^ set(fresh))
    if not (regressions or improvements or changes or only):
        print(
            f"bench-trend: no leaf moved more than "
            f"{args.threshold:.0%} ({args.fresh} vs {args.baseline})"
        )
        return 0

    def show(title, rows):
        if not rows:
            return
        print(f"\n{title}")
        print(f"  {'METRIC':<58} {'BASE':>12} {'FRESH':>12} {'DELTA':>8}")
        for key, base, new, rel in sorted(rows, key=lambda r: -abs(r[3])):
            print(f"  {key:<58} {base:>12.4g} {new:>12.4g} {rel:>+8.0%}")

    show(f"POSSIBLE REGRESSIONS (>{args.threshold:.0%}, warn-only)",
         regressions)
    show("IMPROVEMENTS", improvements)
    show("OTHER CHANGES (no known direction)", changes)
    if only:
        print(f"\nkeys present in only one side: {len(only)}")
        for key in only[:10]:
            side = "baseline" if key in baseline else "fresh"
            print(f"  {key} ({side} only)")
    if args.annotate:
        for key, base, new, rel in regressions:
            print(
                f"::warning title=bench trend::{key} moved {rel:+.0%} "
                f"({base:.4g} -> {new:.4g})"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
