#!/usr/bin/env python
"""Docs health check, run by the CI ``docs`` job.

Three gates:

1. every relative markdown link in README.md and docs/ resolves to an
   existing file, and anchored links (``file.md#heading``) resolve to a
   real heading in the target (GitHub-style slugs);
2. ``qckpt --help`` exits 0 for the top level and for every subcommand in
   the argparse tree (including nested ``daemon`` verbs);
3. every top-level subcommand is documented in docs/OPERATIONS.md, so the
   CLI surface and the operator guide cannot drift apart silently.

Exits non-zero with a per-failure report.  Run locally with::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import contextlib
import io
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _slug(heading: str) -> str:
    """GitHub-style anchor slug of one heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _doc_files() -> list:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links() -> list:
    errors = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if "://" in target or target.startswith("mailto:"):
                continue  # external links are not this gate's business
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{doc.relative_to(REPO)}: broken link -> {target}"
                    )
                    continue
            else:
                resolved = doc
            if anchor and resolved.suffix == ".md":
                headings = {
                    _slug(h) for h in HEADING_RE.findall(
                        resolved.read_text(encoding="utf-8")
                    )
                }
                if anchor not in headings:
                    errors.append(
                        f"{doc.relative_to(REPO)}: dead anchor -> {target}"
                    )
    return errors


def _iter_command_paths(parser, prefix=()):
    yield prefix
    for action in parser._actions:  # noqa: SLF001 - argparse introspection
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                yield from _iter_command_paths(sub, prefix + (name,))


def check_help() -> list:
    from repro.cli import build_parser

    errors = []
    parser = build_parser()
    for path in _iter_command_paths(parser):
        argv = list(path) + ["--help"]
        buffer = io.StringIO()
        try:
            with contextlib.redirect_stdout(buffer):
                build_parser().parse_args(argv)
            errors.append(f"qckpt {' '.join(argv)}: did not exit")
        except SystemExit as exc:
            if exc.code not in (0, None):
                errors.append(
                    f"qckpt {' '.join(argv)}: exit {exc.code}\n"
                    f"{buffer.getvalue()}"
                )
    return errors


def check_operations_coverage() -> list:
    from repro.cli import build_parser

    operations = (REPO / "docs" / "OPERATIONS.md").read_text(encoding="utf-8")
    errors = []
    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001
        if isinstance(action, argparse._SubParsersAction):
            for name in action.choices:
                if f"qckpt {name}" not in operations:
                    errors.append(
                        f"docs/OPERATIONS.md does not document 'qckpt {name}'"
                    )
    return errors


def main() -> int:
    errors = []
    for gate in (check_links, check_help, check_operations_coverage):
        errors.extend(gate())
    if errors:
        print(f"docs check FAILED ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  - {error}")
        return 1
    docs = ", ".join(str(f.relative_to(REPO)) for f in _doc_files())
    print(f"docs check OK: links + anchors resolve in [{docs}]; "
          "every qckpt subcommand --help exits 0 and is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
