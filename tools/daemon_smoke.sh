#!/usr/bin/env bash
# Remote control-plane smoke test, run by the CI ``daemon-smoke`` job.
#
# Starts a socket-serving fleet daemon on localhost, then drives it purely
# through ``--connect`` (the TCP transport): submits a 2-job workload with
# distinct priorities, preempts one job mid-run, polls status until both
# finish, verifies a wrong token is refused, drains remotely, and restores
# both jobs' final checkpoints through the unified pipeline (which verifies
# every block against its content address — bitwise fidelity, not just
# presence).  Ends with a --help exit-0 audit of every daemon verb.
#
# Run locally from the repo root:  bash tools/daemon_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

QCKPT="python -m repro.cli"
STORE=$(mktemp -d -t qckpt-smoke-XXXXXX)
TOKEN="smoke-$$-$RANDOM"
STEPS=30

echo "== starting daemon on 127.0.0.1:0 (store: $STORE)"
# Port 0 lets the daemon's own bind pick the port (no probe-then-bind
# race); the resolved address is advertised in daemon.json.
$QCKPT daemon start "$STORE" --shards 1 --listen 127.0.0.1:0 --token "$TOKEN" &
DAEMON_PID=$!
cleanup() { kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$STORE"; }
trap cleanup EXIT

echo "== discovering the bound address from daemon.json"
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(python -c 'import json,sys
try:
    print(json.load(open(sys.argv[1])).get("listen", ""))
except Exception:
    print("")' "$STORE/control/daemon.json" 2>/dev/null)
  if [ -n "$ADDR" ] && [ "${ADDR##*:}" != "0" ]; then
    break
  fi
  ADDR=""
  sleep 0.2
done
[ -n "$ADDR" ] || { echo "daemon never advertised a socket address"; exit 1; }
echo "daemon listening on $ADDR"

echo "== waiting for the daemon to answer over TCP"
for _ in $(seq 1 100); do
  if $QCKPT daemon status --connect "$ADDR" --token "$TOKEN" --timeout 2 \
      >/dev/null 2>&1; then
    break
  fi
  sleep 0.2
done
$QCKPT daemon status --connect "$ADDR" --token "$TOKEN" --timeout 5 >/dev/null

echo "== submitting a 2-job workload remotely (priorities 2 and 1)"
$QCKPT daemon submit --connect "$ADDR" --token "$TOKEN" --job a \
  --steps "$STEPS" --priority 2 --qubits 2 --layers 1 --samples 16 --batch-size 4
$QCKPT daemon submit --connect "$ADDR" --token "$TOKEN" --job b \
  --steps "$STEPS" --priority 1 --qubits 2 --layers 1 --samples 16 --batch-size 4

echo "== preempting job a over TCP (it must reincarnate from the store)"
if ! out=$($QCKPT daemon preempt --connect "$ADDR" --token "$TOKEN" --job a 2>&1); then
  # Losing the race against a fast finish is fine; anything else is not.
  echo "$out" | grep -q "not running" || { echo "$out"; exit 1; }
fi
echo "${out:-"(job a already finished)"}"

echo "== polling status until both jobs finish"
for _ in $(seq 1 300); do
  status=$($QCKPT daemon status --connect "$ADDR" --token "$TOKEN" --timeout 10)
  if echo "$status" | grep -Eq "^a +finished" \
      && echo "$status" | grep -Eq "^b +finished"; then
    break
  fi
  sleep 0.2
done
echo "$status"
echo "$status" | grep -Eq "^a +finished" || { echo "job a never finished"; exit 1; }
echo "$status" | grep -Eq "^b +finished" || { echo "job b never finished"; exit 1; }

echo "== a wrong token must be refused"
if $QCKPT daemon status --connect "$ADDR" --token "not-the-token" --timeout 2 \
    >/dev/null 2>&1; then
  echo "daemon accepted a wrong auth token"; exit 1
fi

echo "== draining remotely"
$QCKPT daemon drain --connect "$ADDR" --token "$TOKEN" --timeout 120
wait "$DAEMON_PID"

echo "== restoring both jobs (content-addressed blocks: bitwise verification)"
for job in a b; do
  restored=$($QCKPT restore "$STORE/shard-0" --job "$job")
  echo "$restored"
  echo "$restored" | grep -q "at step $STEPS" \
    || { echo "job $job did not restore at step $STEPS"; exit 1; }
done

echo "== qckpt daemon * --help audit"
for verb in start submit status preempt drain stop; do
  $QCKPT daemon "$verb" --help >/dev/null
done

echo "daemon smoke OK"
