#!/usr/bin/env bash
# Crash-consistency + self-healing smoke test, run by the CI ``chaos-smoke``
# job.  Two legs, both fast (<2 min total):
#
# 1. The full crash-point sweep (``python -m repro.faults.chaos``): every
#    registered barrier in the write path is killed at, the store reopened,
#    and the invariants asserted (bitwise latest_valid, no orphan manifests,
#    journal fold convergence, recoverable daemon lock, re-runnable repair).
#    The sweep fails if any registered point lacks a scenario, so coverage
#    cannot rot.
# 2. An on-disk scrub/repair cycle through the CLI: build a replicated
#    store, corrupt EVERY chunk of one replica, prove ``qckpt fsck`` sees
#    the damage, ``qckpt scrub`` repairs 100% of it from the surviving
#    replica (quarantining the rotten bytes), and a final fsck + restore
#    show a clean, bitwise-restorable store.
#
# Run locally from the repo root:  bash tools/chaos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

QCKPT="python -m repro.cli"
WORK=$(mktemp -d -t qckpt-chaos-XXXXXX)
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

echo "== crash-point sweep (every registered point, kill + reopen + assert)"
python -m repro.faults.chaos --list
python -m repro.faults.chaos

echo "== building a 2-replica store with 3 checkpoints"
python - "$WORK" <<'PY'
import sys

import numpy as np

from repro.core.snapshot import TrainingSnapshot
from repro.service.chunkstore import ChunkStore
from repro.storage.local import LocalDirectoryBackend
from repro.storage.replicated import ReplicatedBackend

work = sys.argv[1]
backend = ReplicatedBackend(
    [LocalDirectoryBackend(f"{work}/replA"), LocalDirectoryBackend(f"{work}/replB")],
    read_repair=False,
)
store = ChunkStore(backend, block_bytes=4096)
for step in (1, 2, 3):
    rng = np.random.default_rng(step)
    store.save_snapshot(
        "smoke",
        TrainingSnapshot(
            step=step,
            params=rng.normal(size=512),
            optimizer_state={"lr": 0.01},
            rng_state={"seed": step},
            model_fingerprint="chaos-smoke",
        ),
    )
PY

echo "== corrupting EVERY chunk of replica A"
python - "$WORK" <<'PY'
import sys

from repro.storage.local import LocalDirectoryBackend

replica = LocalDirectoryBackend(f"{sys.argv[1]}/replA")
chunks = replica.list("ch-")
assert chunks, "store has no chunks to corrupt"
for address in chunks:
    replica.write(address, b"total rot " + address.encode())
print(f"corrupted {len(chunks)} chunk(s)")
PY

echo "== fsck must report the damage (exit 1)"
if $QCKPT fsck "$WORK/replA" "$WORK/replB"; then
  echo "fsck missed injected corruption"; exit 1
fi

echo "== scrub must repair 100% from the surviving replica (exit 0)"
$QCKPT scrub "$WORK/replA" "$WORK/replB"

echo "== fsck must now be clean (exit 0)"
$QCKPT fsck "$WORK/replA" "$WORK/replB"

echo "== quarantined evidence must exist"
ls "$WORK/replA" | grep -q '^quarantine-ch-' \
  || { echo "no quarantine objects written"; exit 1; }

echo "== repaired store must restore bitwise at the newest step"
restored=$($QCKPT restore "$WORK/replA" --job smoke)
echo "$restored"
echo "$restored" | grep -q "at step 3" \
  || { echo "restore did not reach step 3 after repair"; exit 1; }

echo "== scrub/fsck --help audit"
$QCKPT scrub --help >/dev/null
$QCKPT fsck --help >/dev/null

echo "chaos smoke OK"
