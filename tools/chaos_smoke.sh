#!/usr/bin/env bash
# Crash-consistency + self-healing smoke test, run by the CI ``chaos-smoke``
# job.  Two legs, both fast (<2 min total):
#
# 1. The full crash-point sweep (``python -m repro.faults.chaos``): every
#    registered barrier in the write path is killed at, the store reopened,
#    and the invariants asserted (bitwise latest_valid, no orphan manifests,
#    journal fold convergence, recoverable daemon lock, re-runnable repair).
#    The sweep fails if any registered point lacks a scenario, so coverage
#    cannot rot.
# 2. An on-disk scrub/repair cycle through the CLI: build a replicated
#    store, corrupt EVERY chunk of one replica, prove ``qckpt fsck`` sees
#    the damage, ``qckpt scrub`` repairs 100% of it from the surviving
#    replica (quarantining the rotten bytes), and a final fsck + restore
#    show a clean, bitwise-restorable store.
# 3. The metadata-index lifecycle through the CLI: build an indexed
#    store, verify it with ``qckpt fsck --index``, DELETE the .db file,
#    and prove the next indexed open rebuilds it from the JSON files
#    with nothing lost (the index is a cache; the files are the truth).
#
# Run locally from the repo root:  bash tools/chaos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

QCKPT="python -m repro.cli"
WORK=$(mktemp -d -t qckpt-chaos-XXXXXX)
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

echo "== crash-point sweep (every registered point, kill + reopen + assert)"
python -m repro.faults.chaos --list
python -m repro.faults.chaos

echo "== building a 2-replica store with 3 checkpoints"
python - "$WORK" <<'PY'
import sys

import numpy as np

from repro.core.snapshot import TrainingSnapshot
from repro.service.chunkstore import ChunkStore
from repro.storage.local import LocalDirectoryBackend
from repro.storage.replicated import ReplicatedBackend

work = sys.argv[1]
backend = ReplicatedBackend(
    [LocalDirectoryBackend(f"{work}/replA"), LocalDirectoryBackend(f"{work}/replB")],
    read_repair=False,
)
store = ChunkStore(backend, block_bytes=4096)
for step in (1, 2, 3):
    rng = np.random.default_rng(step)
    store.save_snapshot(
        "smoke",
        TrainingSnapshot(
            step=step,
            params=rng.normal(size=512),
            optimizer_state={"lr": 0.01},
            rng_state={"seed": step},
            model_fingerprint="chaos-smoke",
        ),
    )
PY

echo "== corrupting EVERY chunk of replica A"
python - "$WORK" <<'PY'
import sys

from repro.storage.local import LocalDirectoryBackend

replica = LocalDirectoryBackend(f"{sys.argv[1]}/replA")
chunks = replica.list("ch-")
assert chunks, "store has no chunks to corrupt"
for address in chunks:
    replica.write(address, b"total rot " + address.encode())
print(f"corrupted {len(chunks)} chunk(s)")
PY

echo "== fsck must report the damage (exit 1)"
if $QCKPT fsck "$WORK/replA" "$WORK/replB"; then
  echo "fsck missed injected corruption"; exit 1
fi

echo "== scrub must repair 100% from the surviving replica (exit 0)"
$QCKPT scrub "$WORK/replA" "$WORK/replB"

echo "== fsck must now be clean (exit 0)"
$QCKPT fsck "$WORK/replA" "$WORK/replB"

echo "== quarantined evidence must exist"
ls "$WORK/replA" | grep -q '^quarantine-ch-' \
  || { echo "no quarantine objects written"; exit 1; }

echo "== repaired store must restore bitwise at the newest step"
restored=$($QCKPT restore "$WORK/replA" --job smoke)
echo "$restored"
echo "$restored" | grep -q "at step 3" \
  || { echo "restore did not reach step 3 after repair"; exit 1; }

echo "== scrub/fsck --help audit"
$QCKPT scrub --help >/dev/null
$QCKPT fsck --help >/dev/null

echo "== metadata index: build an indexed store (journal pins + manifests)"
python - "$WORK" <<'PY'
import sys

import numpy as np

from repro.core.snapshot import TrainingSnapshot
from repro.service.chunkstore import ChunkStore
from repro.storage.local import LocalDirectoryBackend
from repro.storage.metadb import DB_FILENAME, MetaDB
from repro.storage.placement import PlacementJournal

root = f"{sys.argv[1]}/indexed"
backend = LocalDirectoryBackend(root)
db = MetaDB(f"{root}/{DB_FILENAME}")
store = ChunkStore(backend, block_bytes=4096, metadb=db)
for step in (1, 2):
    rng = np.random.default_rng(step)
    store.save_snapshot(
        "idxsmoke",
        TrainingSnapshot(
            step=step,
            params=rng.normal(size=256),
            optimizer_state={"lr": 0.01},
            rng_state={"seed": step},
            model_fingerprint="chaos-smoke",
        ),
    )
journal = PlacementJournal(
    LocalDirectoryBackend(f"{root}/placement"),
    owner="smoke",
    refresh_seconds=0.0,
    metadb=db,
)
journal.pin("job-idxsmoke-ckpt-000002.json")
db.close()
PY

echo "== fsck --index must verify the live index (exit 0)"
$QCKPT fsck "$WORK/indexed" --index

echo "== deleting the index file: the store must not care"
rm -f "$WORK/indexed/.qckpt-meta.db" "$WORK/indexed/.qckpt-meta.db-wal" \
      "$WORK/indexed/.qckpt-meta.db-shm"
python - "$WORK" <<'PY'
import sys

from repro.service.chunkstore import ChunkStore
from repro.storage.local import LocalDirectoryBackend
from repro.storage.metadb import DB_FILENAME, MetaDB

root = f"{sys.argv[1]}/indexed"
db = MetaDB(f"{root}/{DB_FILENAME}")  # fresh file, rebuilt on open
store = ChunkStore(LocalDirectoryBackend(root), block_bytes=4096, metadb=db)
assert store.latest("idxsmoke") == "ckpt-000002", store.latest("idxsmoke")
snapshot = store.load_snapshot("idxsmoke")
assert snapshot.step == 2, snapshot.step
assert "idxsmoke" in db.jobs(), "rebuilt index missing the job"
db.close()
print("index rebuilt from files: latest + restore intact")
PY

echo "== fsck --index must verify the rebuilt index (exit 0)"
$QCKPT fsck "$WORK/indexed" --index

echo "chaos smoke OK"
