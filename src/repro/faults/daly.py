"""Makespan under failures: Daly's analytic model and a discrete-event twin.

Model: a job needs ``work`` seconds of useful compute.  Failures arrive as a
Poisson process with mean time between failures ``mtbf``.  Every ``interval``
seconds of progress the job spends ``checkpoint_cost`` seconds writing a
checkpoint; after a failure it pays ``restart_cost`` and resumes from the
last completed checkpoint.

Daly (2006) gives the expected makespan for exponential failures::

    T = mtbf * exp(restart/mtbf) * (exp((interval + cost)/mtbf) - 1)
        * work / interval

Without checkpointing the job must complete all ``work`` in one
failure-free window, which is the same formula with a single segment of
length ``work`` and zero checkpoint cost.  The discrete-event simulator
:func:`simulate_makespan` makes the identical assumptions and is used to
validate the closed form (they agree within Monte-Carlo error — one of the
library's integration tests).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigError


def _check_common(work: float, mtbf: float, restart_cost: float) -> None:
    if work <= 0:
        raise ConfigError(f"work must be > 0, got {work}")
    if mtbf <= 0:
        raise ConfigError(f"MTBF must be > 0, got {mtbf}")
    if restart_cost < 0:
        raise ConfigError(f"restart_cost must be >= 0, got {restart_cost}")


def expected_makespan(
    work: float,
    interval: float,
    checkpoint_cost: float,
    restart_cost: float,
    mtbf: float,
) -> float:
    """Daly's expected makespan with checkpointing every ``interval`` seconds."""
    _check_common(work, mtbf, restart_cost)
    if interval <= 0:
        raise ConfigError(f"interval must be > 0, got {interval}")
    if checkpoint_cost < 0:
        raise ConfigError(f"checkpoint_cost must be >= 0, got {checkpoint_cost}")
    segments = work / interval
    return (
        mtbf
        * math.exp(restart_cost / mtbf)
        * (math.exp((interval + checkpoint_cost) / mtbf) - 1.0)
        * segments
    )


def no_checkpoint_makespan(work: float, restart_cost: float, mtbf: float) -> float:
    """Expected makespan when the job restarts from scratch on failure."""
    _check_common(work, mtbf, restart_cost)
    return (
        mtbf * math.exp(restart_cost / mtbf) * (math.exp(work / mtbf) - 1.0)
    )


def simulate_makespan(
    work: float,
    interval: Optional[float],
    checkpoint_cost: float,
    restart_cost: float,
    mtbf: float,
    rng: np.random.Generator,
    max_makespan: float = 1e12,
) -> float:
    """One discrete-event sample of the makespan.

    ``interval=None`` disables checkpointing.  Failures strike during
    compute, checkpoint writes, and restarts alike (memoryless process);
    progress since the last completed checkpoint is lost.  Raises
    :class:`ConfigError` if the sample exceeds ``max_makespan`` (guards
    against pathological parameter choices in sweeps).
    """
    _check_common(work, mtbf, restart_cost)
    if interval is not None and interval <= 0:
        raise ConfigError(f"interval must be > 0 or None, got {interval}")
    if checkpoint_cost < 0:
        raise ConfigError(f"checkpoint_cost must be >= 0, got {checkpoint_cost}")

    clock = 0.0
    saved = 0.0  # work protected by a completed checkpoint
    pending_restart = 0.0  # restart cost owed before the next attempt

    while saved < work:
        segment = (
            work - saved
            if interval is None
            else min(interval, work - saved)
        )
        # The final segment does not need a checkpoint (the job is done).
        finishing = saved + segment >= work
        attempt = pending_restart + segment + (0.0 if finishing else checkpoint_cost)
        time_to_failure = rng.exponential(mtbf)
        if time_to_failure >= attempt:
            clock += attempt
            saved += segment
            pending_restart = 0.0
        else:
            clock += time_to_failure
            pending_restart = restart_cost
        if clock > max_makespan:
            raise ConfigError(
                f"simulated makespan exceeded {max_makespan:g} seconds; "
                "parameters make completion implausible"
            )
    return clock


def mean_simulated_makespan(
    work: float,
    interval: Optional[float],
    checkpoint_cost: float,
    restart_cost: float,
    mtbf: float,
    rng: np.random.Generator,
    samples: int = 200,
) -> float:
    """Monte-Carlo mean of :func:`simulate_makespan`."""
    if samples < 1:
        raise ConfigError(f"samples must be >= 1, got {samples}")
    total = 0.0
    for _ in range(samples):
        total += simulate_makespan(
            work, interval, checkpoint_cost, restart_cost, mtbf, rng
        )
    return total / samples
