"""Crash-point chaos harness: kill at every barrier, reopen, assert.

For each name in :data:`repro.faults.crashpoints.REGISTRY` this module runs
a scenario that arms the point, drives the code path through it, catches the
simulated kill (:class:`CrashPointTriggered` — a ``BaseException``, so no
internal handler can swallow it), then *reopens* the affected store from its
backend exactly like a restarted process would and asserts the crash-
consistency invariants:

* the newest restorable checkpoint restores **bitwise** (``latest_valid``
  never returns a half-written snapshot),
* no orphan manifests: every committed manifest still verifies end to end
  (orphan *chunks* are permitted — chunks are written before the manifest
  that names them, so a crash between the two legitimately leaves
  unreferenced chunks for gc),
* the placement journal's fold converges: a fresh reader folds the
  (possibly half-compacted) log to the same pin/lease state,
* the daemon's control-directory lock is recoverable: a fresh daemon can
  claim the directory once the dead one's heartbeat goes stale,
* scrub's own quarantine/repair sequence is re-runnable: a scrub killed
  mid-repair finishes the repair on the next run.

Coverage is closed-loop: a crash point registered anywhere without a
scenario prefix here fails the sweep with "no chaos scenario covers ...",
so new barriers cannot silently escape testing.

Run it directly::

    PYTHONPATH=src python -m repro.faults.chaos          # full sweep
    PYTHONPATH=src python -m repro.faults.chaos --list   # show points
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointStore
from repro.faults.crashpoints import REGISTRY, CrashPointTriggered
from repro.service.chunkstore import ChunkStore
from repro.service.daemon import (
    DaemonAlreadyRunning,
    DaemonConfig,
    FleetDaemon,
    _read_control_meta,
)
from repro.service.pool import WriterPool
from repro.service.scrub import scrub_store
from repro.storage.memory import InMemoryBackend
from repro.storage.metadb import DB_FILENAME, MetaDB
from repro.storage.placement import PlacementJournal
from repro.storage.replicated import ReplicatedBackend


@dataclass
class CrashPointResult:
    """Outcome of one kill-reopen-assert scenario."""

    point: str
    triggered: bool
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.triggered and not self.violations


def _snapshot(step: int) -> TrainingSnapshot:
    """Deterministic snapshot whose tensors differ per ``step`` (distinct
    steps must produce distinct chunks, or an armed chunk write dedups
    instead of writing)."""
    rng = np.random.default_rng(step)
    return TrainingSnapshot(
        step=step,
        params=rng.normal(size=48),
        optimizer_state={"lr": 0.01, "beta": 0.9},
        rng_state={"seed": step},
        model_fingerprint="chaos-model",
    )


def _bitwise(a: TrainingSnapshot, b: TrainingSnapshot) -> bool:
    return a.step == b.step and a.params.tobytes() == b.params.tobytes()


def _trigger(point: str, action: Callable[[], object]) -> Optional[str]:
    """Arm ``point``, run ``action``, absorb the kill.

    Returns a violation string when the armed point never fired — the
    scenario does not actually exercise that barrier.
    """
    try:
        with REGISTRY.armed(point):
            action()
    except CrashPointTriggered:
        return None
    return "armed crash point never fired during its scenario"


# -- scenarios, one per point prefix -------------------------------------------


def _scenario_chunkstore(point: str) -> CrashPointResult:
    backend = InMemoryBackend()
    store = ChunkStore(backend)
    snap1, snap2 = _snapshot(1), _snapshot(2)
    store.save_snapshot("chaos", snap1)
    miss = _trigger(point, lambda: store.save_snapshot("chaos", snap2))
    if miss:
        return CrashPointResult(point, False, [miss])

    violations: List[str] = []
    reopened = ChunkStore(backend)  # the process restart
    fsck = scrub_store(backend, repair=False)
    for finding in fsck.findings:
        if finding.kind != "orphan-chunk":  # orphan chunks are legitimate
            violations.append(
                f"fsck after crash: [{finding.kind}] {finding.name}: "
                f"{finding.detail}"
            )
    if fsck.unrestorable:
        violations.append(
            f"manifests unrestorable after crash: {fsck.unrestorable}"
        )
    _, snapshot, _ = reopened.latest_valid("chaos")
    # Only a crash *after* the manifest barrier leaves the new checkpoint
    # committed; at every earlier point the store must fall back to snap1.
    expect = snap2 if point.endswith("manifest.after-write") else snap1
    if snapshot is None:
        violations.append("no restorable checkpoint after crash")
    elif not _bitwise(snapshot, expect):
        violations.append(
            f"latest_valid restored step {snapshot.step}, expected "
            f"step {expect.step} bitwise"
        )
    reopened.save_snapshot("chaos", _snapshot(3))
    _, after, _ = reopened.latest_valid("chaos")
    if after is None or after.step != 3:
        violations.append("save after reopen did not commit")
    return CrashPointResult(point, True, violations)


def _scenario_corestore(point: str) -> CrashPointResult:
    backend = InMemoryBackend()
    store = CheckpointStore(backend)
    snap1, snap2 = _snapshot(1), _snapshot(2)
    rec1 = store.save_full(snap1)
    miss = _trigger(point, lambda: store.save_full(snap2))
    if miss:
        return CrashPointResult(point, False, [miss])

    violations: List[str] = []
    reopened = CheckpointStore(backend)
    results = reopened.verify_all()
    for ckpt_id, (ok, detail) in sorted(results.items()):
        if not ok:
            violations.append(
                f"orphan-manifest entry: record {ckpt_id} fails "
                f"verify after crash: {detail}"
            )
    committed = 2 if point.endswith("manifest.after-write") else 1
    if len(results) != committed:
        violations.append(
            f"manifest lists {len(results)} record(s) after crash, "
            f"expected {committed}"
        )
    if rec1.id in results and not _bitwise(reopened.load(rec1.id), snap1):
        violations.append("baseline checkpoint no longer restores bitwise")
    if committed == 2:
        new_ids = set(results) - {rec1.id}
        if new_ids and not _bitwise(reopened.load(new_ids.pop()), snap2):
            violations.append(
                "committed checkpoint does not restore bitwise"
            )
    rec3 = reopened.save_full(_snapshot(3))
    if not _bitwise(reopened.load(rec3.id), _snapshot(3)):
        violations.append("save after reopen does not restore bitwise")
    return CrashPointResult(point, True, violations)


def _scenario_placement_record(point: str) -> CrashPointResult:
    backend = InMemoryBackend()
    journal = PlacementJournal(backend, owner="chaos-a")
    journal.pin("job-base")
    miss = _trigger(point, lambda: journal.pin("job-target"))
    if miss:
        return CrashPointResult(point, False, [miss])

    violations: List[str] = []
    reader = PlacementJournal(backend, owner="chaos-b")  # fresh fold
    try:
        pins = reader.pinned_names()
    except Exception as exc:  # noqa: BLE001 - any failure = fold diverged
        return CrashPointResult(
            point, True, [f"journal fold failed after crash: {exc!r}"]
        )
    if "job-base" not in pins:
        violations.append("pre-crash pin lost from the fold")
    durable = point.endswith("after-write")
    if durable and "job-target" not in pins:
        violations.append("record written before crash missing from fold")
    if not durable and "job-target" in pins:
        violations.append("crash before record write still produced a pin")
    reader.pin("job-target")  # the retried operation must converge
    if "job-target" not in reader.pinned_names():
        violations.append("re-issued pin did not converge")
    return CrashPointResult(point, True, violations)


def _scenario_placement_compact(point: str) -> CrashPointResult:
    backend = InMemoryBackend()
    journal = PlacementJournal(backend, owner="chaos-a")
    journal.pin("job-a")
    journal.pin("job-b")
    journal.acquire_lease("warm")
    journal.release_lease("warm")
    miss = _trigger(point, journal.compact)
    if miss:
        return CrashPointResult(point, False, [miss])

    violations: List[str] = []
    reader = PlacementJournal(backend, owner="chaos-b")
    try:
        pins = reader.pinned_names()
    except Exception as exc:  # noqa: BLE001
        return CrashPointResult(
            point, True, [f"journal fold failed after crash: {exc!r}"]
        )
    if pins != {"job-a", "job-b"}:
        violations.append(
            f"fold of half-compacted log diverged: pins {sorted(pins)}"
        )
    try:
        reader.compact()  # a later compaction must be able to finish the job
    except Exception as exc:  # noqa: BLE001
        violations.append(f"re-run compaction failed: {exc!r}")
    if reader.pinned_names() != {"job-a", "job-b"}:
        violations.append("pins changed across re-run compaction")
    return CrashPointResult(point, True, violations)


def _scenario_daemon(point: str) -> CrashPointResult:
    control = InMemoryBackend()
    config = DaemonConfig(heartbeat_seconds=0.05, stale_after_seconds=0.2)
    pool = WriterPool(workers=1)
    try:
        daemon = FleetDaemon(
            ChunkStore(InMemoryBackend()),
            pool,
            control,
            config=config,
            daemon_id="chaos-1",
        )
        daemon._claim_control()
        miss = _trigger(point, daemon._write_meta)
        if miss:
            return CrashPointResult(point, False, [miss])

        violations: List[str] = []
        meta = _read_control_meta(control)
        # Heartbeats atomically replace daemon.json: a kill mid-write must
        # leave the previous copy readable, never torn JSON.
        if meta is None or meta.get("daemon_id") != "chaos-1":
            violations.append(
                "daemon.json unreadable (or wrong owner) after crash "
                "mid-heartbeat"
            )
        rival = FleetDaemon(
            ChunkStore(InMemoryBackend()),
            pool,
            control,
            config=config,
            daemon_id="chaos-2",
        )
        try:
            rival._claim_control()
            violations.append(
                "rival claimed the control directory while the dead "
                "daemon's heartbeat was still fresh"
            )
        except DaemonAlreadyRunning:
            pass
        time.sleep(config.stale_after_seconds + 0.1)
        try:
            rival._claim_control()  # stale heartbeat: lock must recover
        except DaemonAlreadyRunning:
            violations.append(
                "control lock never became claimable after the daemon died"
            )
        return CrashPointResult(point, True, violations)
    finally:
        pool.close()


def _scenario_scrub(point: str) -> CrashPointResult:
    replica_a, replica_b = InMemoryBackend(), InMemoryBackend()
    backend = ReplicatedBackend([replica_a, replica_b], read_repair=False)
    store = ChunkStore(backend)
    snap = _snapshot(1)
    store.save_snapshot("chaos", snap)
    address = sorted(replica_a.list("ch-"))[0]
    replica_a.write(address, b"bit-rot")  # one replica survives
    miss = _trigger(point, lambda: scrub_store(backend, repair=True))
    if miss:
        return CrashPointResult(point, False, [miss])

    violations: List[str] = []
    finish = scrub_store(backend, repair=True)  # re-run completes the repair
    if finish.unrestorable:
        violations.append(
            f"re-run scrub left unrestorable manifests: {finish.unrestorable}"
        )
    if finish.unrepaired:
        violations.append(
            f"re-run scrub left {finish.unrepaired} finding(s) unrepaired"
        )
    fsck = scrub_store(backend, repair=False)
    if not fsck.clean:
        violations.append(
            f"store not clean after crashed-then-finished repair: "
            f"{fsck.summary()}"
        )
    _, restored, _ = ChunkStore(backend).latest_valid("chaos")
    if restored is None or not _bitwise(restored, snap):
        violations.append("checkpoint does not restore bitwise after repair")
    return CrashPointResult(point, True, violations)


def _scenario_metadb(point: str) -> CrashPointResult:
    """Kill around the journal-append → index-update barriers.

    Invariant: journal records are durable before the index is touched, so
    a reopened index — whatever half-state the kill left it in — must fold
    to exactly the state a fresh, index-less reader folds from the files
    (the recovery oracle).
    """
    backend = InMemoryBackend()
    with tempfile.TemporaryDirectory(prefix="qckpt-chaos-metadb-") as tmp:
        db_path = os.path.join(tmp, DB_FILENAME)
        journal = PlacementJournal(
            backend,
            owner="chaos-a",
            refresh_seconds=0.0,
            metadb=MetaDB(db_path),
        )
        journal.pin("job-base")
        reopen_path = db_path
        if point.startswith("metadb.journal."):
            action = lambda: journal.pin("job-target")  # noqa: E731
        elif point.startswith("metadb.rebuild."):
            journal.pin("job-target")
            # A reader bootstrapping a brand-new index file runs the
            # rebuild-from-scratch fold; killing it must leave that index
            # empty-or-absent, never half-trusted.
            reopen_path = os.path.join(tmp, "fresh-" + DB_FILENAME)
            action = lambda: PlacementJournal(  # noqa: E731
                backend,
                owner="chaos-b",
                refresh_seconds=0.0,
                metadb=MetaDB(reopen_path),
            )
        else:  # metadb.vacuum.*
            journal.pin("job-target")
            journal.acquire_lease("warm")
            journal.release_lease("warm")
            action = journal.compact
        miss = _trigger(point, action)
        if miss:
            return CrashPointResult(point, False, [miss])

        violations: List[str] = []
        oracle = PlacementJournal(
            backend, owner="chaos-oracle", refresh_seconds=0.0
        )
        try:
            reopened = PlacementJournal(
                backend,
                owner="chaos-r",
                refresh_seconds=0.0,
                metadb=MetaDB(reopen_path),
            )
        except Exception as exc:  # noqa: BLE001 - reopen must never fail
            return CrashPointResult(
                point, True, [f"indexed reopen failed after crash: {exc!r}"]
            )
        if reopened.pinned_names() != oracle.pinned_names():
            violations.append(
                f"indexed fold diverged from file-journal oracle: "
                f"{sorted(reopened.pinned_names())} != "
                f"{sorted(oracle.pinned_names())}"
            )
        for role in ("warm", "compact"):
            if reopened.lease_holder(role) != oracle.lease_holder(role):
                violations.append(
                    f"lease {role!r} holder diverged from oracle after crash"
                )
        reopened.pin("job-target")  # the retried operation must converge
        verify = PlacementJournal(
            backend, owner="chaos-v", refresh_seconds=0.0
        )
        if verify.pinned_names() != reopened.pinned_names():
            violations.append(
                "post-reopen pin not visible to an index-less reader"
            )
        return CrashPointResult(point, True, violations)


_SCENARIOS = [
    ("chunkstore.", _scenario_chunkstore),
    ("corestore.", _scenario_corestore),
    ("placement.record.", _scenario_placement_record),
    ("placement.compact.", _scenario_placement_compact),
    ("daemon.", _scenario_daemon),
    ("scrub.", _scenario_scrub),
    ("metadb.", _scenario_metadb),
]


def run_crash_point(point: str) -> CrashPointResult:
    """Kill at ``point``, reopen, assert; returns the scenario's verdict."""
    for prefix, scenario in _SCENARIOS:
        if point.startswith(prefix):
            try:
                return scenario(point)
            except CrashPointTriggered as exc:
                return CrashPointResult(
                    point, True, [f"simulated kill escaped the harness: {exc}"]
                )
    return CrashPointResult(
        point,
        False,
        [f"no chaos scenario covers {point!r}; add one to repro.faults.chaos"],
    )


def run_sweep(points: Optional[List[str]] = None) -> List[CrashPointResult]:
    """Run every (or the given) registered crash point's scenario."""
    return [run_crash_point(p) for p in (points or REGISTRY.names())]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos",
        description="systematic crash-consistency sweep over every "
        "registered crash point",
    )
    parser.add_argument(
        "--points",
        nargs="+",
        metavar="NAME",
        help="sweep only these crash points (default: all registered)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered crash points and exit",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit results as JSON"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, description in sorted(REGISTRY.describe().items()):
            print(f"{name}: {description}")
        return 0

    results = run_sweep(args.points)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "point": r.point,
                        "triggered": r.triggered,
                        "violations": r.violations,
                    }
                    for r in results
                ],
                indent=2,
            )
        )
    else:
        for result in results:
            if result.ok:
                print(f"ok   {result.point}")
            else:
                print(f"FAIL {result.point}")
                if not result.triggered:
                    print("     - crash point never triggered")
                for violation in result.violations:
                    print(f"     - {violation}")
        failed = sum(1 for r in results if not r.ok)
        print(
            f"{len(results)} crash point(s) swept, "
            f"{len(results) - failed} ok, {failed} failed"
        )
    return 0 if all(r.ok for r in results) else 1


__all__ = [
    "CrashPointResult",
    "main",
    "run_crash_point",
    "run_sweep",
]


if __name__ == "__main__":
    raise SystemExit(main())
