"""The crash/recover/resume loop (a supervisor process in miniature).

``run_with_failures`` drives a trainer to a target step count while injection
hooks kill it; after every crash a *fresh* trainer is constructed (process
memory is gone), resumed from the checkpoint store, and continued.  The
result quantifies exactly what checkpointing buys: wasted (re-executed) steps
versus the failure count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.manager import CheckpointManager
from repro.core.recovery import resume_trainer
from repro.core.store import CheckpointStore
from repro.errors import ConfigError
from repro.faults.injector import SimulatedFailure


@dataclass
class FaultRunResult:
    """Accounting for one supervised run-to-completion."""

    target_steps: int
    failures: int = 0
    restores: int = 0
    steps_executed: int = 0
    final_step: int = 0
    resumed_from_steps: List[int] = field(default_factory=list)

    @property
    def wasted_steps(self) -> int:
        """Steps re-executed because their progress was lost to a crash."""
        return self.steps_executed - self.final_step


def run_with_failures(
    trainer_factory: Callable[[], "object"],
    store: CheckpointStore,
    manager_factory: Optional[Callable[[CheckpointStore], CheckpointManager]],
    target_steps: int,
    failure_hooks: Sequence = (),
    max_failures: int = 1000,
) -> FaultRunResult:
    """Drive training to ``target_steps`` across crashes.

    ``manager_factory`` builds the checkpoint hook per incarnation (``None``
    disables checkpointing — the baseline).  ``failure_hooks`` are shared
    across incarnations so failure schedules continue over restarts.
    """
    if target_steps < 1:
        raise ConfigError(f"target_steps must be >= 1, got {target_steps}")
    result = FaultRunResult(target_steps=target_steps)

    while True:
        trainer = trainer_factory()
        record = resume_trainer(trainer, store)
        if record is not None:
            result.restores += 1
            result.resumed_from_steps.append(record.step)
        hooks: List = []
        manager = None
        if manager_factory is not None:
            manager = manager_factory(store)
            hooks.append(manager)
        hooks.extend(failure_hooks)

        remaining = target_steps - trainer.step_count
        if remaining <= 0:
            result.final_step = trainer.step_count
            return result
        start_step = trainer.step_count
        try:
            trainer.run(remaining, hooks=hooks)
            result.steps_executed += trainer.step_count - start_step
            result.final_step = trainer.step_count
            if manager is not None:
                # Terminal checkpoint so a later process can read the result.
                manager.save(trainer.capture())
                manager.close()
            return result
        except SimulatedFailure:
            result.steps_executed += trainer.step_count - start_step
            result.failures += 1
            if manager is not None:
                manager.close()
            if result.failures >= max_failures:
                raise ConfigError(
                    f"exceeded {max_failures} failures before reaching "
                    f"{target_steps} steps"
                )
