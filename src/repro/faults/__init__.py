"""Failure models: crash injection, Poisson failures, and makespan math.

The paper's motivation — QPU queue preemption and ordinary infrastructure
failures — enters the reproduction here:

* :mod:`repro.faults.injector` — deterministic crash hooks and Poisson
  failure processes that kill a live training run,
* :mod:`repro.faults.harness` — the crash/recover/resume loop around a
  trainer (what a supervisor process does in production),
* :mod:`repro.faults.daly` — analytic (Daly 2006) and discrete-event models
  of expected makespan under failures with checkpointing.
"""

from repro.faults.daly import (
    expected_makespan,
    no_checkpoint_makespan,
    simulate_makespan,
)
from repro.faults.harness import FaultRunResult, run_with_failures
from repro.faults.injector import (
    Brownout,
    CrashAtStep,
    PoissonStepFailures,
    PreemptionStorm,
    SimulatedClock,
    SimulatedFailure,
)

__all__ = [
    "SimulatedFailure",
    "CrashAtStep",
    "PoissonStepFailures",
    "PreemptionStorm",
    "Brownout",
    "SimulatedClock",
    "FaultRunResult",
    "run_with_failures",
    "expected_makespan",
    "no_checkpoint_makespan",
    "simulate_makespan",
]
