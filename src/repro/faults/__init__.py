"""Failure models: crash injection, Poisson failures, and makespan math.

The paper's motivation — QPU queue preemption and ordinary infrastructure
failures — enters the reproduction here:

* :mod:`repro.faults.injector` — deterministic crash hooks and Poisson
  failure processes that kill a live training run,
* :mod:`repro.faults.harness` — the crash/recover/resume loop around a
  trainer (what a supervisor process does in production),
* :mod:`repro.faults.daly` — analytic (Daly 2006) and discrete-event models
  of expected makespan under failures with checkpointing,
* :mod:`repro.faults.crashpoints` — named kill-here barriers instrumented
  through every store write path,
* :mod:`repro.faults.chaos` — the sweep that kills at *every* registered
  crash point, reopens the store, and asserts recovery invariants.

Harness and chaos symbols are imported lazily (PEP 562): the store modules
they exercise themselves import :mod:`repro.faults.crashpoints`, and an eager
import here would close that loop.
"""

from repro.faults.crashpoints import (
    REGISTRY,
    CrashPointRegistry,
    CrashPointTriggered,
    crash_point,
    register_crash_point,
)
from repro.faults.daly import (
    expected_makespan,
    no_checkpoint_makespan,
    simulate_makespan,
)
from repro.faults.injector import (
    Brownout,
    CrashAtStep,
    PoissonStepFailures,
    PreemptionStorm,
    SimulatedClock,
    SimulatedFailure,
)

_LAZY = {
    "FaultRunResult": "repro.faults.harness",
    "run_with_failures": "repro.faults.harness",
    "CrashPointResult": "repro.faults.chaos",
    "run_crash_point": "repro.faults.chaos",
    "run_sweep": "repro.faults.chaos",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "SimulatedFailure",
    "CrashAtStep",
    "PoissonStepFailures",
    "PreemptionStorm",
    "Brownout",
    "SimulatedClock",
    "FaultRunResult",
    "run_with_failures",
    "expected_makespan",
    "no_checkpoint_makespan",
    "simulate_makespan",
    "REGISTRY",
    "CrashPointRegistry",
    "CrashPointTriggered",
    "crash_point",
    "register_crash_point",
    "CrashPointResult",
    "run_crash_point",
    "run_sweep",
]
