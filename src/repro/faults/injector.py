"""Crash injection hooks and the simulated clock.

A "failure" here is what the storage layer actually observes in production:
the training process dies between two instructions.  Hooks raise
:class:`SimulatedFailure` from ``on_step_end``, which propagates out of
``Trainer.run`` exactly like a real crash unwinds the stack.

Hook ordering matters and is the caller's contract: place the
:class:`~repro.core.manager.CheckpointManager` *before* the crash hook in the
trainer's hook list so a checkpoint scheduled for the crashing step is
persisted first (the manager's write is atomic either way).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.errors import ConfigError, ReproError


class SimulatedFailure(ReproError):
    """Raised by injection hooks to emulate a process crash."""

    def __init__(self, step: int, reason: str = "injected failure"):
        super().__init__(f"{reason} at step {step}")
        self.step = step
        self.reason = reason


class SimulatedClock:
    """Manually advanced monotonic clock for deterministic experiments."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ConfigError(f"cannot advance clock by {seconds} seconds")
        self._now += seconds
        return self._now


class CrashAtStep:
    """Hook that kills the run when ``trainer.step_count`` hits given steps."""

    def __init__(self, steps: "int | Iterable[int]"):
        if isinstance(steps, int):
            steps = [steps]
        self.steps: Set[int] = {int(s) for s in steps}
        if any(s < 1 for s in self.steps):
            raise ConfigError("crash steps must be >= 1")
        self.crashes = 0

    def on_step_end(self, trainer, info) -> None:
        if trainer.step_count in self.steps:
            self.steps.discard(trainer.step_count)
            self.crashes += 1
            raise SimulatedFailure(trainer.step_count, "CrashAtStep")


class PreemptionStorm:
    """Fleet-level event: a set of jobs is killed at one scheduler tick.

    The correlated-failure mode the service layer must survive: a spot-market
    reclaim or rack maintenance preempts many trainings at once, and they all
    restore (and often immediately re-checkpoint) against the same store.
    ``job_ids=None`` means every running job.  ``restart_delay_ticks`` models
    the scheduler's re-queue latency before a preempted job is reincarnated.
    """

    def __init__(
        self,
        at_tick: int,
        job_ids: Optional[Iterable[str]] = None,
        restart_delay_ticks: int = 0,
    ):
        if at_tick < 0:
            raise ConfigError(f"at_tick must be >= 0, got {at_tick}")
        if restart_delay_ticks < 0:
            raise ConfigError(
                f"restart_delay_ticks must be >= 0, got {restart_delay_ticks}"
            )
        self.at_tick = int(at_tick)
        self.job_ids = None if job_ids is None else {str(j) for j in job_ids}
        self.restart_delay_ticks = int(restart_delay_ticks)

    def hits(self, job_id: str) -> bool:
        """Whether this storm preempts ``job_id``."""
        return self.job_ids is None or job_id in self.job_ids


class Brownout:
    """Fleet-level event: storage writes slow down over a tick window.

    Models a shared-tier degradation (an object store running hot, a network
    partition healing) as an extra per-write delay during
    ``[start_tick, end_tick)``.  The fleet harness applies the delay to its
    store wrapper; the interesting system response is writer-pool queue
    growth and the backpressure policy engaging.
    """

    def __init__(self, start_tick: int, end_tick: int, write_delay_seconds: float):
        if start_tick < 0 or end_tick <= start_tick:
            raise ConfigError(
                f"brownout window [{start_tick}, {end_tick}) is invalid"
            )
        if write_delay_seconds < 0:
            raise ConfigError(
                f"write_delay_seconds must be >= 0, got {write_delay_seconds}"
            )
        self.start_tick = int(start_tick)
        self.end_tick = int(end_tick)
        self.write_delay_seconds = float(write_delay_seconds)

    def active_at(self, tick: int) -> bool:
        """Whether the brownout window covers ``tick``."""
        return self.start_tick <= tick < self.end_tick


class PoissonStepFailures:
    """Memoryless per-step failure process.

    Each completed step fails with probability ``p = 1 - exp(-dt / mtbf)``
    where ``dt`` is the step duration (measured, or ``fixed_step_seconds``).
    The process owns its generator so failure schedules are reproducible and
    independent of training randomness.
    """

    def __init__(
        self,
        mtbf_seconds: float,
        seed: int = 0,
        fixed_step_seconds: Optional[float] = None,
    ):
        if mtbf_seconds <= 0:
            raise ConfigError(f"MTBF must be > 0, got {mtbf_seconds}")
        if fixed_step_seconds is not None and fixed_step_seconds <= 0:
            raise ConfigError(
                f"fixed_step_seconds must be > 0, got {fixed_step_seconds}"
            )
        self.mtbf_seconds = float(mtbf_seconds)
        self.fixed_step_seconds = fixed_step_seconds
        self._rng = np.random.default_rng(seed)
        self.failures = 0

    def on_step_end(self, trainer, info) -> None:
        dt = (
            self.fixed_step_seconds
            if self.fixed_step_seconds is not None
            else info.seconds
        )
        p_fail = 1.0 - float(np.exp(-dt / self.mtbf_seconds))
        if self._rng.random() < p_fail:
            self.failures += 1
            raise SimulatedFailure(trainer.step_count, "PoissonStepFailures")
