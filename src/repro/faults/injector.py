"""Crash injection hooks and the simulated clock.

A "failure" here is what the storage layer actually observes in production:
the training process dies between two instructions.  Hooks raise
:class:`SimulatedFailure` from ``on_step_end``, which propagates out of
``Trainer.run`` exactly like a real crash unwinds the stack.

Hook ordering matters and is the caller's contract: place the
:class:`~repro.core.manager.CheckpointManager` *before* the crash hook in the
trainer's hook list so a checkpoint scheduled for the crashing step is
persisted first (the manager's write is atomic either way).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.errors import ConfigError, ReproError


class SimulatedFailure(ReproError):
    """Raised by injection hooks to emulate a process crash."""

    def __init__(self, step: int, reason: str = "injected failure"):
        super().__init__(f"{reason} at step {step}")
        self.step = step
        self.reason = reason


class SimulatedClock:
    """Manually advanced monotonic clock for deterministic experiments."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ConfigError(f"cannot advance clock by {seconds} seconds")
        self._now += seconds
        return self._now


class CrashAtStep:
    """Hook that kills the run when ``trainer.step_count`` hits given steps."""

    def __init__(self, steps: "int | Iterable[int]"):
        if isinstance(steps, int):
            steps = [steps]
        self.steps: Set[int] = {int(s) for s in steps}
        if any(s < 1 for s in self.steps):
            raise ConfigError("crash steps must be >= 1")
        self.crashes = 0

    def on_step_end(self, trainer, info) -> None:
        if trainer.step_count in self.steps:
            self.steps.discard(trainer.step_count)
            self.crashes += 1
            raise SimulatedFailure(trainer.step_count, "CrashAtStep")


class PoissonStepFailures:
    """Memoryless per-step failure process.

    Each completed step fails with probability ``p = 1 - exp(-dt / mtbf)``
    where ``dt`` is the step duration (measured, or ``fixed_step_seconds``).
    The process owns its generator so failure schedules are reproducible and
    independent of training randomness.
    """

    def __init__(
        self,
        mtbf_seconds: float,
        seed: int = 0,
        fixed_step_seconds: Optional[float] = None,
    ):
        if mtbf_seconds <= 0:
            raise ConfigError(f"MTBF must be > 0, got {mtbf_seconds}")
        if fixed_step_seconds is not None and fixed_step_seconds <= 0:
            raise ConfigError(
                f"fixed_step_seconds must be > 0, got {fixed_step_seconds}"
            )
        self.mtbf_seconds = float(mtbf_seconds)
        self.fixed_step_seconds = fixed_step_seconds
        self._rng = np.random.default_rng(seed)
        self.failures = 0

    def on_step_end(self, trainer, info) -> None:
        dt = (
            self.fixed_step_seconds
            if self.fixed_step_seconds is not None
            else info.seconds
        )
        p_fail = 1.0 - float(np.exp(-dt / self.mtbf_seconds))
        if self._rng.random() < p_fail:
            self.failures += 1
            raise SimulatedFailure(trainer.step_count, "PoissonStepFailures")
