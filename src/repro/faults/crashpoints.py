"""Named crash points: systematic kill-here hooks through the write path.

Crash-consistency testing used to be anecdotal — a handful of hand-picked
``FlakyBackend.arm`` calls at points someone thought of.  This module makes
it systematic: every durability-relevant barrier in the write path declares a
*named* crash point (``crash_point("chunkstore.manifest.before-write")``),
and the chaos harness (:mod:`repro.faults.chaos`) loops over **every**
registered name — kill there, reopen the store, assert invariants.  A new
barrier added without a scenario fails the sweep, so coverage cannot rot
silently.

Mechanics:

* modules register their points at import time via :func:`register_crash_point`
  and call :func:`crash_point` inline; a disarmed hit is a dict lookup — noise
  in production code is one line per barrier, runtime cost ~nothing;
* arming (:meth:`CrashPointRegistry.armed`) makes the n-th hit of one chosen
  point raise :class:`CrashPointTriggered`;
* :class:`CrashPointTriggered` derives from :class:`BaseException`, not
  :class:`Exception` — internal ``except StorageError`` / ``except Exception``
  recovery code must *not* be able to swallow a simulated ``kill -9``.  The
  harness catches it at the very top, exactly where a process boundary would
  be.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, List, Optional


class CrashPointTriggered(BaseException):
    """The simulated process kill.

    BaseException on purpose: recovery paths that legitimately handle
    ``ReproError``/``Exception`` (rollback, damage-tolerant walks) stay out
    of the way, mirroring a real crash where no handler runs at all.
    """

    def __init__(self, point: str):
        super().__init__(f"crash point {point!r} triggered")
        self.point = point


class CrashPointRegistry:
    """All known crash points, plus at most one armed at a time."""

    def __init__(self):
        self._lock = threading.Lock()
        self._points: Dict[str, str] = {}
        self._armed: Optional[str] = None
        self._arm_on_hit = 1
        self._hits = 0

    def register(self, name: str, description: str) -> str:
        """Declare a crash point (idempotent); returns ``name``."""
        with self._lock:
            self._points.setdefault(name, description)
        return name

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._points)

    def describe(self) -> Dict[str, str]:
        """``{name: description}`` for docs and the sweep report."""
        with self._lock:
            return dict(self._points)

    def arm(self, name: str, on_hit: int = 1) -> None:
        """Make the ``on_hit``-th :func:`crash_point` hit of ``name`` raise."""
        with self._lock:
            if name not in self._points:
                raise KeyError(f"unknown crash point {name!r}")
            if on_hit < 1:
                raise ValueError(f"on_hit must be >= 1, got {on_hit}")
            self._armed = name
            self._arm_on_hit = int(on_hit)
            self._hits = 0

    def disarm(self) -> None:
        with self._lock:
            self._armed = None
            self._hits = 0

    @contextlib.contextmanager
    def armed(self, name: str, on_hit: int = 1):
        """Arm ``name`` for the body; always disarms, even on the crash."""
        self.arm(name, on_hit=on_hit)
        try:
            yield
        finally:
            self.disarm()

    def hit(self, name: str) -> None:
        """Inline barrier hook; raises :class:`CrashPointTriggered` if armed."""
        with self._lock:
            if self._armed != name:
                return
            self._hits += 1
            if self._hits < self._arm_on_hit:
                return
            self._armed = None
        raise CrashPointTriggered(name)


#: Process-wide registry: instrumented modules register against this at
#: import, the chaos harness sweeps it, tests arm it.
REGISTRY = CrashPointRegistry()


def register_crash_point(name: str, description: str) -> str:
    """Module-level registration shorthand (returns ``name`` for reuse)."""
    return REGISTRY.register(name, description)


def crash_point(name: str) -> None:
    """The inline hook placed at each barrier; no-op unless armed."""
    REGISTRY.hit(name)


__all__ = [
    "REGISTRY",
    "CrashPointRegistry",
    "CrashPointTriggered",
    "crash_point",
    "register_crash_point",
]
