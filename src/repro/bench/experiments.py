"""Row generators for every figure and table of the reconstructed evaluation.

Each ``fig*``/``tab*`` function returns a list of dicts (one per printed row)
and is deterministic for fixed arguments.  The pytest-benchmark modules under
``benchmarks/`` print these rows and additionally time the hot kernels; the
measured outputs are recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import io
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.workloads import (
    classifier_trainer,
    footprint_breakdown,
    synthetic_snapshot,
    vqe_trainer,
)
from repro.core.codecs import get_transform
from repro.core.delta import delta_sparsity, encode_delta
from repro.core.manager import CheckpointManager
from repro.core.policy import EveryKSteps, young_daly_interval
from repro.core.serialize import pack_payload, pack_snapshot, unpack_payload, unpack_snapshot
from repro.core.snapshot import TrainingSnapshot
from repro.core.store import CheckpointStore
from repro.core.writer import AsyncCheckpointWriter, SyncCheckpointWriter
from repro.faults.daly import (
    expected_makespan,
    mean_simulated_makespan,
    no_checkpoint_makespan,
)
from repro.faults.harness import run_with_failures
from repro.faults.injector import CrashAtStep, PoissonStepFailures
from repro.ml.trainer import Trainer
from repro.mps.entanglement import entropy_profile
from repro.quantum.haar import haar_state
from repro.quantum.observables import Hamiltonian
from repro.quantum.statevector import apply_circuit, zero_state
from repro.quantum.templates import hardware_efficient
from repro.storage.memory import InMemoryBackend
from repro.storage.simulated import TransferCostModel


def _timed(fn, *args, repeat: int = 3):
    """(result, best_seconds) of calling ``fn`` ``repeat`` times."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return result, best


# ---------------------------------------------------------------------------
# Fig. 1 — training-state footprint vs qubit count
# ---------------------------------------------------------------------------


def fig1_footprint(qubit_counts: Sequence[int] = (4, 8, 12, 16, 20)) -> List[Dict]:
    """Raw bytes of each snapshot component; statevector dominates ≳12 qubits."""
    rows = []
    for n in qubit_counts:
        breakdown = footprint_breakdown(n)
        breakdown["statevector_share"] = (
            breakdown["statevector_bytes"] / breakdown["total_bytes"]
        )
        rows.append(breakdown)
    return rows


# ---------------------------------------------------------------------------
# Fig. 2 — checkpoint bytes and latency vs codec
# ---------------------------------------------------------------------------


def fig2_codecs(
    qubit_counts: Sequence[int] = (12, 16),
    codecs: Sequence[str] = ("none", "zlib-1", "zlib-6", "lzma", "bz2"),
    kinds: Sequence[str] = ("haar", "ansatz", "sparse"),
) -> List[Dict]:
    """Pack/unpack latency and compression ratio per codec and state kind.

    Expected shape: byte codecs are near-useless (~1x) on dense amplitude
    data — Haar *and* generic ansatz states alike, since even small
    amplitudes carry full-entropy mantissas — but collapse the exact-zero
    runs of sparse (low-excitation) states by an O(2^n / n) factor.  Lossy
    transforms (Tab. 2) and MPS (Tab. 5) are the tools for the dense case.
    """
    rows = []
    for n in qubit_counts:
        for kind in kinds:
            snapshot = synthetic_snapshot(n, statevector_kind=kind)
            raw = snapshot.nbytes()
            for codec in codecs:
                data, enc_seconds = _timed(
                    lambda c=codec: pack_snapshot(snapshot, codec=c)
                )
                _, dec_seconds = _timed(lambda d=data: unpack_snapshot(d))
                rows.append(
                    {
                        "n_qubits": n,
                        "state": kind,
                        "codec": codec,
                        "raw_bytes": raw,
                        "stored_bytes": len(data),
                        "ratio": raw / len(data),
                        "encode_s": enc_seconds,
                        "decode_s": dec_seconds,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Tab. 1 — serialization format comparison
# ---------------------------------------------------------------------------


def _npz_roundtrip(tensors: Dict[str, np.ndarray]) -> Tuple[int, float, float]:
    def write() -> bytes:
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **tensors)
        return buffer.getvalue()

    data, write_seconds = _timed(write)

    def read() -> Dict[str, np.ndarray]:
        with np.load(io.BytesIO(data)) as archive:
            return {name: archive[name] for name in archive.files}

    _, read_seconds = _timed(read)
    return len(data), write_seconds, read_seconds


def _json_roundtrip(tensors: Dict[str, np.ndarray]) -> Tuple[int, float, float]:
    def write() -> bytes:
        tree = {}
        for name, array in tensors.items():
            if np.iscomplexobj(array):
                tree[name] = {
                    "re": array.real.tolist(),
                    "im": array.imag.tolist(),
                }
            else:
                tree[name] = array.tolist()
        return json.dumps(tree).encode()

    data, write_seconds = _timed(write, repeat=1)
    _, read_seconds = _timed(lambda: json.loads(data), repeat=1)
    return len(data), write_seconds, read_seconds


def tab1_formats(n_qubits: int = 14) -> List[Dict]:
    """QCKPT vs npz vs JSON text on the same snapshot tensors."""
    snapshot = synthetic_snapshot(n_qubits)
    _, tensors = snapshot.to_payload()
    raw = sum(t.nbytes for t in tensors.values())
    rows = []
    for codec in ("none", "zlib-6"):
        data, write_seconds = _timed(
            lambda c=codec: pack_snapshot(snapshot, codec=c)
        )
        _, read_seconds = _timed(lambda d=data: unpack_snapshot(d))
        rows.append(
            {
                "format": f"qckpt/{codec}",
                "bytes": len(data),
                "ratio": raw / len(data),
                "write_s": write_seconds,
                "read_s": read_seconds,
                "lossless": True,
                "safe_load": True,
                "checksums": True,
            }
        )
    nbytes, write_seconds, read_seconds = _npz_roundtrip(tensors)
    rows.append(
        {
            "format": "npz",
            "bytes": nbytes,
            "ratio": raw / nbytes,
            "write_s": write_seconds,
            "read_s": read_seconds,
            "lossless": True,
            "safe_load": True,
            "checksums": False,
        }
    )
    nbytes, write_seconds, read_seconds = _json_roundtrip(tensors)
    rows.append(
        {
            "format": "json-text",
            "bytes": nbytes,
            "ratio": raw / nbytes,
            "write_s": write_seconds,
            "read_s": read_seconds,
            "lossless": False,
            "safe_load": True,
            "checksums": False,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Fig. 3 — training overhead vs checkpoint interval (sync vs async)
# ---------------------------------------------------------------------------


def fig3_overhead(
    intervals: Sequence[int] = (1, 2, 5, 10, 25),
    n_steps: int = 25,
    n_qubits: int = 10,
) -> List[Dict]:
    """Fraction of wall time spent blocked on checkpointing, per interval."""
    rows = []
    for mode in ("sync", "async"):
        for interval in intervals:
            trainer = vqe_trainer(n_qubits=n_qubits, seed=3)
            store = CheckpointStore(InMemoryBackend())
            writer = (
                SyncCheckpointWriter()
                if mode == "sync"
                else AsyncCheckpointWriter(max_pending=2)
            )
            manager = CheckpointManager(
                store, EveryKSteps(interval), writer=writer, codec="zlib-1"
            )
            started = time.perf_counter()
            trainer.run(n_steps, hooks=[manager])
            manager.close()
            total = time.perf_counter() - started
            blocked = writer.stats.blocked_seconds
            rows.append(
                {
                    "mode": mode,
                    "interval": interval,
                    "checkpoints": manager.stats.saves,
                    "train_s": total,
                    "blocked_s": blocked,
                    "overhead": blocked / total if total else 0.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 — expected makespan vs MTBF
# ---------------------------------------------------------------------------


def fig4_makespan(
    mtbf_hours: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    work_hours: float = 4.0,
    checkpoint_cost_s: float = 30.0,
    restart_cost_s: float = 120.0,
    mc_samples: int = 400,
    seed: int = 11,
) -> List[Dict]:
    """No-checkpoint vs fixed intervals vs Young–Daly, analytic + Monte Carlo."""
    work = work_hours * 3600.0
    rng = np.random.default_rng(seed)
    rows = []
    for mtbf_h in mtbf_hours:
        mtbf = mtbf_h * 3600.0
        strategies = [
            ("none", None),
            ("fixed-10min", 600.0),
            ("fixed-60min", 3600.0),
            ("young-daly", young_daly_interval(checkpoint_cost_s, mtbf)),
        ]
        for name, interval in strategies:
            if interval is None:
                analytic = no_checkpoint_makespan(work, restart_cost_s, mtbf)
            else:
                analytic = expected_makespan(
                    work, interval, checkpoint_cost_s, restart_cost_s, mtbf
                )
            simulated = mean_simulated_makespan(
                work,
                interval,
                checkpoint_cost_s,
                restart_cost_s,
                mtbf,
                rng,
                samples=mc_samples,
            )
            rows.append(
                {
                    "mtbf_h": mtbf_h,
                    "strategy": name,
                    "interval_s": 0.0 if interval is None else interval,
                    "analytic_h": analytic / 3600.0,
                    "simulated_h": simulated / 3600.0,
                    "slowdown": analytic / work,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Tab. 2 — lossy statevector compression
# ---------------------------------------------------------------------------


def tab2_lossy(
    qubit_counts: Sequence[int] = (10, 14),
    transforms: Sequence[str] = ("identity", "c64", "f16-pair", "int8-block"),
    seed: int = 5,
) -> List[Dict]:
    """Size ratio, fidelity, and observable drift per lossy transform."""
    rows = []
    rng = np.random.default_rng(seed)
    for n in qubit_counts:
        state = haar_state(n, rng)
        hamiltonian = Hamiltonian.transverse_field_ising(n, 1.0, 0.8)
        exact_energy = hamiltonian.expectation(state)
        raw = state.nbytes
        for name in transforms:
            data = pack_payload(
                {"kind": "bench"},
                {"statevector": state},
                codec="zlib-1",
                transforms={"statevector": name},
            )
            _, tensors = unpack_payload(data)
            restored = tensors["statevector"]
            fidelity = float(abs(np.vdot(state, restored)) ** 2)
            energy_drift = abs(hamiltonian.expectation(restored) - exact_energy)
            rows.append(
                {
                    "n_qubits": n,
                    "transform": name,
                    "stored_bytes": len(data),
                    "ratio": raw / len(data),
                    "fidelity": fidelity,
                    "infidelity": max(0.0, 1.0 - fidelity),
                    "energy_drift": energy_drift,
                    "lossy": get_transform(name).lossy,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 5 — delta vs full checkpoint bytes over a training run
# ---------------------------------------------------------------------------


def _fig5_series(
    trainer: Trainer,
    workload: str,
    n_steps: int,
    full_every: int,
) -> List[Dict]:
    store = CheckpointStore(InMemoryBackend())
    manager = CheckpointManager(
        store, EveryKSteps(1), delta=True, full_every=full_every, codec="zlib-6"
    )
    rows = []
    cumulative_delta_mode = 0
    cumulative_full_mode = 0
    for _ in range(n_steps):
        trainer.run(1, hooks=[manager])
        record = manager.stats.last_record
        full_equivalent = len(pack_snapshot(trainer.capture(), codec="zlib-6"))
        cumulative_delta_mode += record.nbytes
        cumulative_full_mode += full_equivalent
        rows.append(
            {
                "workload": workload,
                "step": trainer.step_count,
                "kind": record.kind,
                "bytes": record.nbytes,
                "full_equivalent": full_equivalent,
                "cum_delta_mode": cumulative_delta_mode,
                "cum_full_mode": cumulative_full_mode,
                "savings": 1.0 - cumulative_delta_mode / cumulative_full_mode,
            }
        )
    return rows


def fig5_delta(
    n_steps: int = 30,
    full_every: int = 10,
    n_qubits: int = 10,
    seed: int = 7,
) -> List[Dict]:
    """Cumulative bytes written: delta+periodic-full vs full-every-step.

    Two workloads bracket the crossover the figure demonstrates:

    * ``classifier`` — no statevector cache; the snapshot is dominated by
      step-invariant (sampler permutation → XOR zero runs) and append-only
      (loss history → suffix-only storage) components, so delta mode wins;
    * ``vqe+sv`` — the 2^n statevector cache changes entirely every step, so
      its XOR delta is full-entropy and delta mode buys nothing.

    Delta checkpointing is a *classical-state* optimization: capture of the
    quantum cache defeats it.  The classifier series models a run resumed
    mid-training (300 accumulated loss entries, 4096-sample dataset): full
    mode re-serializes the whole history and permutation every step (O(T^2)
    bytes over a run), append/XOR modes store only the growth.
    """
    classifier = classifier_trainer(
        n_qubits=min(n_qubits, 8), n_samples=4096, seed=seed
    )
    # As if resumed at step 300: the history is live classical state the
    # snapshot must carry, and its size is what append mode amortizes.
    history_rng = np.random.default_rng(seed)
    classifier.loss_history = [
        float(x) for x in 1.0 + 0.01 * history_rng.standard_normal(300).cumsum()
    ]
    classifier.step_count = 300
    rows = _fig5_series(classifier, "classifier", n_steps, full_every)
    vqe = vqe_trainer(n_qubits=n_qubits, seed=seed)
    rows += _fig5_series(vqe, "vqe+sv", n_steps, full_every)
    return rows


def delta_sparsity_probe(n_qubits: int = 10, seed: int = 7) -> float:
    """Fraction of identical bytes between consecutive-step snapshots."""
    trainer = vqe_trainer(n_qubits=n_qubits, seed=seed)
    trainer.run(5)
    _, base = trainer.capture().to_payload()
    trainer.run(1)
    _, current = trainer.capture().to_payload()
    delta_tensors, delta_meta = encode_delta(base, current)
    return delta_sparsity(delta_tensors, delta_meta)


# ---------------------------------------------------------------------------
# Fig. 6 — recovery time vs size and chain length
# ---------------------------------------------------------------------------


def fig6_recovery(
    qubit_counts: Sequence[int] = (8, 12, 14),
    chain_lengths: Sequence[int] = (1, 4, 8),
    seed: int = 3,
) -> List[Dict]:
    """Restore latency as statevector size and delta chain length grow."""
    rows = []
    for n in qubit_counts:
        for chain in chain_lengths:
            store = CheckpointStore(InMemoryBackend())
            snapshot = synthetic_snapshot(n, seed=seed)
            record = store.save_full(snapshot, codec="zlib-1")
            rng = np.random.default_rng(seed)
            for link in range(chain - 1):
                mutated = snapshot.copy()
                mutated.step += link + 1
                mutated.params = mutated.params + 1e-3 * rng.standard_normal(
                    mutated.params.shape
                )
                record = store.save_delta(mutated, record.id, codec="zlib-1")
                snapshot = mutated
            target = store.latest().id
            _, load_seconds = _timed(lambda t=target: store.load(t))
            backend = store.backend
            backend.reset_counters()
            _, partial_seconds = _timed(
                lambda t=target: store.load_partial(t, ["params"])
            )
            partial_bytes = backend.bytes_read // 3  # _timed repeats 3x
            rows.append(
                {
                    "n_qubits": n,
                    "chain_len": store.chain_length(target),
                    "stored_bytes": store.total_bytes(),
                    "restore_s": load_seconds,
                    "params_only_s": partial_seconds,
                    "params_only_bytes": partial_bytes,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Tab. 3 — exact-resume validation
# ---------------------------------------------------------------------------


def _exactness_case(
    name: str,
    make_trainer,
    crash_step: int,
    target_steps: int,
    checkpoint_every: int,
) -> Dict:
    reference = make_trainer()
    reference.run(target_steps)

    store = CheckpointStore(InMemoryBackend())
    result = run_with_failures(
        make_trainer,
        store,
        lambda s: CheckpointManager(s, EveryKSteps(checkpoint_every)),
        target_steps,
        failure_hooks=[CrashAtStep(crash_step)],
    )
    final = store.load(store.latest().id)
    max_param_delta = float(np.max(np.abs(final.params - reference.params)))
    histories_equal = bool(
        np.array_equal(
            final.loss_history, np.asarray(reference.loss_history, dtype=np.float64)
        )
    )
    return {
        "workload": name,
        "crash_step": crash_step,
        "target_steps": target_steps,
        "failures": result.failures,
        "wasted_steps": result.wasted_steps,
        "max_param_delta": max_param_delta,
        "history_equal": histories_equal,
        "bitwise_exact": max_param_delta == 0.0 and histories_equal,
    }


def tab3_exactness() -> List[Dict]:
    """Crash/resume must reproduce the uninterrupted run bitwise."""
    cases = [
        (
            "classifier/exact-grad",
            lambda: classifier_trainer(n_qubits=4, n_samples=32, batch_size=4),
            7,
            14,
            3,
        ),
        (
            "classifier/1024-shots",
            lambda: classifier_trainer(
                n_qubits=3, n_samples=24, batch_size=4, shots=1024
            ),
            5,
            10,
            2,
        ),
        ("vqe/adjoint", lambda: vqe_trainer(n_qubits=6, seed=5), 8, 16, 4),
    ]
    return [
        _exactness_case(name, factory, crash, target, every)
        for name, factory, crash, target, every in cases
    ]


# ---------------------------------------------------------------------------
# Fig. 7 — end-to-end training under Poisson failures
# ---------------------------------------------------------------------------


def fig7_end_to_end(
    mtbf_steps: Sequence[float] = (15, 30, 60, 120),
    target_steps: int = 40,
    checkpoint_every: int = 5,
    seed: int = 13,
) -> List[Dict]:
    """Wasted work with and without checkpointing as failures densify."""
    rows = []
    for mtbf in mtbf_steps:
        for strategy in ("checkpoint", "none"):
            store = CheckpointStore(InMemoryBackend())
            failure_hook = PoissonStepFailures(
                mtbf_seconds=float(mtbf), seed=seed, fixed_step_seconds=1.0
            )
            manager_factory = (
                (lambda s: CheckpointManager(s, EveryKSteps(checkpoint_every)))
                if strategy == "checkpoint"
                else None
            )
            result = run_with_failures(
                lambda: classifier_trainer(
                    n_qubits=4, n_samples=32, batch_size=4
                ),
                store,
                manager_factory,
                target_steps,
                failure_hooks=[failure_hook],
                max_failures=2000,
            )
            rows.append(
                {
                    "mtbf_steps": mtbf,
                    "strategy": strategy,
                    "failures": result.failures,
                    "steps_executed": result.steps_executed,
                    "wasted_steps": result.wasted_steps,
                    "waste_fraction": result.wasted_steps
                    / max(result.steps_executed, 1),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Tab. 4 — remote-storage ablation
# ---------------------------------------------------------------------------


def tab4_remote(
    n_qubits: int = 16,
    mtbf_hours: float = 2.0,
    tiers: Optional[Dict[str, TransferCostModel]] = None,
) -> List[Dict]:
    """Checkpoint cost and Young–Daly interval per storage tier."""
    if tiers is None:
        tiers = {
            "local-ssd": TransferCostModel.local_ssd(),
            "datacenter": TransferCostModel.datacenter_object_store(),
            "wan": TransferCostModel.wan_object_store(),
        }
    snapshot = synthetic_snapshot(n_qubits)
    data = pack_snapshot(snapshot, codec="zlib-1")
    nbytes = len(data)
    mtbf = mtbf_hours * 3600.0
    rows = []
    for name, model in tiers.items():
        cost = model.seconds_for(nbytes)
        interval = young_daly_interval(cost, mtbf)
        rows.append(
            {
                "tier": name,
                "bandwidth_MBps": model.bandwidth_bytes_per_s / 1e6,
                "rtt_ms": model.rtt_seconds * 1e3,
                "snapshot_bytes": nbytes,
                "ckpt_cost_s": cost,
                "young_daly_interval_s": interval,
                "ckpts_per_hour": 3600.0 / interval if interval > 0 else 0.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Tab. 5 — MPS vs dense quantization (structure-aware compression ablation)
# ---------------------------------------------------------------------------


def _tab5_state(family: str, n_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """State families spanning the entanglement axis of Tab. 5."""
    if family == "product":
        state = zero_state(n_qubits)
        # A local rotation on each qubit keeps it product but non-trivial.
        circuit = hardware_efficient(n_qubits, 0)
        return apply_circuit(circuit, 0.3 * rng.standard_normal(circuit.n_params))
    if family == "shallow":
        circuit = hardware_efficient(n_qubits, 1)
        return apply_circuit(circuit, 0.2 * rng.standard_normal(circuit.n_params))
    if family == "deep":
        circuit = hardware_efficient(n_qubits, 6)
        return apply_circuit(circuit, 0.5 * rng.standard_normal(circuit.n_params))
    if family == "haar":
        return haar_state(n_qubits, rng)
    raise ValueError(f"unknown state family {family!r}")


def tab5_mps(
    n_qubits: int = 12,
    families: Sequence[str] = ("product", "shallow", "deep", "haar"),
    transforms: Sequence[str] = ("identity", "f16-pair", "mps-8", "mps-32"),
    seed: int = 17,
) -> List[Dict]:
    """Stored bytes and fidelity of MPS vs dense lossy transforms.

    Expected shape: MPS beats every dense quantizer on low-entanglement
    states (product/shallow) by an entanglement-dependent factor while
    staying near-exact; on Haar states the bond cap destroys fidelity and
    dense quantization wins — structure-aware compression is workload-aware,
    not universal.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for family in families:
        state = _tab5_state(family, n_qubits, rng)
        mean_entropy = float(np.mean(entropy_profile(state)))
        for name in transforms:
            data = pack_payload(
                {"kind": "bench"},
                {"statevector": state},
                codec="zlib-1",
                transforms={"statevector": name},
            )
            _, tensors = unpack_payload(data)
            fidelity = float(abs(np.vdot(state, tensors["statevector"])) ** 2)
            rows.append(
                {
                    "family": family,
                    "mean_entropy_bits": mean_entropy,
                    "transform": name,
                    "stored_bytes": len(data),
                    "ratio": state.nbytes / len(data),
                    "fidelity": fidelity,
                    "infidelity": max(0.0, 1.0 - fidelity),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Tab. 6 — redundancy ablation: replication and tiering vs checkpoint cost
# ---------------------------------------------------------------------------


def tab6_redundancy(
    n_qubits: int = 14,
    mtbf_hours: float = 2.0,
) -> List[Dict]:
    """Measured checkpoint/restore cost per redundancy configuration.

    Costs come from the simulated-transfer accounting of actual backend
    stacks (not closed-form guesses): replication pays the slowest replica
    when writes fan out in parallel; write-through tiering pays the slow
    tier on write but restores at fast-tier speed; write-back tiering
    checkpoints at fast-tier speed and defers the slow-tier copy off the
    critical path.  The Young–Daly interval then prices each configuration.
    """
    from repro.storage.replicated import ReplicatedBackend
    from repro.storage.simulated import SimulatedRemoteBackend
    from repro.storage.tiered import TieredBackend

    snapshot = synthetic_snapshot(n_qubits)
    data = pack_snapshot(snapshot, codec="zlib-1")
    nbytes = len(data)
    mtbf = mtbf_hours * 3600.0
    rows = []

    def young_daly_row(config, write_s, restore_s, durability):
        interval = young_daly_interval(write_s, mtbf)
        return {
            "config": config,
            "snapshot_bytes": nbytes,
            "write_s": write_s,
            "restore_s": restore_s,
            "young_daly_interval_s": interval,
            "durability": durability,
        }

    # Single-backend baselines.
    for name, model in (
        ("local-ssd", TransferCostModel.local_ssd()),
        ("datacenter", TransferCostModel.datacenter_object_store()),
    ):
        backend = SimulatedRemoteBackend(model)
        backend.write("ckpt", data)
        write_s = backend.last_transfer_seconds
        backend.read("ckpt")
        rows.append(
            young_daly_row(name, write_s, backend.last_transfer_seconds, "single")
        )

    # 3-way replication across datacenter-class stores: parallel fan-out
    # pays the slowest replica; restore reads one replica.
    replicas = [
        SimulatedRemoteBackend(TransferCostModel.datacenter_object_store())
        for _ in range(3)
    ]
    replicated = ReplicatedBackend(replicas)
    replicated.write("ckpt", data)
    parallel_write = max(r.last_transfer_seconds for r in replicas)
    replicated.read("ckpt")
    restore_s = replicas[0].last_transfer_seconds
    rows.append(
        young_daly_row("replicated-3x", parallel_write, restore_s, "3 domains")
    )

    # Tiering: local SSD in front of the datacenter store.
    for policy, durability in (
        ("write-through", "2 tiers"),
        ("write-back", "fast tier until flush"),
    ):
        fast = SimulatedRemoteBackend(TransferCostModel.local_ssd())
        slow = SimulatedRemoteBackend(TransferCostModel.datacenter_object_store())
        tiered = TieredBackend(fast, slow, 1 << 30, policy=policy)
        tiered.write("ckpt", data)
        if policy == "write-through":
            write_s = max(fast.last_transfer_seconds, slow.last_transfer_seconds)
        else:
            write_s = fast.last_transfer_seconds  # flush is off-critical-path
        tiered.read("ckpt")  # fast hit
        hit_s = fast.last_transfer_seconds
        rows.append(
            young_daly_row(f"tiered/{policy}", write_s, hit_s, durability)
        )

    # Tiered restore after losing the fast tier (cold miss + promotion).
    fast = SimulatedRemoteBackend(TransferCostModel.local_ssd())
    slow = SimulatedRemoteBackend(TransferCostModel.datacenter_object_store())
    slow.write("ckpt", data)
    tiered = TieredBackend(fast, slow, 1 << 30)
    tiered.read("ckpt")
    miss_s = slow.last_transfer_seconds + fast.last_transfer_seconds
    rows.append(
        {
            "config": "tiered/cold-miss",
            "snapshot_bytes": nbytes,
            "write_s": float("nan"),
            "restore_s": miss_s,
            "young_daly_interval_s": float("nan"),
            "durability": "restore path only",
        }
    )
    return rows
