"""Plain-text table rendering for experiment rows."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` (list of dicts) as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [
        [_format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def human_bytes(n: float) -> str:
    """Format a byte count with binary units."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024 or unit == "TiB":
            return f"{size:.0f} {unit}" if unit == "B" else f"{size:.2f} {unit}"
        size /= 1024
    return f"{n} B"
