"""Experiment harness regenerating the paper's figures and tables.

``repro.bench.workloads`` defines the canonical model/snapshot workloads;
``repro.bench.experiments`` computes the rows behind each figure/table;
``repro.bench.reporting`` renders aligned text tables.  The pytest-benchmark
modules under ``benchmarks/`` are thin wrappers that print these rows and
time the hot kernels.
"""

from repro.bench.reporting import format_table

__all__ = ["format_table"]
