"""Regenerate ``EXPERIMENTS.md``: run every experiment, record the rows.

Usage::

    python -m repro.bench [--out EXPERIMENTS.md] [--quick]

``--quick`` shrinks the sweeps (fewer qubits/steps/samples) so the document
regenerates in under a minute; the full run matches the benchmark-suite
parameters.  Every section pairs the *expected shape* (what the paper's
narrative predicts) with the *measured rows* from this machine, plus an
automatic pass/fail check of the shape assertions — the same assertions the
``benchmarks/`` modules enforce.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from typing import Callable, List

from repro.bench import experiments
from repro.bench.reporting import format_table


class Section:
    """One figure/table: title, expected shape, row generator, checks."""

    def __init__(
        self,
        ident: str,
        title: str,
        expected: str,
        run: Callable[[bool], List[dict]],
        checks: Callable[[List[dict]], List[str]],
    ):
        self.ident = ident
        self.title = title
        self.expected = expected
        self.run = run
        self.checks = checks


def _fig1_checks(rows):
    by_n = {r["n_qubits"]: r for r in rows}
    ns = sorted(by_n)
    out = []
    out.append(
        _check(
            "statevector bytes grow 4x per 2 qubits",
            all(
                by_n[b]["statevector_bytes"] == 4 * by_n[a]["statevector_bytes"]
                for a, b in zip(ns, ns[1:])
                if b - a == 2
            ),
        )
    )
    big = ns[-1]
    out.append(
        _check(
            f"statevector dominates at {big} qubits (>99% of snapshot)",
            by_n[big]["statevector_share"] > 0.99,
        )
    )
    return out


def _fig2_checks(rows):
    by_key = {(r["n_qubits"], r["state"], r["codec"]): r for r in rows}
    n = max(r["n_qubits"] for r in rows)
    return [
        _check(
            "dense states (haar, ansatz) compress <1.5x",
            by_key[(n, "haar", "zlib-6")]["ratio"] < 1.5
            and by_key[(n, "ansatz", "zlib-6")]["ratio"] < 1.5,
        ),
        # The floor is the snapshot's incompressible classical payload
        # (~6 KB), so the achievable ratio scales with the statevector.
        _check(
            f"sparse states compress >{20 if n >= 16 else 5}x at {n} qubits",
            by_key[(n, "sparse", "zlib-6")]["ratio"] > (20 if n >= 16 else 5),
        ),
        _check(
            "lzma <= zlib-1 bytes on compressible data",
            by_key[(n, "sparse", "lzma")]["stored_bytes"]
            <= by_key[(n, "sparse", "zlib-1")]["stored_bytes"],
        ),
    ]


def _tab1_checks(rows):
    by_format = {r["format"]: r for r in rows}
    return [
        _check(
            "QCKPT is the only checksummed format",
            by_format["qckpt/zlib-6"]["checksums"]
            and not by_format["npz"]["checksums"],
        ),
        _check(
            "JSON text is larger than any binary format",
            by_format["json-text"]["bytes"] > by_format["qckpt/none"]["bytes"],
        ),
        _check("JSON text is lossy", not by_format["json-text"]["lossless"]),
    ]


def _fig3_checks(rows):
    sync = {r["interval"]: r for r in rows if r["mode"] == "sync"}
    async_ = {r["interval"]: r for r in rows if r["mode"] == "async"}
    intervals = sorted(sync)
    return [
        _check(
            "sync overhead falls with interval",
            sync[intervals[0]]["overhead"] > sync[intervals[-1]]["overhead"],
        ),
        _check(
            "async blocked time <= sync at tightest interval",
            async_[intervals[0]]["blocked_s"] <= sync[intervals[0]]["blocked_s"],
        ),
    ]


def _fig4_checks(rows):
    out = []
    for mtbf in sorted({r["mtbf_h"] for r in rows}):
        group = {r["strategy"]: r for r in rows if r["mtbf_h"] == mtbf}
        daly, none = group["young-daly"], group["none"]
        out.append(
            _check(
                f"MTBF={mtbf}h: Young-Daly <= no-checkpoint makespan",
                daly["analytic_h"] <= none["analytic_h"] + 1e-9,
            )
        )
        out.append(
            _check(
                f"MTBF={mtbf}h: Young-Daly <= both fixed intervals",
                daly["analytic_h"]
                <= min(
                    group["fixed-10min"]["analytic_h"],
                    group["fixed-60min"]["analytic_h"],
                )
                + 1e-9,
            )
        )
    return out


def _tab2_checks(rows):
    by_key = {(r["n_qubits"], r["transform"]): r for r in rows}
    n = max(r["n_qubits"] for r in rows)
    return [
        _check(
            "size order identity > c64 > f16 > int8",
            by_key[(n, "identity")]["stored_bytes"]
            > by_key[(n, "c64")]["stored_bytes"]
            > by_key[(n, "f16-pair")]["stored_bytes"]
            > by_key[(n, "int8-block")]["stored_bytes"],
        ),
        _check(
            "fidelity order c64 >= f16 >= int8",
            by_key[(n, "c64")]["fidelity"]
            >= by_key[(n, "f16-pair")]["fidelity"]
            >= by_key[(n, "int8-block")]["fidelity"],
        ),
        _check(
            "int8 keeps fidelity > 0.999",
            by_key[(n, "int8-block")]["fidelity"] > 0.999,
        ),
    ]


def _fig5_checks(rows):
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], row)
        by_workload[row["workload"]] = row  # keep last
    classical = by_workload["classifier"]
    quantum = by_workload["vqe+sv"]
    return [
        _check(
            "classifier: delta mode saves >2x",
            classical["cum_delta_mode"] < classical["cum_full_mode"] / 2,
        ),
        _check(
            "vqe+statevector: delta mode does not pay",
            quantum["cum_delta_mode"] > quantum["cum_full_mode"] * 0.9,
        ),
    ]


def _fig6_checks(rows):
    ns = sorted({r["n_qubits"] for r in rows})
    chains = sorted({r["chain_len"] for r in rows})
    by_key = {(r["n_qubits"], r["chain_len"]): r for r in rows}
    return [
        _check(
            "restore slows with qubit count",
            by_key[(ns[-1], chains[0])]["restore_s"]
            > by_key[(ns[0], chains[0])]["restore_s"],
        ),
        _check(
            "restore slows with chain length",
            by_key[(ns[-1], chains[-1])]["restore_s"]
            > by_key[(ns[-1], chains[0])]["restore_s"],
        ),
        _check(
            "params-only restore transfers <5% of the stored bytes",
            by_key[(ns[-1], chains[0])]["params_only_bytes"]
            < by_key[(ns[-1], chains[0])]["stored_bytes"] / 20,
        ),
    ]


def _tab3_checks(rows):
    return [
        _check(
            "every workload resumes bitwise (max |delta| == 0)",
            all(r["max_param_delta"] == 0.0 and r["bitwise_exact"] for r in rows),
        )
    ]


def _fig7_checks(rows):
    tightest = min(r["mtbf_steps"] for r in rows)
    group = {
        r["strategy"]: r for r in rows if r["mtbf_steps"] == tightest
    }
    return [
        _check(
            "at the tightest MTBF, checkpointing wastes less work",
            group["checkpoint"]["wasted_steps"] < group["none"]["wasted_steps"],
        ),
        _check(
            "at the tightest MTBF, waste fraction drops with checkpointing",
            group["checkpoint"]["waste_fraction"]
            < group["none"]["waste_fraction"],
        ),
    ]


def _tab4_checks(rows):
    by_tier = {r["tier"]: r for r in rows}
    return [
        _check(
            "slower tiers stretch the Young-Daly interval",
            by_tier["local-ssd"]["young_daly_interval_s"]
            < by_tier["datacenter"]["young_daly_interval_s"]
            < by_tier["wan"]["young_daly_interval_s"],
        )
    ]


def _tab5_checks(rows):
    by_key = {(r["family"], r["transform"]): r for r in rows}
    return [
        _check(
            "shallow states: mps-8 smaller than f16-pair at <1e-9 infidelity",
            by_key[("shallow", "mps-8")]["stored_bytes"]
            < by_key[("shallow", "f16-pair")]["stored_bytes"]
            and by_key[("shallow", "mps-8")]["infidelity"] < 1e-9,
        ),
        _check(
            "haar states: tight bond cap destroys fidelity",
            by_key[("haar", "mps-8")]["fidelity"] < 0.5,
        ),
        _check(
            "haar states: honest bond cap inflates size",
            by_key[("haar", "mps-32")]["ratio"] < 1.0,
        ),
    ]


def _tab6_checks(rows):
    by_config = {r["config"]: r for r in rows}
    return [
        _check(
            "parallel 3x replication == one datacenter write",
            by_config["replicated-3x"]["write_s"]
            == by_config["datacenter"]["write_s"],
        ),
        _check(
            "write-back tiering checkpoints faster than write-through",
            by_config["tiered/write-back"]["write_s"]
            < by_config["tiered/write-through"]["write_s"],
        ),
    ]


def _check(label: str, ok: bool) -> str:
    return f"{'PASS' if ok else 'FAIL'}  {label}"


def _sections() -> List[Section]:
    return [
        Section(
            "Fig. 1",
            "Hybrid training-state footprint vs qubit count",
            "Statevector bytes grow 2^n and dominate beyond ~12 qubits; "
            "parameters + optimizer state stay O(kB).",
            lambda quick: experiments.fig1_footprint(
                (4, 8, 12, 16) if quick else (4, 8, 12, 16, 20)
            ),
            _fig1_checks,
        ),
        Section(
            "Fig. 2",
            "Checkpoint bytes and pack/unpack latency per codec",
            "Byte codecs are ~1x on dense amplitude data (haar and ansatz "
            "alike) and collapse only exact-zero structure (sparse states); "
            "lzma is smallest and slowest.",
            lambda quick: experiments.fig2_codecs(
                qubit_counts=(12,) if quick else (12, 16),
                kinds=("haar", "ansatz", "sparse"),
            ),
            lambda rows: _fig2_checks(rows),
        ),
        Section(
            "Tab. 1",
            "Serialization format comparison",
            "QCKPT matches npz-class size/speed while adding per-chunk CRCs, "
            "a whole-file SHA-256, and pickle-free loading; JSON text is an "
            "order of magnitude larger and lossy.",
            lambda quick: experiments.tab1_formats(10 if quick else 14),
            _tab1_checks,
        ),
        Section(
            "Fig. 3",
            "Training overhead vs checkpoint interval",
            "Blocked-time share falls ~1/k with the interval; the async "
            "writer removes pack+write from the critical path.",
            lambda quick: experiments.fig3_overhead(
                intervals=(1, 5, 25) if quick else (1, 2, 5, 10, 25),
                n_steps=10 if quick else 25,
                n_qubits=8 if quick else 10,
            ),
            _fig3_checks,
        ),
        Section(
            "Fig. 4",
            "Expected makespan vs MTBF",
            "Without checkpointing the makespan diverges as MTBF shrinks "
            "below the work length; Young-Daly tracks or beats every fixed "
            "interval.",
            lambda quick: experiments.fig4_makespan(
                mtbf_hours=(0.5, 2.0) if quick else (0.5, 1.0, 2.0, 4.0, 8.0),
                mc_samples=100 if quick else 400,
            ),
            _fig4_checks,
        ),
        Section(
            "Tab. 2",
            "Lossy statevector compression",
            "c64 halves bytes at ~1e-15 infidelity, f16-pair quarters at "
            "~1e-8, int8-block is ~8x at ~1e-4; observables drift "
            "accordingly.",
            lambda quick: experiments.tab2_lossy(
                qubit_counts=(10,) if quick else (10, 14)
            ),
            _tab2_checks,
        ),
        Section(
            "Fig. 5",
            "Delta vs full checkpoint bytes over a run",
            "Delta mode wins >2x on classical-state snapshots (step-invariant "
            "permutation, append-only history) and buys nothing once the "
            "statevector cache is captured.",
            lambda quick: experiments.fig5_delta(
                n_steps=10 if quick else 20, n_qubits=8
            ),
            _fig5_checks,
        ),
        Section(
            "Fig. 6",
            "Recovery time vs size and chain length",
            "Restore latency grows with the statevector (2^n) and linearly "
            "with the delta chain length; params-only partial restore "
            "transfers a near-constant few KB via ranged reads.",
            lambda quick: experiments.fig6_recovery(
                qubit_counts=(8, 12) if quick else (8, 12, 14),
                chain_lengths=(1, 4) if quick else (1, 4, 8),
            ),
            _fig6_checks,
        ),
        Section(
            "Tab. 3",
            "Exact-resume validation",
            "Crash/resume parameter trajectories are bitwise identical to "
            "uninterrupted runs: max |delta| is exactly 0.0.",
            lambda quick: experiments.tab3_exactness(),
            _tab3_checks,
        ),
        Section(
            "Fig. 7",
            "End-to-end wall-clock under failures",
            "Under Poisson failures the checkpointed run reaches the target "
            "loss in bounded simulated time while restart-from-scratch "
            "re-pays lost work.",
            lambda quick: experiments.fig7_end_to_end(),
            _fig7_checks,
        ),
        Section(
            "Tab. 4",
            "Remote-storage ablation",
            "Checkpoint cost scales with size/bandwidth + RTT; the Young-Daly "
            "interval stretches with the square root of the cost.",
            lambda quick: experiments.tab4_remote(
                n_qubits=10 if quick else 14
            ),
            _tab4_checks,
        ),
        Section(
            "Tab. 5",
            "MPS vs dense quantization (extension)",
            "MPS dominates dense quantizers on low-entanglement states at "
            "near-zero infidelity; on volume-law states a tight bond cap "
            "destroys fidelity and an honest cap inflates the checkpoint.",
            lambda quick: experiments.tab5_mps(n_qubits=12),
            _tab5_checks,
        ),
        Section(
            "Tab. 6",
            "Redundancy ablation (extension)",
            "Parallel 3-way replication costs one slowest-replica write; "
            "write-back tiering checkpoints at fast-tier speed at the price "
            "of a durability window.",
            lambda quick: experiments.tab6_redundancy(
                n_qubits=10 if quick else 14
            ),
            _tab6_checks,
        ),
    ]


_PREAMBLE = """\
# EXPERIMENTS — paper-vs-measured record

Regenerate with ``python -m repro.bench`` (add ``--quick`` for a fast pass).
The authoritative text of *"Quantum Neural Networks Need Checkpointing"*
(HotStorage 2025) was unavailable (see the title-collision note in
DESIGN.md), so the **expected shape** below is the reconstructed narrative
each experiment encodes, and **measured** is what this repository produces.
Absolute numbers are machine-dependent; the assertions check the shape —
who wins, by what order, where the crossovers fall.  The same assertions
gate ``pytest benchmarks/``.
"""


def generate(out_path: str, quick: bool) -> int:
    failures = 0
    buffer = io.StringIO()
    buffer.write(_PREAMBLE)
    mode = "quick" if quick else "full"
    buffer.write(f"\nRun mode: **{mode}**, generated in ")
    started = time.perf_counter()
    body = io.StringIO()
    for section in _sections():
        sys.stderr.write(f"running {section.ident} ...\n")
        rows = section.run(quick)
        checks = section.checks(rows)
        failures += sum(1 for c in checks if c.startswith("FAIL"))
        body.write(f"\n## {section.ident} — {section.title}\n\n")
        body.write(f"**Expected shape.** {section.expected}\n\n")
        body.write("**Measured.**\n\n```\n")
        body.write(format_table(rows))
        body.write("\n```\n\n**Shape checks.**\n\n```\n")
        body.write("\n".join(checks))
        body.write("\n```\n")
    elapsed = time.perf_counter() - started
    buffer.write(f"{elapsed:.0f} s.\n")
    buffer.write(body.getvalue())
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(buffer.getvalue())
    sys.stderr.write(f"wrote {out_path} ({failures} failed checks)\n")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run every experiment and write EXPERIMENTS.md.",
    )
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps (~1 minute)"
    )
    args = parser.parse_args(argv)
    return generate(args.out, args.quick)


if __name__ == "__main__":
    sys.exit(main())
