"""Canonical workloads for the evaluation.

Everything the benchmark modules need to construct — models, trainers, and
snapshots of controlled size/structure — is defined here once so figures are
comparable to each other.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.snapshot import TrainingSnapshot
from repro.ml.dataset import ArrayDataset, make_moons
from repro.ml.models import VariationalClassifier, VQEModel
from repro.ml.optimizers import Adam
from repro.ml.rng import capture_rng_state
from repro.ml.trainer import Trainer, TrainerConfig
from repro.quantum.circuit import Circuit
from repro.quantum.haar import haar_state
from repro.quantum.observables import Hamiltonian
from repro.quantum.statevector import apply_circuit
from repro.quantum.templates import hardware_efficient, initial_parameters

DEFAULT_LAYERS = 4


def gradient_workload(
    n_qubits: int = 12,
    n_layers: int = DEFAULT_LAYERS,
    seed: int = 0,
) -> Tuple[Circuit, np.ndarray, Hamiltonian]:
    """The gradient-throughput workload the substrate benchmarks time.

    A hardware-efficient ansatz with a TFIM observable — the shape whose
    parameter-shift gradient costs ``2 * n_params`` circuit executions and is
    what the batched execution engine accelerates.
    """
    circuit = hardware_efficient(n_qubits, n_layers)
    params = initial_parameters(circuit, np.random.default_rng(seed))
    hamiltonian = Hamiltonian.transverse_field_ising(n_qubits, 1.0, 0.8)
    return circuit, params, hamiltonian


def classifier_workload(
    n_qubits: int = 8,
    n_layers: int = 2,
    n_samples: int = 64,
    seed: int = 1234,
) -> Tuple[VariationalClassifier, ArrayDataset]:
    """The hybrid-classifier training workload (two moons, HEA ansatz)."""
    rng = np.random.default_rng(seed)
    dataset = make_moons(n_samples, rng, noise=0.1)
    model = VariationalClassifier(hardware_efficient(n_qubits, n_layers))
    return model, dataset


def classifier_trainer(
    n_qubits: int = 8,
    n_layers: int = 2,
    n_samples: int = 64,
    seed: int = 1234,
    batch_size: int = 8,
    shots: Optional[int] = None,
    lr: float = 0.05,
) -> Trainer:
    """A ready-to-run classifier trainer (deterministic for a given seed)."""
    model, dataset = classifier_workload(n_qubits, n_layers, n_samples, seed)
    config = TrainerConfig(batch_size=batch_size, seed=seed, shots=shots)
    return Trainer(model, Adam(lr=lr), dataset, config)


def vqe_workload(
    n_qubits: int = 10, n_layers: int = DEFAULT_LAYERS
) -> VQEModel:
    """The VQE workload: TFIM chain on a hardware-efficient ansatz."""
    hamiltonian = Hamiltonian.transverse_field_ising(n_qubits, 1.0, 0.8)
    return VQEModel(hardware_efficient(n_qubits, n_layers), hamiltonian)


def vqe_trainer(
    n_qubits: int = 10,
    n_layers: int = DEFAULT_LAYERS,
    seed: int = 7,
    lr: float = 0.05,
    capture_statevector: bool = True,
) -> Trainer:
    """A ready-to-run VQE trainer whose snapshots include the statevector."""
    model = vqe_workload(n_qubits, n_layers)
    config = TrainerConfig(seed=seed, capture_statevector=capture_statevector)
    return Trainer(model, Adam(lr=lr), config=config)


def hea_param_count(n_qubits: int, n_layers: int = DEFAULT_LAYERS) -> int:
    """Parameter count of the canonical hardware-efficient ansatz."""
    return hardware_efficient(n_qubits, n_layers).n_params


def synthetic_snapshot(
    n_qubits: int,
    seed: int = 0,
    n_layers: int = DEFAULT_LAYERS,
    statevector_kind: str = "haar",
    history_len: int = 200,
) -> TrainingSnapshot:
    """A snapshot of realistic shape for size/codec experiments.

    ``statevector_kind``:

    * ``"haar"`` — generic (incompressible) state,
    * ``"ansatz"`` — shallow-circuit state: amplitudes are *small* but not
      zero, so byte codecs barely compress it (their mantissas are still
      full-entropy) — lossy transforms and MPS are the tools for these,
    * ``"sparse"`` — low-excitation (W-state-like) superposition: all but
      ``n+1`` amplitudes are exactly zero, the case where byte codecs
      collapse the zero runs,
    * ``"none"`` — omit the statevector (parameters-only footprint).
    """
    rng = np.random.default_rng(seed)
    n_params = hea_param_count(n_qubits, n_layers)
    params = 0.1 * rng.standard_normal(n_params)

    optimizer = Adam(lr=0.05)
    optimizer.step(params, rng.standard_normal(n_params))

    if statevector_kind == "haar":
        statevector = haar_state(n_qubits, rng)
    elif statevector_kind == "ansatz":
        circuit = hardware_efficient(n_qubits, 1)
        statevector = apply_circuit(
            circuit, 0.1 * rng.standard_normal(circuit.n_params)
        )
    elif statevector_kind == "sparse":
        statevector = sparse_excitation_state(n_qubits, rng)
    elif statevector_kind == "none":
        statevector = None
    else:
        raise ValueError(f"unknown statevector_kind {statevector_kind!r}")

    return TrainingSnapshot(
        step=history_len,
        params=params,
        optimizer_state=optimizer.state_dict(),
        rng_state=capture_rng_state(rng),
        model_fingerprint="synthetic-" + str(n_qubits),
        loss_history=rng.standard_normal(history_len).cumsum(),
        statevector=statevector,
    )


def sparse_excitation_state(
    n_qubits: int, rng: np.random.Generator
) -> np.ndarray:
    """Random superposition over the ≤1-excitation subspace (n+1 amplitudes).

    Particle-number-conserving ansätze (chemistry workloads) live in such
    subspaces; the dense amplitude vector is mostly exact zeros, which is the
    regime where lossless byte codecs actually pay off.
    """
    dim = 2**n_qubits
    state = np.zeros(dim, dtype=np.complex128)
    indices = [0] + [1 << k for k in range(n_qubits)]
    weights = rng.standard_normal(len(indices)) + 1j * rng.standard_normal(
        len(indices)
    )
    state[indices] = weights / np.linalg.norm(weights)
    return state


def footprint_breakdown(n_qubits: int, n_layers: int = DEFAULT_LAYERS) -> dict:
    """Raw byte sizes of each snapshot component for Fig. 1."""
    n_params = hea_param_count(n_qubits, n_layers)
    params_bytes = n_params * 8
    adam_bytes = 3 * n_params * 8  # m, v, vmax
    statevector_bytes = (2**n_qubits) * 16
    return {
        "n_qubits": n_qubits,
        "n_params": n_params,
        "params_bytes": params_bytes,
        "optimizer_bytes": adam_bytes,
        "statevector_bytes": statevector_bytes,
        "total_bytes": params_bytes + adam_bytes + statevector_bytes,
    }
