"""Parameter-shift gradients through exact noisy (density-matrix) execution.

The shift rules survive noise: with a parameter-independent channel structure
the expectation ``E(theta) = tr(O Lambda(U(theta) rho U(theta)†))`` remains a
degree-1 trigonometric polynomial in each Pauli-rotation angle, so the same
two-/four-term rules used on statevectors are exact here.  This is the
gradient path of :class:`repro.ml.models.NoisyVQEModel`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff.parameter_shift import _occurrences
from repro.errors import GradientError
from repro.quantum import gates as _gates
from repro.quantum.circuit import Circuit
from repro.quantum.density import (
    apply_gate_density,
    apply_kraus_density,
    expectation_density,
    n_qubits_of_density,
    zero_density,
)
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import COMPLEX_DTYPE

_TWO_TERM_SHIFT = np.pi / 2
_TWO_TERM_COEFF = 0.5


def execute_density_with_overrides(
    circuit: Circuit,
    values: np.ndarray,
    observable,
    noise: Optional[NoiseModel] = None,
    overrides=None,
    initial: Optional[np.ndarray] = None,
) -> float:
    """Noisy expectation with selected parameter occurrences overridden."""
    if initial is None:
        rho = zero_density(circuit.n_qubits)
    else:
        if n_qubits_of_density(initial) != circuit.n_qubits:
            raise GradientError(
                f"initial density matrix has {n_qubits_of_density(initial)} "
                f"qubits, circuit expects {circuit.n_qubits}"
            )
        rho = np.array(initial, dtype=COMPLEX_DTYPE, copy=True)
    overrides = overrides or {}
    channels = noise.channels() if noise is not None else []
    for position, op in enumerate(circuit.ops):
        resolved = list(op.resolve(values))
        for slot, value in overrides.get(position, ()):
            resolved[slot] = value
        matrix = _gates.matrix_for(op.gate, resolved)
        rho = apply_gate_density(rho, matrix, op.wires, circuit.n_qubits)
        for wire in op.wires:
            for kraus in channels:
                rho = apply_kraus_density(rho, kraus, (wire,), circuit.n_qubits)
    return expectation_density(rho, observable)


def density_parameter_shift_gradient(
    circuit: Circuit,
    params,
    observable,
    noise: Optional[NoiseModel] = None,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact gradient of the noisy expectation via parameter shifts."""
    values = np.asarray(params, dtype=np.float64)
    grads = np.zeros(max(circuit.n_params, values.size))

    def evaluate(position: int, slot: int, shifted: float) -> float:
        return execute_density_with_overrides(
            circuit,
            values,
            observable,
            noise=noise,
            overrides={position: [(slot, shifted)]},
            initial=initial,
        )

    for position, slot, index, rule in _occurrences(circuit):
        base = float(circuit.ops[position].resolve(values)[slot])
        if rule == _gates.TWO_TERM:
            plus = evaluate(position, slot, base + _TWO_TERM_SHIFT)
            minus = evaluate(position, slot, base - _TWO_TERM_SHIFT)
            grads[index] += _TWO_TERM_COEFF * (plus - minus)
        elif rule == _gates.FOUR_TERM:
            c1, c2 = _gates.FOUR_TERM_COEFFS
            s1, s2 = _gates.FOUR_TERM_SHIFTS
            grads[index] += c1 * (
                evaluate(position, slot, base + s1)
                - evaluate(position, slot, base - s1)
            )
            grads[index] -= c2 * (
                evaluate(position, slot, base + s2)
                - evaluate(position, slot, base - s2)
            )
        else:  # pragma: no cover - registry only emits the two rules
            raise GradientError(f"unknown shift rule {rule!r}")
    return grads[: circuit.n_params] if circuit.n_params else grads
