"""Adjoint differentiation for statevector simulation.

Computes exact gradients in two sweeps over the circuit instead of the
O(#params) executions the shift rule needs.  Derivation: with
``E = <psi0| U1†..UN† O UN..U1 |psi0>``,

    dE/dtheta_k = 2 Re( <phi_k| dU_k |psi_{k-1}> ),
    |psi_{k-1}> = U_{k-1}..U1 |psi0>,
    |phi_k>     = U_{k+1}†..UN† O |psi_N>.

The backward sweep maintains ``psi`` and ``phi`` with one gate application
each per operation, plus one derivative-matrix application per trainable
slot.  Requires a Hermitian observable and an exact statevector (no shots).

Gate applications run on the in-place kernels of
:mod:`repro.quantum.kernels`; gate and derivative matrices come from its
per-``(gate, params)`` caches, so the forward pass, the unitary undo, and the
adjoint undo of the same operation resolve the matrix once.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GradientError
from repro.quantum import kernels as _kernels
from repro.quantum.circuit import Circuit, Param
from repro.quantum.observables import Hamiltonian, PauliString, Projector
from repro.quantum.statevector import (
    COMPLEX_DTYPE,
    zero_state,
)


def _apply_observable(observable, state: np.ndarray) -> np.ndarray:
    """Return ``O |state>`` for a PauliString or Hamiltonian."""
    if isinstance(observable, (PauliString, Projector)):
        return observable.apply(state)
    if isinstance(observable, Hamiltonian):
        out = np.zeros_like(state)
        for term in observable.terms:
            out += term.apply(state)
        return out
    raise GradientError(f"unsupported observable type {type(observable).__name__}")


def adjoint_gradient(
    circuit: Circuit,
    params,
    observable,
    initial_state: Optional[np.ndarray] = None,
    return_value: bool = False,
):
    """Exact gradient of ``<observable>``; optionally also the value.

    Returns ``grads`` or ``(value, grads)`` when ``return_value`` is true.
    """
    values = np.asarray(params, dtype=np.float64)
    n = circuit.n_qubits
    psi = (
        zero_state(n)
        if initial_state is None
        else np.array(initial_state, dtype=COMPLEX_DTYPE, copy=True)
    )
    scratch = _kernels.make_scratch(psi.size)
    for op in circuit.ops:
        _kernels.apply_matrix_inplace(
            psi, _kernels.cached_matrix(op.gate, op.resolve(values)), op.wires, n, scratch
        )

    lam = _apply_observable(observable, psi)
    value = float(np.vdot(psi, lam).real)
    grads = np.zeros(max(circuit.n_params, values.size))

    for op in reversed(circuit.ops):
        resolved = op.resolve(values)
        dagger = _kernels.cached_matrix(op.gate, resolved).conj().T
        _kernels.apply_matrix_inplace(psi, dagger, op.wires, n, scratch)
        if op.is_trainable:
            for slot, value_ref in enumerate(op.params):
                if not isinstance(value_ref, Param):
                    continue
                derivative = _kernels.cached_derivative(op.gate, resolved, slot)
                mu = psi.copy()
                _kernels.apply_matrix_inplace(mu, derivative, op.wires, n, scratch)
                grads[value_ref.index] += 2.0 * float(np.vdot(lam, mu).real)
        _kernels.apply_matrix_inplace(lam, dagger, op.wires, n, scratch)

    grads = grads[: circuit.n_params] if circuit.n_params else grads
    if return_value:
        return value, grads
    return grads
