"""Finite-difference gradients (numerical oracle for tests).

Bumping entry ``i`` of the parameter vector is equivalent to overriding every
gate occurrence whose :class:`~repro.quantum.circuit.Param` slot references
``i``, so all bumped executions of a gradient run as one batched sweep through
:func:`repro.quantum.kernels.run_shifted_batch` — the circuit's unchanged
matrices are resolved once and shared across the batch.  ``engine="reference"``
keeps the original one-execution-per-bump loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import GradientError
from repro.quantum import kernels as _kernels
from repro.quantum.circuit import Circuit, Param
from repro.autodiff._execute import execute_with_overrides, shifted_batch_energies


def _occurrences_by_index(circuit: Circuit) -> Dict[int, List[Tuple[int, int]]]:
    """vector index -> [(op_position, param_slot), ...] for trainable slots."""
    out: Dict[int, List[Tuple[int, int]]] = {}
    for position, op in enumerate(circuit.ops):
        for slot, value in enumerate(op.params):
            if isinstance(value, Param):
                out.setdefault(value.index, []).append((position, slot))
    return out


def _bump_overrides(
    occurrences: List[Tuple[int, int]], value: float
) -> Dict[int, List[Tuple[int, float]]]:
    overrides: Dict[int, List[Tuple[int, float]]] = {}
    for position, slot in occurrences:
        overrides.setdefault(position, []).append((slot, value))
    return overrides


def finite_difference_gradient(
    circuit: Circuit,
    params,
    observable,
    initial_state: Optional[np.ndarray] = None,
    step: float = 1e-6,
    scheme: str = "central",
    engine: str = "fast",
    shard_workers: Optional[int] = None,
) -> np.ndarray:
    """Numerical gradient by central or forward differences on the vector.

    ``shard_workers`` >= 2 fans the bumped-execution batch out across the
    gradient-shard worker pool (``None`` defers to the ambient execution
    scope, then ``QCKPT_SHARD_WORKERS``), merging bitwise identically to the
    in-process sweep.
    """
    if step <= 0:
        raise GradientError(f"step must be > 0, got {step}")
    if scheme not in {"central", "forward"}:
        raise GradientError(f"scheme must be 'central' or 'forward', got {scheme!r}")
    values = np.asarray(params, dtype=np.float64).copy()
    grads = np.zeros(values.size)

    if engine == "reference":
        return _reference_finite_difference(
            circuit, values, observable, initial_state, step, scheme, grads
        )

    occurrences = _occurrences_by_index(circuit)
    active = [i for i in range(values.size) if i in occurrences]
    if not active:
        return grads

    batch: List[dict] = []
    for index in active:
        batch.append(_bump_overrides(occurrences[index], values[index] + step))
        if scheme == "central":
            batch.append(_bump_overrides(occurrences[index], values[index] - step))

    from repro.quantum import engines

    workers = engines.resolve_shard_workers(shard_workers)
    if workers >= 2 and len(batch) >= 4:
        from repro.quantum.engines import sharding

        energies = sharding.sharded_energies(
            circuit,
            values,
            batch,
            observable,
            initial_state=initial_state,
            workers=workers,
        )
    else:
        energies = shifted_batch_energies(
            circuit, values, batch, observable, initial_state
        )

    if scheme == "central":
        for k, index in enumerate(active):
            grads[index] = (energies[2 * k] - energies[2 * k + 1]) / (2 * step)
    else:
        base = float(
            observable.expectation(
                _kernels.run(circuit, values, initial_state=initial_state)
            )
        )
        for k, index in enumerate(active):
            grads[index] = (energies[k] - base) / step
    return grads


def _reference_finite_difference(
    circuit: Circuit,
    values: np.ndarray,
    observable,
    initial_state: Optional[np.ndarray],
    step: float,
    scheme: str,
    grads: np.ndarray,
) -> np.ndarray:
    """The seed path: one full execution per bumped parameter vector."""

    def evaluate(vector: np.ndarray) -> float:
        return execute_with_overrides(
            circuit,
            vector,
            observable,
            initial_state=initial_state,
            engine="reference",
        )

    base = evaluate(values) if scheme == "forward" else 0.0
    for index in range(values.size):
        bumped = values.copy()
        bumped[index] += step
        upper = evaluate(bumped)
        if scheme == "central":
            bumped[index] = values[index] - step
            lower = evaluate(bumped)
            grads[index] = (upper - lower) / (2 * step)
        else:
            grads[index] = (upper - base) / step
    return grads
