"""Finite-difference gradients (numerical oracle for tests)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GradientError
from repro.quantum.circuit import Circuit
from repro.autodiff._execute import execute_with_overrides


def finite_difference_gradient(
    circuit: Circuit,
    params,
    observable,
    initial_state: Optional[np.ndarray] = None,
    step: float = 1e-6,
    scheme: str = "central",
) -> np.ndarray:
    """Numerical gradient by central or forward differences on the vector."""
    if step <= 0:
        raise GradientError(f"step must be > 0, got {step}")
    if scheme not in {"central", "forward"}:
        raise GradientError(f"scheme must be 'central' or 'forward', got {scheme!r}")
    values = np.asarray(params, dtype=np.float64).copy()

    def evaluate(vector: np.ndarray) -> float:
        return execute_with_overrides(
            circuit, vector, observable, initial_state=initial_state
        )

    grads = np.zeros(values.size)
    base = evaluate(values) if scheme == "forward" else 0.0
    for index in range(values.size):
        bumped = values.copy()
        bumped[index] += step
        upper = evaluate(bumped)
        if scheme == "central":
            bumped[index] = values[index] - step
            lower = evaluate(bumped)
            grads[index] = (upper - lower) / (2 * step)
        else:
            grads[index] = (upper - base) / step
    return grads
