"""Shared execution helper for shift-rule differentiators.

Executes a circuit while *overriding* individual parameter slots of specific
operation occurrences.  Overriding occurrences (rather than entries of the
parameter vector) is what makes the shift rules correct for circuits where one
trainable parameter feeds several gates (e.g. QAOA): each occurrence is
shifted independently and contributions are summed by the chain rule.

Two engines are available: ``"fast"`` routes through the in-place kernels and
matrix cache of :mod:`repro.quantum.kernels`; ``"reference"`` preserves the
original per-gate ``tensordot`` loop as the oracle the fast path is
benchmarked and property-tested against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum import gates as _gates
from repro.quantum import kernels as _kernels
from repro.quantum.circuit import Circuit
from repro.quantum.sampling import estimate_expectation, estimate_expectation_batch
from repro.quantum.statevector import COMPLEX_DTYPE, apply_gate, zero_state

# overrides: {op_position: [(param_slot, value), ...]}
Overrides = Dict[int, List[Tuple[int, float]]]

# Cap on the bytes one shifted-execution batch may hold (chunked above this).
_MAX_BATCH_BYTES = 1 << 28


def _reference_state(
    circuit: Circuit,
    values: np.ndarray,
    overrides: Overrides,
    initial_state: Optional[np.ndarray],
) -> np.ndarray:
    """The seed execution path: per-gate tensordot with rebuilt matrices."""
    state = (
        zero_state(circuit.n_qubits)
        if initial_state is None
        else np.array(initial_state, dtype=COMPLEX_DTYPE, copy=True)
    )
    for position, op in enumerate(circuit.ops):
        resolved = list(op.resolve(values))
        for slot, value in overrides.get(position, ()):
            resolved[slot] = value
        matrix = _gates.matrix_for(op.gate, resolved)
        state = apply_gate(state, matrix, op.wires, circuit.n_qubits)
    return state


def execute_with_overrides(
    circuit: Circuit,
    values: np.ndarray,
    observable,
    overrides: Optional[Overrides] = None,
    initial_state: Optional[np.ndarray] = None,
    shots: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    engine: str = "fast",
) -> float:
    """Expectation value with selected parameter occurrences overridden."""
    overrides = overrides or {}
    if engine == "reference":
        state = _reference_state(circuit, values, overrides, initial_state)
    else:
        state = _kernels.run(
            circuit, values, initial_state=initial_state, overrides=overrides
        )
    if shots is None:
        return float(observable.expectation(state))
    if rng is None:
        raise ValueError("shot-based execution requires an explicit rng")
    return float(estimate_expectation(state, observable, shots, rng))


def shifted_batch_energies(
    circuit: Circuit,
    values: np.ndarray,
    batch: Sequence[Overrides],
    observable,
    initial_state: Optional[np.ndarray] = None,
    shots: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Expectation values of a batch of occurrence-overridden executions.

    The single engine under the batched shift-rule differentiators *and* the
    gradient-shard workers: one amplitude-major sweep per chunk (chunked so a
    wide batch on a large state stays within ``_MAX_BATCH_BYTES``), energies
    in batch order.  Because every kernel on this path is invariant to the
    batch width, the returned energies are bitwise identical whether the
    batch arrives whole or split into shards of width >= 2.
    """
    if not batch:
        return np.zeros(0)
    dim = 1 << circuit.n_qubits
    chunk_size = max(1, _MAX_BATCH_BYTES // (16 * dim))
    batch_expectation = (
        getattr(observable, "expectation_batch", None) if shots is None else None
    )
    out = np.empty(len(batch), dtype=np.float64)
    for start in range(0, len(batch), chunk_size):
        chunk = batch[start : start + chunk_size]
        states = _kernels.run_shifted_batch(
            circuit,
            values,
            chunk,
            initial_state,
            columns=batch_expectation is not None or shots is not None,
        )
        if batch_expectation is not None:
            energies = np.asarray(
                batch_expectation(states, columns=True), dtype=np.float64
            )
        elif shots is None:
            energies = np.array(
                [float(observable.expectation(s)) for s in states]
            )
        else:
            # Batched Born probabilities (one rotation sweep + one
            # |amplitudes|^2 per measurement group for the whole chunk);
            # draws stay in per-shift order on the shared rng.
            energies = estimate_expectation_batch(
                states, observable, shots, rng, columns=True
            )
        out[start : start + len(chunk)] = energies
    return out
