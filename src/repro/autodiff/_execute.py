"""Shared execution helper for shift-rule differentiators.

Executes a circuit while *overriding* individual parameter slots of specific
operation occurrences.  Overriding occurrences (rather than entries of the
parameter vector) is what makes the shift rules correct for circuits where one
trainable parameter feeds several gates (e.g. QAOA): each occurrence is
shifted independently and contributions are summed by the chain rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum import gates as _gates
from repro.quantum.circuit import Circuit
from repro.quantum.sampling import estimate_expectation
from repro.quantum.statevector import COMPLEX_DTYPE, apply_gate, zero_state

# overrides: {op_position: [(param_slot, value), ...]}
Overrides = Dict[int, List[Tuple[int, float]]]


def execute_with_overrides(
    circuit: Circuit,
    values: np.ndarray,
    observable,
    overrides: Optional[Overrides] = None,
    initial_state: Optional[np.ndarray] = None,
    shots: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Expectation value with selected parameter occurrences overridden."""
    state = (
        zero_state(circuit.n_qubits)
        if initial_state is None
        else np.array(initial_state, dtype=COMPLEX_DTYPE, copy=True)
    )
    overrides = overrides or {}
    for position, op in enumerate(circuit.ops):
        resolved = list(op.resolve(values))
        for slot, value in overrides.get(position, ()):
            resolved[slot] = value
        matrix = _gates.matrix_for(op.gate, resolved)
        state = apply_gate(state, matrix, op.wires, circuit.n_qubits)
    if shots is None:
        return float(observable.expectation(state))
    if rng is None:
        raise ValueError("shot-based execution requires an explicit rng")
    return float(estimate_expectation(state, observable, shots, rng))
