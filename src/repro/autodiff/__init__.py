"""Gradient engines for variational circuits.

Three differentiators with one shared signature
``gradient(circuit, params, observable, ...) -> np.ndarray``:

* :func:`repro.autodiff.adjoint.adjoint_gradient` — exact, O(#ops) statevector
  passes; the default for simulator training.
* :func:`repro.autodiff.parameter_shift.parameter_shift_gradient` — exact for
  gates with equidistant generator spectra, and the only option on shot-based
  executions; supports two- and four-term rules and shared parameters.
* :func:`repro.autodiff.finite_difference.finite_difference_gradient` — the
  numerical fallback used in tests as an independent oracle.
"""

from repro.autodiff.adjoint import adjoint_gradient
from repro.autodiff.finite_difference import finite_difference_gradient
from repro.autodiff.parameter_shift import parameter_shift_gradient

__all__ = [
    "adjoint_gradient",
    "parameter_shift_gradient",
    "finite_difference_gradient",
]
