"""Parameter-shift gradients (two- and four-term rules).

For a gate ``U(theta) = exp(-i theta G / 2)`` whose generator has eigenvalues
``±1/2`` the exact gradient is the two-term rule::

    dE/dtheta = (E(theta + pi/2) - E(theta - pi/2)) / 2

Controlled rotations have generator spectrum ``{0, ±1/2}`` and need the
four-term rule with the standard coefficients from
:data:`repro.quantum.gates.FOUR_TERM_COEFFS`.

The rule is applied per *occurrence*: when one trainable parameter feeds
multiple gates, each gate is shifted separately and contributions summed
(chain rule).  This differentiator works unchanged for shot-based executions,
which is why hardware training uses it; pass ``shots``/``rng`` for that mode.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GradientError
from repro.quantum import gates as _gates
from repro.quantum.circuit import Circuit, Param
from repro.autodiff._execute import execute_with_overrides

_TWO_TERM_SHIFT = math.pi / 2
_TWO_TERM_COEFF = 0.5


def _occurrences(circuit: Circuit) -> List[Tuple[int, int, int, str]]:
    """(op_position, param_slot, vector_index, shift_rule) for trainable slots."""
    out = []
    for position, op in enumerate(circuit.ops):
        spec = _gates.spec_for(op.gate)
        for slot, value in enumerate(op.params):
            if isinstance(value, Param):
                if spec.shift_rule is None:
                    raise GradientError(
                        f"gate {op.gate!r} has no parameter-shift rule"
                    )
                out.append((position, slot, value.index, spec.shift_rule))
    return out


def parameter_shift_gradient(
    circuit: Circuit,
    params,
    observable,
    initial_state: Optional[np.ndarray] = None,
    shots: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Gradient of ``<observable>`` with respect to the parameter vector."""
    values = np.asarray(params, dtype=np.float64)
    grads = np.zeros(max(circuit.n_params, values.size))

    def evaluate(position: int, slot: int, shifted: float) -> float:
        return execute_with_overrides(
            circuit,
            values,
            observable,
            overrides={position: [(slot, shifted)]},
            initial_state=initial_state,
            shots=shots,
            rng=rng,
        )

    for position, slot, index, rule in _occurrences(circuit):
        base = float(circuit.ops[position].resolve(values)[slot])
        if rule == _gates.TWO_TERM:
            plus = evaluate(position, slot, base + _TWO_TERM_SHIFT)
            minus = evaluate(position, slot, base - _TWO_TERM_SHIFT)
            grads[index] += _TWO_TERM_COEFF * (plus - minus)
        elif rule == _gates.FOUR_TERM:
            c1, c2 = _gates.FOUR_TERM_COEFFS
            s1, s2 = _gates.FOUR_TERM_SHIFTS
            grads[index] += c1 * (
                evaluate(position, slot, base + s1)
                - evaluate(position, slot, base - s1)
            )
            grads[index] -= c2 * (
                evaluate(position, slot, base + s2)
                - evaluate(position, slot, base - s2)
            )
        else:  # pragma: no cover - registry only emits the two rules
            raise GradientError(f"unknown shift rule {rule!r}")
    return grads[: circuit.n_params] if circuit.n_params else grads


def shift_rule_evaluations(circuit: Circuit) -> int:
    """Number of circuit executions one gradient evaluation costs."""
    total = 0
    for _, _, _, rule in _occurrences(circuit):
        total += 2 if rule == _gates.TWO_TERM else 4
    return total
