"""Parameter-shift gradients (two- and four-term rules), batched.

For a gate ``U(theta) = exp(-i theta G / 2)`` whose generator has eigenvalues
``±1/2`` the exact gradient is the two-term rule::

    dE/dtheta = (E(theta + pi/2) - E(theta - pi/2)) / 2

Controlled rotations have generator spectrum ``{0, ±1/2}`` and need the
four-term rule with the standard coefficients from
:data:`repro.quantum.gates.FOUR_TERM_COEFFS`.

The rule is applied per *occurrence*: when one trainable parameter feeds
multiple gates, each gate is shifted separately and contributions summed
(chain rule).  This differentiator works unchanged for shot-based executions,
which is why hardware training uses it; pass ``shots``/``rng`` for that mode.

Execution is *batched*: every shifted circuit shares every gate except the one
overridden occurrence, so all ``2P`` (or ``4P``) evaluations run as one
``(B, 2**n)`` sweep through :func:`repro.quantum.kernels.run_shifted_batch`
with every unchanged matrix resolved once from the matrix cache.  Batches are
chunked so memory stays bounded for wide circuits.  ``engine="reference"``
preserves the original one-execution-per-shift loop as the benchmarking and
testing oracle.

Analytic gradients (``shots is None``) can additionally *shard* the batch
across worker processes (``shard_workers`` argument, the ambient
:func:`repro.quantum.engines.execution_scope`, or ``QCKPT_SHARD_WORKERS``):
contiguous shards of the same batch are executed by
:mod:`repro.quantum.engines.sharding` workers and merged in plan order, which
is bitwise identical to the single-process path because every kernel on the
shifted-batch path is invariant to batch width.  Shot-based gradients never
shard — all shifted estimates draw from one shared rng stream.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GradientError
from repro.quantum import gates as _gates
from repro.quantum.circuit import Circuit, Param
from repro.autodiff._execute import (
    _MAX_BATCH_BYTES,
    execute_with_overrides,
    shifted_batch_energies,
)

_TWO_TERM_SHIFT = math.pi / 2
_TWO_TERM_COEFF = 0.5


def _occurrences(circuit: Circuit) -> List[Tuple[int, int, int, str]]:
    """(op_position, param_slot, vector_index, shift_rule) for trainable slots."""
    out = []
    for position, op in enumerate(circuit.ops):
        spec = _gates.spec_for(op.gate)
        for slot, value in enumerate(op.params):
            if isinstance(value, Param):
                if spec.shift_rule is None:
                    raise GradientError(
                        f"gate {op.gate!r} has no parameter-shift rule"
                    )
                out.append((position, slot, value.index, spec.shift_rule))
    return out


def _shift_plan(
    circuit: Circuit, values: np.ndarray
) -> Tuple[List[Tuple[int, float]], List[dict]]:
    """Per-evaluation (vector_index, coefficient) plan plus override dicts.

    The evaluation order matches the sequential reference loop exactly, so
    shot-based runs consume the random stream identically on both engines.
    """
    plan: List[Tuple[int, float]] = []
    batch: List[dict] = []
    for position, slot, index, rule in _occurrences(circuit):
        base = float(circuit.ops[position].resolve(values)[slot])
        if rule == _gates.TWO_TERM:
            entries = [
                (_TWO_TERM_COEFF, base + _TWO_TERM_SHIFT),
                (-_TWO_TERM_COEFF, base - _TWO_TERM_SHIFT),
            ]
        elif rule == _gates.FOUR_TERM:
            c1, c2 = _gates.FOUR_TERM_COEFFS
            s1, s2 = _gates.FOUR_TERM_SHIFTS
            entries = [
                (c1, base + s1),
                (-c1, base - s1),
                (-c2, base + s2),
                (c2, base - s2),
            ]
        else:  # pragma: no cover - registry only emits the two rules
            raise GradientError(f"unknown shift rule {rule!r}")
        for coeff, shifted in entries:
            plan.append((index, coeff))
            batch.append({position: [(slot, shifted)]})
    return plan, batch


def _shifted_energies(
    circuit: Circuit,
    values: np.ndarray,
    batch: List[dict],
    observable,
    initial_state: Optional[np.ndarray],
    shots: Optional[int],
    rng: Optional[np.random.Generator],
    shard_workers: Optional[int],
) -> np.ndarray:
    """Batch energies, sharded across worker processes when requested.

    Sharding applies only to analytic executions (one shared rng stream makes
    shot-based shards order-dependent) and needs at least two shards of
    width >= 2 to be worth a pickle round-trip.
    """
    from repro.quantum import engines

    workers = engines.resolve_shard_workers(shard_workers) if shots is None else 0
    if workers >= 2 and len(batch) >= 4:
        from repro.quantum.engines import sharding

        return sharding.sharded_energies(
            circuit,
            values,
            batch,
            observable,
            initial_state=initial_state,
            workers=workers,
        )
    return shifted_batch_energies(
        circuit, values, batch, observable, initial_state, shots, rng
    )


def parameter_shift_gradient(
    circuit: Circuit,
    params,
    observable,
    initial_state: Optional[np.ndarray] = None,
    shots: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    engine: str = "fast",
    shard_workers: Optional[int] = None,
) -> np.ndarray:
    """Gradient of ``<observable>`` with respect to the parameter vector.

    ``shard_workers`` >= 2 fans the shifted batch out across worker
    processes (``None`` defers to the ambient execution scope, then the
    ``QCKPT_SHARD_WORKERS`` environment knob; 0/1 stay in-process).
    """
    values = np.asarray(params, dtype=np.float64)
    grads = np.zeros(max(circuit.n_params, values.size))
    if shots is not None and rng is None:
        raise ValueError("shot-based execution requires an explicit rng")

    if engine == "reference":
        _reference_parameter_shift(
            circuit, values, observable, grads, initial_state, shots, rng
        )
        return grads[: circuit.n_params] if circuit.n_params else grads

    plan, batch = _shift_plan(circuit, values)
    if plan:
        energies = _shifted_energies(
            circuit,
            values,
            batch,
            observable,
            initial_state,
            shots,
            rng,
            shard_workers,
        )
        for (index, coeff), value in zip(plan, energies):
            grads[index] += coeff * value
    return grads[: circuit.n_params] if circuit.n_params else grads


def _reference_parameter_shift(
    circuit: Circuit,
    values: np.ndarray,
    observable,
    grads: np.ndarray,
    initial_state: Optional[np.ndarray],
    shots: Optional[int],
    rng: Optional[np.random.Generator],
) -> None:
    """The seed path: one full (reference-kernel) execution per shift."""

    def evaluate(position: int, slot: int, shifted: float) -> float:
        return execute_with_overrides(
            circuit,
            values,
            observable,
            overrides={position: [(slot, shifted)]},
            initial_state=initial_state,
            shots=shots,
            rng=rng,
            engine="reference",
        )

    for position, slot, index, rule in _occurrences(circuit):
        base = float(circuit.ops[position].resolve(values)[slot])
        if rule == _gates.TWO_TERM:
            plus = evaluate(position, slot, base + _TWO_TERM_SHIFT)
            minus = evaluate(position, slot, base - _TWO_TERM_SHIFT)
            grads[index] += _TWO_TERM_COEFF * (plus - minus)
        elif rule == _gates.FOUR_TERM:
            c1, c2 = _gates.FOUR_TERM_COEFFS
            s1, s2 = _gates.FOUR_TERM_SHIFTS
            grads[index] += c1 * (
                evaluate(position, slot, base + s1)
                - evaluate(position, slot, base - s1)
            )
            grads[index] -= c2 * (
                evaluate(position, slot, base + s2)
                - evaluate(position, slot, base - s2)
            )
        else:  # pragma: no cover - registry only emits the two rules
            raise GradientError(f"unknown shift rule {rule!r}")


def shift_rule_evaluations(circuit: Circuit) -> int:
    """Number of circuit executions one gradient evaluation costs."""
    total = 0
    for _, _, _, rule in _occurrences(circuit):
        total += 2 if rule == _gates.TWO_TERM else 4
    return total
