"""Store self-healing: content-address scrub, quarantine, and repair.

``latest_valid`` already *tolerates* damage — it walks back to the newest
restorable checkpoint — but tolerance is not health: a rotted chunk stays
rotted until an operator notices.  :class:`StoreScrubber` closes that loop
for chunk stores:

* walk every ``job-*`` checkpoint manifest and every chunk they reference,
* verify each object **by content** — manifests must parse with the right
  version, chunks must decode and hash back to their own content address
  (the same end-to-end check a restore applies),
* gather the bytes of every *leaf* copy by walking the backend decorator
  graph (replicas, tiers, shards, wrappers), so a corruption hidden behind
  a replicated ``read()`` fast path is still found,
* in repair mode: preserve the corrupt bytes under the ``quarantine-``
  namespace (evidence, never silently destroyed), rewrite the object with a
  surviving valid copy through the top-level backend — which re-replicates
  it across every replica and tier in one write — and re-assert the repaired
  manifest's placement-journal pin,
* ``fsck`` is the same walk with ``repair=False``: report, touch nothing.

Backends are flat namespaces (no directories), so "the quarantine
directory" is the ``quarantine-<original-name>`` name prefix; on a
:class:`~repro.storage.local.LocalDirectoryBackend` these appear as
``quarantine-*`` files next to the store's objects.

When the store has a :class:`~repro.storage.placement.PlacementJournal`, a
repairing scrub runs under the journal's ``scrub`` lease so two daemons
sharing the store never repair (and double-quarantine) concurrently; a
scrubber that cannot get the lease returns immediately, naming the holder.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.codecs import get_codec
from repro.core.restore import CONTENT_ADDRESS_PREFIX, content_address
from repro.errors import ReproError, StorageError
from repro.faults.crashpoints import crash_point, register_crash_point
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.service.chunkstore import MANIFEST_VERSION
from repro.storage.backend import StorageBackend

_log = get_logger("scrub")

QUARANTINE_PREFIX = "quarantine-"
LEASE_SCRUB = "scrub"

CP_QUARANTINE_AFTER_WRITE = register_crash_point(
    "scrub.quarantine.after-write",
    "die after quarantining corrupt bytes but before rewriting the object "
    "(store still damaged; a re-run must finish the repair)",
)
CP_REPAIR_BEFORE_WRITE = register_crash_point(
    "scrub.repair.before-write",
    "die between quarantine and the repairing rewrite of a corrupt object",
)


@dataclass
class ScrubFinding:
    """One unhealthy object (or copy) the walk discovered."""

    kind: str  # corrupt-chunk | missing-chunk | damaged-manifest |
    #            divergent-copies | orphan-chunk
    name: str
    detail: str
    repaired: bool = False
    quarantined: Optional[str] = None  # quarantine object name, if written


@dataclass
class ScrubReport:
    """Outcome of one scrub/fsck pass."""

    repair: bool
    findings: List[ScrubFinding] = field(default_factory=list)
    manifests_checked: int = 0
    chunks_checked: int = 0
    repaired: int = 0
    quarantined: int = 0
    #: manifest object names whose checkpoints cannot be fully restored
    #: (a referenced chunk has no valid copy anywhere).
    unrestorable: List[str] = field(default_factory=list)
    #: set when a repairing scrub skipped because another owner holds the
    #: journal's scrub lease.
    lease_holder: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.findings and self.lease_holder is None

    @property
    def unrepaired(self) -> int:
        return sum(1 for f in self.findings if not f.repaired)

    def summary(self) -> str:
        mode = "scrub" if self.repair else "fsck"
        if self.lease_holder is not None:
            return (
                f"{mode}: skipped — scrub lease held by "
                f"{self.lease_holder!r}"
            )
        lines = [
            f"{mode}: {self.manifests_checked} manifest(s), "
            f"{self.chunks_checked} chunk(s) checked — "
            f"{len(self.findings)} finding(s), {self.repaired} repaired, "
            f"{self.quarantined} quarantined"
        ]
        for finding in self.findings:
            state = "repaired" if finding.repaired else "UNREPAIRED"
            if not self.repair:
                state = "found"
            lines.append(
                f"  [{finding.kind}] {finding.name} ({state}): "
                f"{finding.detail}"
            )
        for name in self.unrestorable:
            lines.append(f"  checkpoint {name} is NOT restorable")
        return "\n".join(lines)


def _leaf_copies(backend: StorageBackend, name: str) -> List[bytes]:
    """Bytes of every physical copy of ``name``, via the decorator graph.

    Recurses through replicas, shards, tiers, and single-inner wrappers
    down to leaf backends; a leaf contributes its copy if it has one.
    Failing leaves are skipped — an unreadable copy is the same as a
    missing one for repair purposes.
    """
    replicas = getattr(backend, "replicas", None)
    if isinstance(replicas, list) and replicas:
        return [c for r in replicas for c in _leaf_copies(r, name)]
    shards = getattr(backend, "shards", None)
    if isinstance(shards, list) and shards:
        return [c for s in shards for c in _leaf_copies(s, name)]
    fast = getattr(backend, "fast", None)
    slow = getattr(backend, "slow", None)
    if isinstance(fast, StorageBackend) and isinstance(slow, StorageBackend):
        return _leaf_copies(fast, name) + _leaf_copies(slow, name)
    inner = getattr(backend, "inner", None)
    if isinstance(inner, StorageBackend):
        return _leaf_copies(inner, name)
    try:
        if backend.exists(name):
            return [backend.read(name)]
    except StorageError:
        pass
    return []


class StoreScrubber:
    """Walks a chunk store's namespace verifying (and repairing) content."""

    def __init__(
        self,
        backend: StorageBackend,
        repair: bool = False,
        journal=None,
        metrics: Optional[MetricsRegistry] = None,
        metadb=None,
    ):
        self.backend = backend
        self.repair = bool(repair)
        self.journal = journal
        # Optional repro.storage.metadb.MetaDB over this store: repairs
        # that change a manifest's fate re-index it, quarantines of
        # unrestorable manifests invalidate its rows — index and files
        # must agree after a repair pass.
        self.metadb = metadb
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- validators -------------------------------------------------------------

    @staticmethod
    def _manifest_valid(data: bytes) -> bool:
        try:
            manifest = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return False
        return (
            isinstance(manifest, dict)
            and manifest.get("version") == MANIFEST_VERSION
            and isinstance(manifest.get("tensors"), list)
        )

    @staticmethod
    def _chunk_valid(address: str, codec_name: str, data: bytes) -> bool:
        try:
            raw = get_codec(codec_name).decode(data)
        except ReproError:
            return False
        return content_address(raw, codec_name) == address

    # -- the walk ---------------------------------------------------------------

    def run(self) -> ScrubReport:
        report = ScrubReport(repair=self.repair)
        if self.repair and self.journal is not None:
            if not self.journal.acquire_lease(LEASE_SCRUB):
                report.lease_holder = self.journal.lease_holder(LEASE_SCRUB)
                _log.warning(
                    "lease-held",
                    lease=LEASE_SCRUB,
                    holder=report.lease_holder,
                )
                return report
            _log.debug("lease-acquired", lease=LEASE_SCRUB)
        try:
            self._run(report)
        finally:
            if self.repair and self.journal is not None:
                self.journal.release_lease(LEASE_SCRUB)
                _log.debug("lease-released", lease=LEASE_SCRUB)
        self._record_metrics(report)
        return report

    def _record_metrics(self, report: ScrubReport) -> None:
        """Fold one pass's findings into the registry (``scrub.*`` series)."""
        self.metrics.counter("scrub.runs").inc()
        self.metrics.counter("scrub.manifests_checked").inc(
            report.manifests_checked
        )
        self.metrics.counter("scrub.chunks_checked").inc(
            report.chunks_checked
        )
        self.metrics.counter("scrub.repaired").inc(report.repaired)
        self.metrics.counter("scrub.quarantined").inc(report.quarantined)
        self.metrics.counter("scrub.unrestorable").inc(
            len(report.unrestorable)
        )
        for finding in report.findings:
            self.metrics.counter("scrub.findings", kind=finding.kind).inc()
        _log.info(
            "pass-complete",
            mode="scrub" if self.repair else "fsck",
            manifests=report.manifests_checked,
            chunks=report.chunks_checked,
            findings=len(report.findings),
            repaired=report.repaired,
            quarantined=report.quarantined,
        )

    def _run(self, report: ScrubReport) -> None:
        # Pass 1: manifests.  Damaged manifests are findings themselves and
        # cannot contribute chunk references.
        referenced: Dict[str, Tuple[str, List[str]]] = {}
        all_parsed = True
        for object_name in self.backend.list("job-"):
            report.manifests_checked += 1
            good = self._check_object(
                report,
                object_name,
                self._manifest_valid,
                kind="damaged-manifest",
            )
            if good is None:
                all_parsed = False
                if object_name not in report.unrestorable:
                    report.unrestorable.append(object_name)
                continue
            manifest = json.loads(good.decode("utf-8"))
            codec_name = str(manifest.get("codec", "zlib-6"))
            for entry in manifest.get("tensors", []):
                for block in entry.get("blocks", []):
                    address = block.get("chunk")
                    if not address:
                        continue
                    referenced.setdefault(address, (codec_name, []))
                    referenced[address][1].append(object_name)

        # Pass 2: referenced chunks, verified by content address.
        for address in sorted(referenced):
            codec_name, referrers = referenced[address]
            report.chunks_checked += 1
            if not self.backend.exists(address):
                report.findings.append(
                    ScrubFinding(
                        kind="missing-chunk",
                        name=address,
                        detail=(
                            f"referenced by {len(referrers)} manifest(s), "
                            "no copy anywhere"
                        ),
                    )
                )
                self._mark_unrestorable(report, referrers)
                continue
            good = self._check_object(
                report,
                address,
                lambda data, a=address, c=codec_name: self._chunk_valid(
                    a, c, data
                ),
                kind="corrupt-chunk",
            )
            if good is None:
                self._mark_unrestorable(report, referrers)

        # Pass 3: orphan chunks (referenced by nothing).  Informational —
        # gc owns deletion — and only meaningful when every manifest parsed,
        # otherwise "unreferenced" may just mean "referrer unreadable".
        if all_parsed:
            for address in self.backend.list(CONTENT_ADDRESS_PREFIX):
                if address not in referenced:
                    report.findings.append(
                        ScrubFinding(
                            kind="orphan-chunk",
                            name=address,
                            detail="referenced by no manifest (gc candidate)",
                        )
                    )

    def _check_object(
        self, report: ScrubReport, name: str, validate, kind: str
    ) -> Optional[bytes]:
        """Verify one object across all its copies; repair when possible.

        Returns the valid bytes for ``name`` (after repair, if any), or
        ``None`` when no copy anywhere passes validation.
        """
        copies = _leaf_copies(self.backend, name)
        valid = [c for c in copies if validate(c)]
        good = valid[0] if valid else None
        bad = [c for c in copies if not validate(c)]
        if good is not None and not bad and all(c == good for c in copies):
            return good  # healthy: every copy present and identical
        if good is None:
            finding = ScrubFinding(
                kind=kind,
                name=name,
                detail=f"all {len(copies)} cop(ies) fail validation",
            )
            report.findings.append(finding)
            if self.repair and copies:
                finding.quarantined = self._quarantine(report, name, copies[0])
                self._invalidate_index(name)
            return None
        finding = ScrubFinding(
            kind=kind if bad else "divergent-copies",
            name=name,
            detail=(
                f"{len(bad)} of {len(copies)} cop(ies) fail validation"
                if bad
                else f"{len(copies)} valid but divergent cop(ies)"
            ),
        )
        report.findings.append(finding)
        if self.repair:
            if bad:
                finding.quarantined = self._quarantine(report, name, bad[0])
            # One top-level write pushes the good bytes through every
            # replica/tier/shard in the stack — re-replication for free.
            crash_point(CP_REPAIR_BEFORE_WRITE)
            self.backend.write(name, good)
            finding.repaired = True
            report.repaired += 1
            self._reindex_repaired(name, good)
            if self.journal is not None and name.startswith("job-"):
                try:
                    # Re-assert durable placement for the repaired
                    # manifest: the journal is how sharing processes learn
                    # the object is hot again.
                    self.journal.pin(name)
                except (StorageError, ReproError):
                    pass  # advisory, never fails a completed repair
        return good

    def _invalidate_index(self, name: str) -> None:
        """Drop the index rows of a manifest no copy of which validates."""
        if self.metadb is None or not name.startswith("job-"):
            return
        try:
            self.metadb.delete_manifest(name)
        except (StorageError, ReproError):
            pass  # the index reconciles against the files on next open

    def _reindex_repaired(self, name: str, good: bytes) -> None:
        """Re-index a manifest just rewritten from its good copy."""
        if self.metadb is None or not name.startswith("job-"):
            return
        from repro.storage.metadb import index_manifest

        try:
            index_manifest(self.metadb, name, json.loads(good.decode("utf-8")))
        except (StorageError, ReproError, ValueError):
            pass

    def _quarantine(
        self, report: ScrubReport, name: str, data: bytes
    ) -> str:
        quarantine_name = f"{QUARANTINE_PREFIX}{name}"
        self.backend.write(quarantine_name, data)
        crash_point(CP_QUARANTINE_AFTER_WRITE)
        report.quarantined += 1
        return quarantine_name

    @staticmethod
    def _mark_unrestorable(report: ScrubReport, referrers: List[str]) -> None:
        for object_name in referrers:
            if object_name not in report.unrestorable:
                report.unrestorable.append(object_name)


def scrub_store(
    backend: StorageBackend,
    repair: bool,
    journal=None,
    metrics: Optional[MetricsRegistry] = None,
    metadb=None,
) -> ScrubReport:
    """One-call scrub (``repair=True``) or fsck (``repair=False``)."""
    return StoreScrubber(
        backend, repair=repair, journal=journal, metrics=metrics,
        metadb=metadb,
    ).run()


__all__ = [
    "LEASE_SCRUB",
    "QUARANTINE_PREFIX",
    "ScrubFinding",
    "ScrubReport",
    "StoreScrubber",
    "scrub_store",
]
