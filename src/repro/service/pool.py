"""Shared checkpoint writer pool: bounded per-job queues, fair workers.

:class:`~repro.core.writer.AsyncCheckpointWriter` gives one training job one
background thread; a fleet of N jobs would spawn N threads and contend
blindly for the store.  :class:`WriterPool` replaces that with a fixed pool
of workers serving per-job :class:`PoolChannel` queues:

* **per-job FIFO** — one channel's tasks never run concurrently or out of
  order, preserving the store's payload-before-manifest ordering per job;
  tasks from *different* channels run in parallel (zlib/sha256 release the
  GIL, so pack+write throughput scales with workers),
* **fairness** — workers pick the next task round-robin across channels, so
  one chatty job cannot starve the fleet,
* **backpressure** — each channel bounds its queue and picks a policy when
  full: ``block`` the trainer (the async-writer default), ``drop-oldest``
  (newest snapshot wins; dropped saves are counted), or ``degrade`` (enqueue
  the submitter's cheaper fallback task — e.g. a lite snapshot without the
  statevector cache — instead of the full one),
* **per-job errors, exactly once** — a failed task surfaces on that
  channel's next ``submit``/``drain``/``close`` and nowhere else.

A channel implements the writer protocol (``submit``/``drain``/``close``/
``pending``/``stats``), so a :class:`~repro.core.manager.CheckpointManager`
can be pointed at a pool channel unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.writer import WriteStats
from repro.errors import CheckpointError, ConfigError
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry

_POLICIES = ("block", "drop-oldest", "degrade")


class ChannelStats(WriteStats):
    """Per-channel accounting (extends the writer's ``WriteStats``).

    Registry-backed ``channel.*`` counters, labeled with the channel's
    ``job`` id so a shared fleet registry keeps per-job series apart.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        job_id: str = "",
    ):
        registry = metrics if metrics is not None else MetricsRegistry()
        labels = {"job": job_id}
        super().__init__(registry, name="channel", labels=labels)
        self._bind("dropped", registry.counter("channel.dropped", **labels))
        self._bind("degraded", registry.counter("channel.degraded", **labels))


class PoolChannel:
    """One job's bounded submission queue into a :class:`WriterPool`."""

    def __init__(
        self,
        pool: "WriterPool",
        job_id: str,
        max_pending: int,
        backpressure: str,
    ):
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        if backpressure not in _POLICIES:
            raise ConfigError(
                f"backpressure must be one of {_POLICIES}, got {backpressure!r}"
            )
        self.pool = pool
        self.job_id = job_id
        self.max_pending = int(max_pending)
        self.backpressure = backpressure
        self.stats = ChannelStats(pool.metrics, job_id)
        # Per-job task-latency histogram, observed on the worker thread
        # (queue-side save cost as the pool actually ran it).
        self._task_seconds = pool.metrics.histogram(
            "channel.task_seconds", job=job_id
        )
        # Moving window of recent task durations as measured on the pool
        # worker — the job's *observed* save cost under pool contention.
        # Adaptive policies (Young–Daly) read it through
        # observed_save_seconds(); a fixed lifetime mean would lag brownouts
        # and chatty-neighbor contention by the whole history.
        self.recent_task_seconds: Deque[float] = deque(maxlen=16)
        # Degrade-mode fallbacks are resolved synchronously inside submit,
        # so the queue holds bare ready-to-run tasks.
        self.queue: Deque[Callable[[], None]] = deque()
        self.active = False  # a worker is running this channel's task
        self.closed = False
        self.abandoned = 0
        self._error: Optional[BaseException] = None
        # Only an abandoned (crashed-process) channel discards task errors;
        # a channel closed by a timed-out close/drain keeps them so the
        # failure still surfaces on the next interaction, exactly once.
        self._discard_errors = False

    # -- internal (called under the pool lock) ------------------------------------

    def _outstanding(self) -> int:
        return len(self.queue) + (1 if self.active else 0)

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise CheckpointError(
                f"checkpoint write for job {self.job_id!r} failed: {error}"
            ) from error

    # -- writer protocol ----------------------------------------------------------

    def submit(
        self,
        task: Callable[[], None],
        fallback: Optional[Callable[[], None]] = None,
        fallback_factory: Optional[Callable[[], Callable[[], None]]] = None,
    ) -> None:
        """Enqueue ``task`` under this channel's backpressure policy.

        ``fallback`` is the cheaper variant the ``degrade`` policy swaps in
        when the queue is full.  ``fallback_factory`` builds that variant
        lazily — it is invoked (on this thread, at most once, *outside* the
        pool lock) only when the queue is full at submit time, so submitters
        do not pay for a degraded capture they usually discard and an
        expensive capture never stalls other jobs' bookkeeping.  Policies
        other than ``degrade`` ignore both.
        """
        pool = self.pool
        started = time.perf_counter()
        # Thread-hop trace propagation: capture the submitter's span
        # context now, reattach it around the task on the worker thread.
        context = trace.capture_context()
        if context is not None or trace.tracing_enabled():
            task = trace.traced(task, "pool.task", context, job=self.job_id)
            if fallback is not None:
                fallback = trace.traced(
                    fallback, "pool.task", context, job=self.job_id, lite=True
                )
            if fallback_factory is not None:
                build = fallback_factory
                fallback_factory = lambda: trace.traced(  # noqa: E731
                    build(), "pool.task", context, job=self.job_id, lite=True
                )
        if (
            self.backpressure == "degrade"
            and fallback is None
            and fallback_factory is not None
        ):
            # A channel has one submitter (its job), so congestion observed
            # here cannot appear later within this same submit — building
            # the fallback now, outside the lock, loses no laziness.
            with pool._cond:
                congested = self._outstanding() >= self.max_pending
            if congested:
                fallback = fallback_factory()
            fallback_factory = None
        with pool._cond:
            self._raise_pending_error()
            if self.closed:
                raise CheckpointError(f"channel {self.job_id!r} is closed")
            if pool._stopped:
                raise CheckpointError("writer pool is closed")
            while self._outstanding() >= self.max_pending:
                if self.backpressure == "drop-oldest" and self.queue:
                    self.queue.popleft()
                    self.stats.dropped += 1
                    continue
                if self.backpressure == "degrade" and fallback is not None:
                    task = fallback
                    fallback = None
                    self.stats.degraded += 1
                    if self.queue:
                        # Replace the newest queued save (full or already
                        # lite) with this cheap one rather than waiting
                        # behind it; the discarded save counts as dropped.
                        self.queue.pop()
                        self.stats.dropped += 1
                        break
                # block (and degrade-without-room): wait for a slot.
                pool._cond.wait(timeout=0.1)
                self._raise_pending_error()
                if self.closed or pool._stopped:
                    raise CheckpointError(
                        f"channel {self.job_id!r} closed while blocked on submit"
                    )
            self.queue.append(task)
            pool._cond.notify_all()
        self.stats.blocked_seconds += time.perf_counter() - started

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until this channel is idle; re-raise its pending error."""
        pool = self.pool
        deadline = None if timeout is None else time.monotonic() + timeout
        with pool._cond:
            while self._outstanding() > 0:
                if pool._stopped:
                    raise CheckpointError(
                        "writer pool stopped with tasks still queued"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise CheckpointError(
                            f"channel {self.job_id!r} failed to drain "
                            f"within {timeout}s"
                        )
                pool._cond.wait(timeout=remaining if remaining else 0.1)
            self._raise_pending_error()

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain and detach from the pool; surfaces pending errors once.

        ``timeout`` defaults to the pool's close timeout, so a save wedged on
        a hung backend raises :class:`~repro.errors.CheckpointError` instead
        of hanging the fleet forever (the same bound the single-job async
        writer enforces).
        """
        if timeout is None:
            timeout = self.pool._close_timeout
        try:
            self.drain(timeout=timeout)
        finally:
            with self.pool._cond:
                self.closed = True
                self.pool._cond.notify_all()

    def abandon(self) -> int:
        """Crash semantics: discard queued (not yet started) tasks.

        A preempted process loses the saves still sitting in its queue; the
        in-flight task, if any, completes on the worker (an atomic store
        write either lands or leaves an orphan).  Returns the number of
        tasks discarded.  The channel is closed and its pending error —
        which a dead process can no longer observe — is cleared.
        """
        with self.pool._cond:
            dropped = len(self.queue)
            self.queue.clear()
            self.abandoned += dropped
            self.closed = True
            self._error = None
            self._discard_errors = True
            self.pool._cond.notify_all()
        return dropped

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no task of this channel is in flight.

        Unlike :meth:`drain` this ignores queued tasks and pending errors —
        it exists for crash semantics: after :meth:`abandon`, the harness
        waits for the dead incarnation's in-flight save to finish before a
        reincarnation allocates its first checkpoint sequence, so a stale
        save can never commit *after* (and therefore outrank) the new
        incarnation's saves.  Returns ``False`` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.pool._cond:
            while self.active:
                remaining = 0.1
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    remaining = min(remaining, 0.1)
                self.pool._cond.wait(timeout=remaining)
            return True

    def observed_save_seconds(self) -> Optional[float]:
        """Moving mean of recent save durations on the pool (seconds).

        ``None`` until the first task of this channel completes.  This is
        the live checkpoint-cost estimate the Young–Daly policy re-derives
        its interval from: it includes queue-side effects the submitter
        never sees (backend brownouts, shard contention, pool fairness).
        """
        with self.pool._cond:
            if not self.recent_task_seconds:
                return None
            return sum(self.recent_task_seconds) / len(self.recent_task_seconds)

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet finished."""
        with self.pool._cond:
            return self._outstanding()


class WriterPool:
    """Fixed worker pool multiplexing many jobs' checkpoint writes."""

    def __init__(
        self,
        workers: int = 2,
        close_timeout: float = 60.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if close_timeout <= 0:
            raise ConfigError(
                f"close_timeout must be > 0, got {close_timeout}"
            )
        self.workers = int(workers)
        self._close_timeout = float(close_timeout)
        self._cond = threading.Condition()
        self._channels: Dict[str, PoolChannel] = {}
        self._rr: List[str] = []  # round-robin rotation of channel ids
        self._stopped = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = WriteStats(self.metrics, name="pool")
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"qckpt-pool-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- channels ---------------------------------------------------------------

    def channel(
        self,
        job_id: str,
        max_pending: int = 2,
        backpressure: str = "block",
    ) -> PoolChannel:
        """Create (or return) the submission channel for ``job_id``.

        Re-requesting an open channel returns it unchanged; after a crash
        (``abandon``) or ``close`` a fresh channel replaces the dead one —
        the reincarnated job starts with a clean queue and no stale error.
        """
        with self._cond:
            if self._stopped:
                raise CheckpointError("writer pool is closed")
            existing = self._channels.get(job_id)
            if existing is not None and not existing.closed:
                return existing
            channel = PoolChannel(self, job_id, max_pending, backpressure)
            self._channels[job_id] = channel
            if job_id not in self._rr:
                self._rr.append(job_id)
            return channel

    def channels(self) -> List[PoolChannel]:
        """All currently registered channels."""
        with self._cond:
            return list(self._channels.values())

    # -- workers -----------------------------------------------------------------

    def _next_task(self) -> Optional[Tuple[PoolChannel, Callable[[], None]]]:
        """Round-robin pick under the lock; marks the channel active."""
        for offset in range(len(self._rr)):
            job_id = self._rr[offset]
            channel = self._channels.get(job_id)
            if channel is None or channel.active or not channel.queue:
                continue
            # Rotate so the next pick starts after this job: fairness.
            self._rr = (
                self._rr[offset + 1 :] + self._rr[: offset + 1]
            )
            task = channel.queue.popleft()
            channel.active = True
            return channel, task
        return None

    def _worker(self) -> None:
        while True:
            with self._cond:
                picked = self._next_task()
                while picked is None:
                    if self._stopped:
                        return
                    self._cond.wait()
                    picked = self._next_task()
            channel, task = picked
            started = time.perf_counter()
            error: Optional[BaseException] = None
            try:
                task()
            except BaseException as exc:  # surfaces on the job's channel
                error = exc
            elapsed = time.perf_counter() - started
            channel._task_seconds.observe(elapsed)
            with self._cond:
                channel.active = False
                channel.stats.tasks += 1
                channel.stats.seconds += elapsed
                channel.recent_task_seconds.append(elapsed)
                self.stats.tasks += 1
                self.stats.seconds += elapsed
                if error is not None and not channel._discard_errors:
                    channel._error = error
                self._cond.notify_all()

    # -- lifecycle ----------------------------------------------------------------

    def drain(self) -> None:
        """Drain every open channel (first pending error wins)."""
        for channel in self.channels():
            if not channel.closed:
                channel.drain(timeout=self._close_timeout)

    def close(self) -> None:
        """Drain all channels, stop the workers, join the threads.

        Channel errors surface from the drain; a pool whose workers fail to
        stop within the close timeout raises
        :class:`~repro.errors.CheckpointError` (daemon threads, so the
        process still exits).
        """
        try:
            self.drain()
        finally:
            with self._cond:
                self._stopped = True
                self._cond.notify_all()
            deadline = time.monotonic() + self._close_timeout
            for thread in self._threads:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    thread.join(timeout=remaining)
            if any(thread.is_alive() for thread in self._threads):
                raise CheckpointError(
                    f"writer pool failed to stop within {self._close_timeout}s"
                )

    @property
    def pending(self) -> int:
        """Outstanding tasks across all channels."""
        with self._cond:
            return sum(c._outstanding() for c in self._channels.values())

    def __enter__(self) -> "WriterPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
