"""Per-job checkpoint hook routing snapshots into the shared service stack.

The service analog of :class:`repro.core.manager.CheckpointManager`: one
instance per training job, submitting saves to the job's
:class:`~repro.service.pool.PoolChannel` and persisting through the shared
:class:`~repro.service.chunkstore.ChunkStore`.  There is no full-vs-delta
cadence here — content addressing *is* the delta mechanism (unchanged blocks
cost nothing, whoever wrote them first) — but each submit carries a degraded
fallback (a ``lite`` capture without the warm-start cache) for channels with
``degrade`` backpressure.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.core.policy import CheckpointPolicy, Clock, EveryKSteps
from repro.core.snapshot import TrainingSnapshot
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.service.chunkstore import ChunkCheckpointRecord, ChunkStore
from repro.service.pool import PoolChannel


class ServiceCheckpointStats(StatsView):
    """Aggregate accounting for one job's manager.

    Registry-backed ``manager.*`` counters labeled with the job id; the
    manager binds them against the store's registry so a shared fleet
    registry aggregates per-job series (``last_record`` stays a plain
    attribute — it is a reference, not a count).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        job_id: str = "",
    ):
        super().__init__()
        registry = metrics if metrics is not None else MetricsRegistry()
        for name in (
            "saves",
            "lite_saves",
            "blocks",
            "new_blocks",
            "logical_bytes",
            "physical_bytes",
        ):
            self._bind(name, registry.counter(f"manager.{name}", job=job_id))
        self._bind(
            "save_seconds",
            registry.counter("manager.save_seconds", job=job_id),
            as_int=False,
        )
        self.last_record: Optional[ChunkCheckpointRecord] = None


class ServiceCheckpointManager:
    """Trainer hook persisting one job's snapshots via the writer pool."""

    def __init__(
        self,
        store: ChunkStore,
        job_id: str,
        channel: PoolChannel,
        policy: Optional[CheckpointPolicy] = None,
        clock: Optional[Clock] = None,
        extra: Optional[Dict] = None,
    ):
        self.store = store
        self.job_id = job_id
        self.channel = channel
        self.policy = policy or EveryKSteps(1)
        self._clock = clock or time.monotonic
        self.extra = dict(extra or {})
        self.stats = ServiceCheckpointStats(store.metrics, job_id)
        self._stats_lock = threading.Lock()  # tasks run on pool workers
        # Adaptive policies (Young–Daly) re-derive their interval from this
        # job's *observed* save cost on the shared pool — queueing, shard
        # contention and brownouts included — not from a static estimate.
        attach = getattr(self.policy, "attach_cost_source", None)
        if attach is not None:
            attach(channel.observed_save_seconds)

    # -- hook protocol ------------------------------------------------------------

    def on_step_end(self, trainer, info) -> None:
        """Trainer hook: maybe checkpoint after this step."""
        self.policy.observe_step(info.step, info.seconds)
        if self.policy.should_checkpoint(trainer.step_count, self._clock()):
            # The lite capture is deferred to the moment the channel actually
            # degrades (synchronously inside submit, same step state), so an
            # uncongested degrade-mode job never pays for a second capture.
            lite_factory = (
                (lambda: trainer.capture(lite=True))
                if self.channel.backpressure == "degrade"
                else None
            )
            self.save(trainer.capture(), lite_factory=lite_factory)

    def on_run_end(self, trainer) -> None:
        """Trainer hook: wait for this job's queue to empty."""
        self.channel.drain()

    # -- saving -----------------------------------------------------------------

    def save(
        self,
        snapshot: TrainingSnapshot,
        lite_snapshot: Optional[TrainingSnapshot] = None,
        lite_factory=None,
    ) -> None:
        """Submit ``snapshot`` through the channel.

        The degrade fallback comes either ready-made (``lite_snapshot``) or
        lazily (``lite_factory``, a zero-arg callable returning a snapshot,
        invoked only if the channel's queue is full at submit time).
        """
        snapshot = snapshot.copy()

        def task() -> None:
            self._commit(snapshot, lite=False)

        fallback = None
        fallback_factory = None
        if lite_snapshot is not None:
            lite = lite_snapshot.copy()

            def fallback() -> None:
                self._commit(lite, lite=True)

        elif lite_factory is not None:

            def fallback_factory() -> "object":
                lite = lite_factory().copy()
                return lambda: self._commit(lite, lite=True)

        self.channel.submit(
            task, fallback=fallback, fallback_factory=fallback_factory
        )

    def _commit(self, snapshot: TrainingSnapshot, lite: bool) -> None:
        started = time.perf_counter()
        extra = dict(self.extra)
        if lite:
            extra["lite"] = True
        record = self.store.save_snapshot(self.job_id, snapshot, extra=extra)
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.stats.saves += 1
            if lite:
                self.stats.lite_saves += 1
            self.stats.blocks += record.n_blocks
            self.stats.new_blocks += record.n_new_blocks
            self.stats.logical_bytes += record.logical_bytes
            self.stats.physical_bytes += record.physical_bytes
            self.stats.save_seconds += elapsed
            self.stats.last_record = record
        self.policy.record_checkpoint(self._clock(), elapsed)

    # -- restoring ----------------------------------------------------------------

    def resume(self, trainer, mode: str = "exact") -> Optional[str]:
        """Restore ``trainer`` from this job's newest valid checkpoint.

        ``mode="exact"`` resumes bitwise from the newest checkpoint that
        fully restores.  ``mode="warm-start"`` fetches only the parameter
        blocks of the newest checkpoint whose parameters restore and seeds
        a fresh run (the architecture-search warm start).  Both walk the
        restore pipeline and fall back past damaged checkpoints.  Returns
        the checkpoint id used, or ``None`` when nothing restorable exists.
        """
        from repro.core.restore import WARM_START_TENSORS

        if mode == "exact":
            ckpt_id, snapshot, _skipped = self.store.latest_valid(self.job_id)
            if snapshot is None:
                return None
            trainer.restore(snapshot)
            return ckpt_id
        if mode == "warm-start":
            ckpt_id, tensors, _skipped = self.store.latest_valid_partial(
                self.job_id, WARM_START_TENSORS
            )
            if tensors is None:
                return None
            trainer.warm_start(tensors["params"])
            return ckpt_id
        raise ConfigError(
            f"mode must be 'exact' or 'warm-start', got {mode!r}"
        )

    def close(self) -> None:
        """Flush this job's queue and release the channel."""
        self.channel.close()
