"""Fleet harness: N concurrent training jobs over one checkpoint service.

The multi-tenant crash/recover/resume loop — a cluster scheduler in
miniature.  Jobs advance in round-robin *ticks* (one training step per tick
per running job, offset by their cadence), checkpoints flow through a shared
:class:`~repro.service.pool.WriterPool` into a shared
:class:`~repro.service.chunkstore.ChunkStore`, and scenario events from
:mod:`repro.faults.injector` disturb the fleet:

* :class:`~repro.faults.injector.PreemptionStorm` kills a set of jobs at one
  tick — their queued saves are abandoned (a dead process writes nothing),
  their channels die, and after a restart delay each job is *reincarnated
  from a fresh trainer* and restored from the newest valid checkpoint,
* :class:`~repro.faults.injector.Brownout` slows every store write for a
  window of ticks, which backs the writer pool up and engages each channel's
  backpressure policy.

The result quantifies exactly what the service buys a fleet: recovered-work
ratio, bytes written vs bytes deduped, per-job and fleet makespan.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.policy import EveryKSteps
from repro.errors import ConfigError
from repro.faults.injector import Brownout, PreemptionStorm
from repro.service.chunkstore import ChunkStore
from repro.service.manager import ServiceCheckpointManager
from repro.service.pool import PoolChannel, WriterPool
from repro.storage.backend import StorageBackend


class ThrottledBackend(StorageBackend):
    """Backend decorator adding settable real delays per operation.

    Write side: the knob the brownout scenario turns — while the window is
    active every write to the shared store stalls, the pool's queues grow,
    and channel backpressure (block / drop-oldest / degrade) becomes
    observable.

    Read side: an RTT + bandwidth model with *real* sleeps
    (``read_rtt_seconds`` + ``nbytes / read_bandwidth_bytes_per_s``), so
    wall-clock restore benchmarks — notably the chain-restore read-ahead
    sweep — experience object-store-like fetch latency that concurrent
    fetches genuinely overlap.  Both default to free (0 / unlimited).
    """

    def __init__(self, inner: StorageBackend):
        self.inner = inner
        self.write_delay_seconds = 0.0
        self.delayed_writes = 0
        self.read_rtt_seconds = 0.0
        self.read_bandwidth_bytes_per_s = 0.0  # 0 = unlimited
        self.delayed_reads = 0
        self._counter_lock = threading.Lock()  # pool workers write concurrently

    def write(self, name: str, data: bytes) -> None:
        delay = self.write_delay_seconds
        if delay > 0:
            with self._counter_lock:
                self.delayed_writes += 1
            time.sleep(delay)
        self.inner.write(name, data)

    def _read_delay(self, nbytes: int) -> None:
        delay = self.read_rtt_seconds
        if self.read_bandwidth_bytes_per_s > 0:
            delay += nbytes / self.read_bandwidth_bytes_per_s
        if delay > 0:
            with self._counter_lock:
                self.delayed_reads += 1
            time.sleep(delay)

    def read(self, name: str) -> bytes:
        data = self.inner.read(name)
        self._read_delay(len(data))
        return data

    def read_range(self, name: str, start: int, length: int) -> bytes:
        data = self.inner.read_range(name, start, length)
        self._read_delay(len(data))
        return data

    @property
    def supports_ranged_reads(self) -> bool:
        return self.inner.supports_ranged_reads

    def tier_for(self, name: str):
        return self.inner.tier_for(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def list(self, prefix: str = ""):
        return self.inner.list(prefix)

    def size(self, name: str) -> int:
        return self.inner.size(name)


@dataclass(frozen=True)
class FleetJobSpec:
    """Static description of one job in the fleet.

    ``restore_mode`` selects how a preempted job reincarnates: ``"exact"``
    resumes bitwise from the newest valid checkpoint; ``"warm-start"``
    fetches only the parameter blocks through the restore planner and
    restarts a fresh run from them (the architecture-search/cross-validation
    pattern — a warm-started incarnation redoes its steps from better
    parameters, so its step count restarts at zero).

    ``priority`` is the job's scheduling weight under the daemon's weighted
    round-robin: a priority-2 job receives ~2x the training ticks of a
    priority-1 neighbour while both are runnable.  The run-to-completion
    :class:`FleetHarness` advances every job each tick regardless (its
    cadence is the experiment, not a contended resource), so the weight
    only shapes daemon scheduling.

    ``shard_workers`` >= 2 fans this job's gradient batches out across that
    many shard worker processes (:mod:`repro.quantum.engines.sharding`) by
    wrapping every training step in the ambient execution scope; 0 (the
    default) sets no scope, leaving the trainer config / environment
    resolution in effect.  A trainer whose own config sets the knob
    explicitly overrides the spec.  Sharded gradients are bitwise identical
    to in-process ones, so the fleet's determinism guarantees are unchanged.
    """

    job_id: str
    trainer_factory: Callable[[], "object"]
    target_steps: int
    checkpoint_every: int = 1
    cadence_offset: int = 0
    max_pending: int = 2
    backpressure: str = "block"
    save_on_start: bool = True
    restore_mode: str = "exact"
    priority: int = 1
    shard_workers: int = 0

    def __post_init__(self) -> None:
        if self.target_steps < 1:
            raise ConfigError(
                f"target_steps must be >= 1, got {self.target_steps}"
            )
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.cadence_offset < 0:
            raise ConfigError(
                f"cadence_offset must be >= 0, got {self.cadence_offset}"
            )
        if self.restore_mode not in ("exact", "warm-start"):
            raise ConfigError(
                f"restore_mode must be 'exact' or 'warm-start', "
                f"got {self.restore_mode!r}"
            )
        if self.priority < 1:
            raise ConfigError(
                f"priority must be >= 1, got {self.priority}"
            )
        if self.shard_workers < 0:
            raise ConfigError(
                f"shard_workers must be >= 0, got {self.shard_workers}"
            )


@dataclass
class FleetJobResult:
    """Per-job outcome."""

    job_id: str
    final_step: int = 0
    steps_executed: int = 0
    preemptions: int = 0
    restores: int = 0
    lost_steps: int = 0
    abandoned_saves: int = 0
    degraded_saves: int = 0
    dropped_saves: int = 0
    resumed_from_steps: List[int] = field(default_factory=list)
    finish_tick: Optional[int] = None

    @property
    def wasted_steps(self) -> int:
        """Steps executed beyond the final step (redone after crashes)."""
        return self.steps_executed - self.final_step

    @property
    def recovered_work_ratio(self) -> float:
        """Fraction of pre-crash progress the store gave back, averaged."""
        if not self.preemptions:
            return 1.0
        recovered = sum(self.resumed_from_steps)
        lost = self.lost_steps
        executed_at_crashes = recovered + lost
        if executed_at_crashes == 0:
            return 1.0
        return recovered / executed_at_crashes


@dataclass
class FleetResult:
    """Fleet-wide outcome of one harness run."""

    jobs: Dict[str, FleetJobResult]
    makespan_ticks: int
    wall_seconds: float
    logical_bytes: int
    physical_bytes: int
    manifest_bytes: int
    dedup_ratio: float
    pool_tasks: int
    events_fired: List[str] = field(default_factory=list)

    @property
    def total_lost_steps(self) -> int:
        """Steps lost to crashes across the whole fleet."""
        return sum(j.lost_steps for j in self.jobs.values())

    @property
    def recovered_work_ratio(self) -> float:
        """Fleet-wide fraction of pre-crash progress the store gave back."""
        recovered = sum(sum(j.resumed_from_steps) for j in self.jobs.values())
        lost = self.total_lost_steps
        if recovered + lost == 0:
            return 1.0
        return recovered / (recovered + lost)


class _JobRuntime:
    """Mutable state of one job incarnation inside the scheduler."""

    def __init__(self, spec: FleetJobSpec):
        self.spec = spec
        self.trainer = None
        self.manager: Optional[ServiceCheckpointManager] = None
        self.channel: Optional[PoolChannel] = None
        self.result = FleetJobResult(job_id=spec.job_id)
        self.down_until: Optional[int] = None  # tick when restart is allowed
        self.dead_channel: Optional[PoolChannel] = None
        self.steps_at_crash = 0
        self.done = False
        self.error: Optional[str] = None  # terminal failure (daemon jobs)
        # Stride-scheduling state (daemon only): the virtual "pass" this job
        # has consumed (advances by 1/priority per scheduled tick) and the
        # number of ticks it was actually scheduled for.
        self.sched_pass = 0.0
        self.ticks_scheduled = 0


class JobLifecycle:
    """Per-job start/preempt/recover/advance machinery over one store+pool.

    The scheduler-agnostic half of fleet execution: both the
    run-to-completion :class:`FleetHarness` and the long-running
    :class:`~repro.service.daemon.FleetDaemon` drive job incarnations
    through exactly these transitions, so crash semantics (abandoned
    queues, wait-for-in-flight-save, restore-validation saves) cannot
    drift between the two schedulers.
    """

    def __init__(self, store: ChunkStore, pool: WriterPool):
        self.store = store
        self.pool = pool

    # -- lifecycle of one job ------------------------------------------------------

    def _start_job(self, job: _JobRuntime, tick: int, fresh: bool) -> None:
        spec = job.spec
        job.trainer = spec.trainer_factory()
        job.channel = self.pool.channel(
            spec.job_id,
            max_pending=spec.max_pending,
            backpressure=spec.backpressure,
        )
        job.manager = ServiceCheckpointManager(
            self.store,
            spec.job_id,
            job.channel,
            policy=EveryKSteps(spec.checkpoint_every),
        )
        restored_step = 0
        adopted = False
        if not fresh:
            # All reincarnation restores run through the unified pipeline:
            # exact resume reassembles the full tensor set; warm start plans
            # only the parameter blocks.  Either walks past damaged
            # checkpoints to the newest restorable one.
            ckpt_id = job.manager.resume(job.trainer, mode=spec.restore_mode)
            adopted = ckpt_id is not None
            # A warm-started trainer restarts at step 0 by design, so its
            # recovered step count is 0 even though its parameters came
            # from a checkpoint.
            restored_step = job.trainer.step_count if adopted else 0
            job.result.restores += 1
            job.result.resumed_from_steps.append(restored_step)
        warm_adopted = adopted and spec.restore_mode == "warm-start"
        if spec.save_on_start and (fresh or restored_step > 0 or warm_adopted):
            # Restore-validation save: prove the write path before burning
            # compute.  On a resume this is free — every block dedups against
            # the checkpoint just read.
            job.manager.save(job.trainer.capture(lite=True))
        job.down_until = None

    def _absorb_channel_stats(self, job: _JobRuntime) -> None:
        if job.channel is not None:
            job.result.dropped_saves += job.channel.stats.dropped
            job.result.degraded_saves += job.channel.stats.degraded

    def _preempt_job(self, job: _JobRuntime, tick: int, delay: int) -> None:
        # Record the crash point so recovery can compute the loss.
        job.steps_at_crash = job.trainer.step_count if job.trainer else 0
        job.result.preemptions += 1
        self._absorb_channel_stats(job)
        if job.channel is not None:
            job.result.abandoned_saves += job.channel.abandon()
        job.trainer = None
        job.manager = None
        job.dead_channel = job.channel
        job.channel = None
        job.down_until = tick + 1 + delay

    def _await_dead_channel(self, channel: PoolChannel) -> None:
        """Wait out a dead incarnation's in-flight save.

        Schedulers with liveness obligations (the daemon heartbeats a
        control file) override this to keep signalling while they wait.
        """
        channel.wait_idle(timeout=60.0)

    def _recover_job(self, job: _JobRuntime, tick: int) -> None:
        if job.dead_channel is not None:
            # Let the dead incarnation's in-flight save (if any) commit
            # before the reincarnation allocates its first sequence number:
            # checkpoint sequence order then always matches commit order.
            self._await_dead_channel(job.dead_channel)
            job.dead_channel = None
        self._start_job(job, tick, fresh=False)
        recovered = job.result.resumed_from_steps[-1]
        job.result.lost_steps += max(0, job.steps_at_crash - recovered)

    def _advance_job(self, job: _JobRuntime, tick: int) -> bool:
        """One training step for a running job; returns whether it finished."""
        from repro.quantum import engines

        with engines.execution_scope(
            shard_workers=job.spec.shard_workers or None
        ):
            info = job.trainer.train_step()
        job.result.steps_executed += 1
        job.manager.on_step_end(job.trainer, info)
        if job.trainer.step_count >= job.spec.target_steps:
            # Terminal checkpoint (unless the cadence just saved this
            # exact step) + drain, then release the channel.
            if job.trainer.step_count % job.spec.checkpoint_every != 0:
                job.manager.save(job.trainer.capture())
            job.manager.close()
            self._absorb_channel_stats(job)
            job.result.final_step = job.trainer.step_count
            job.result.finish_tick = tick
            job.done = True
            return True
        return False


class FleetHarness(JobLifecycle):
    """Drives N jobs to completion across storms and brownouts."""

    def __init__(
        self,
        store: ChunkStore,
        pool: WriterPool,
        specs: Sequence[FleetJobSpec],
        events: Sequence = (),
        throttle: Optional[ThrottledBackend] = None,
        max_ticks: int = 100000,
    ):
        if not specs:
            raise ConfigError("fleet needs at least one job spec")
        ids = [spec.job_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate job ids in fleet: {ids}")
        super().__init__(store, pool)
        self.specs = list(specs)
        self.events = list(events)
        self.throttle = throttle
        self.max_ticks = int(max_ticks)

    # -- the scheduler loop -------------------------------------------------------

    def run(self) -> FleetResult:
        """Drive every job to its target step; returns the fleet outcome.

        Each tick applies scenario events (storms preempt, brownouts
        throttle), reincarnates jobs whose restart delay elapsed, then
        advances every running job one training step.  Raises
        :class:`~repro.errors.ConfigError` if the fleet does not finish
        within ``max_ticks``.
        """
        started = time.perf_counter()
        jobs = {spec.job_id: _JobRuntime(spec) for spec in self.specs}
        events_fired: List[str] = []
        brownouts_engaged: set = set()
        brownouts_ended: set = set()
        tick = 0
        for job in jobs.values():
            self._start_job(job, tick, fresh=True)
        while not all(job.done for job in jobs.values()):
            if tick >= self.max_ticks:
                raise ConfigError(
                    f"fleet did not finish within {self.max_ticks} ticks"
                )
            # 1. scenario events for this tick
            for event in self.events:
                if isinstance(event, PreemptionStorm) and event.at_tick == tick:
                    for job in jobs.values():
                        if (
                            not job.done
                            and job.trainer is not None
                            and event.hits(job.spec.job_id)
                        ):
                            self._preempt_job(
                                job, tick, event.restart_delay_ticks
                            )
                    events_fired.append(f"storm@{tick}")
                if isinstance(event, Brownout) and self.throttle is not None:
                    if event.active_at(tick) and id(event) not in brownouts_engaged:
                        brownouts_engaged.add(id(event))
                        events_fired.append(f"brownout-on@{tick}")
                    if (
                        tick >= event.end_tick
                        and id(event) in brownouts_engaged
                        and id(event) not in brownouts_ended
                    ):
                        brownouts_ended.add(id(event))
                        events_fired.append(f"brownout-off@{tick}")
            if self.throttle is not None:
                # The slowest active window wins; overlapping brownouts do
                # not end each other early.
                self.throttle.write_delay_seconds = max(
                    (
                        event.write_delay_seconds
                        for event in self.events
                        if isinstance(event, Brownout) and event.active_at(tick)
                    ),
                    default=0.0,
                )
            # 2. reincarnate preempted jobs whose delay elapsed
            for job in jobs.values():
                if (
                    not job.done
                    and job.trainer is None
                    and job.down_until is not None
                    and tick >= job.down_until
                ):
                    self._recover_job(job, tick)
            # 3. advance every running job due at this tick
            for job in jobs.values():
                if job.done or job.trainer is None:
                    continue
                if tick < job.spec.cadence_offset:
                    continue
                self._advance_job(job, tick)
            tick += 1
        self.pool.drain()
        stats = self.store.stats
        return FleetResult(
            jobs={job_id: job.result for job_id, job in jobs.items()},
            makespan_ticks=tick,
            wall_seconds=time.perf_counter() - started,
            logical_bytes=stats.logical_bytes,
            physical_bytes=stats.physical_bytes,
            manifest_bytes=stats.manifest_bytes,
            dedup_ratio=stats.dedup_ratio,
            pool_tasks=self.pool.stats.tasks,
            events_fired=events_fired,
        )
